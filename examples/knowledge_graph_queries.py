#!/usr/bin/env python3
"""Knowledge-graph pattern queries: a look inside the cloud engine.

Uses the DBpedia-like analogue (many vertex types, Zipf labels) and
walks through what happens to one query inside the cloud:

* how the query is anonymized through the LCT,
* how the cost model estimates per-star cardinalities,
* which stars the exact weighted-vertex-cover decomposition picks,
* how big the star match sets and Rin are, and
* why EFF's label grouping beats RAN/FSIM on the same query.

Run:  python examples/knowledge_graph_queries.py
"""

from repro import MethodConfig, PrivacyPreservingSystem, SystemConfig
from repro.anonymize import estimator_from_outsourced
from repro.cloud import decompose_query
from repro.matching import find_subgraph_matches, star_as_graph
from repro.workloads import generate_workload, load_dataset


def main() -> None:
    dataset = load_dataset("DBpedia", scale=0.4)
    graph, schema = dataset.graph, dataset.schema
    print(
        f"knowledge graph: |V|={graph.vertex_count}, |E|={graph.edge_count}, "
        f"{len(schema)} entity types, {schema.label_count()} labels"
    )

    workload = generate_workload(graph, 6, 10, seed=3)
    query = workload[0]
    print(f"\npattern query: |V|={query.vertex_count}, |E|={query.edge_count}")

    system = PrivacyPreservingSystem.setup(
        graph, schema, SystemConfig(k=3), sample_workload=workload
    )

    # --- inside the client: anonymization -----------------------------
    anonymized = system.client.prepare_query(query)
    raw_labels = sorted(
        label for d in query.vertices() for _, label in d.label_items()
    )
    group_labels = sorted(
        label for d in anonymized.vertices() for _, label in d.label_items()
    )
    print(f"raw query labels     : {raw_labels[:4]} ...")
    print(f"anonymized to groups : {group_labels[:4]} ...")

    # --- inside the cloud: cost model + decomposition ------------------
    published = system.published
    estimator = estimator_from_outsourced(
        published.center_vertices, published.upload_graph, 3
    )
    decomposition = decompose_query(anonymized, estimator)
    print(f"\nquery decomposition picks {len(decomposition.stars)} stars:")
    for star in decomposition.stars:
        estimate = decomposition.estimated_sizes[star.center]
        star_graph = star_as_graph(anonymized, star)
        print(
            f"  star @ q{star.center}: {len(star.leaves)} leaves, "
            f"estimated |R(S)| = {estimate:.1f}"
        )
        del star_graph

    # --- run it ---------------------------------------------------------
    outcome = system.query(query)
    qm = outcome.metrics
    print(
        f"\nexecution: |RS|={qm.rs_size} star matches -> |Rin|={qm.rin_size} "
        f"-> {qm.candidate_count} candidates -> {qm.result_count} exact results"
    )
    oracle = len(find_subgraph_matches(query, graph))
    assert qm.result_count == oracle
    print(f"verified against direct matching: {oracle} matches")

    # --- strategy comparison on the same workload ----------------------
    print("\nlabel-grouping strategy comparison (mean over the workload):")
    print(f"{'method':>7}  {'cloud ms':>9}  {'|RS|':>7}  {'|Rin|':>7}")
    for method in ("EFF", "RAN", "FSIM"):
        comparison = PrivacyPreservingSystem.setup(
            graph,
            schema,
            SystemConfig(k=3, method=MethodConfig.from_name(method)),
            sample_workload=workload,
        )
        totals = {"cloud": 0.0, "rs": 0, "rin": 0}
        for q in workload:
            m = comparison.query(q).metrics
            totals["cloud"] += m.cloud_seconds * 1000
            totals["rs"] += m.rs_size
            totals["rin"] += m.rin_size
        n = len(workload)
        print(
            f"{method:>7}  {totals['cloud'] / n:>9.2f}  "
            f"{totals['rs'] / n:>7.1f}  {totals['rin'] / n:>7.1f}"
        )
    print(
        "\nEFF groups labels so that frequent-in-data labels share groups"
        "\nwith rare-in-queries labels, shrinking the star search space"
        "\n(Section 5 of the paper)."
    )


if __name__ == "__main__":
    main()
