#!/usr/bin/env python3
"""Real-data workflow: from a SNAP edge list to private cloud queries.

Demonstrates the ingestion path a user with the actual Web-NotreDame /
UK-2002 crawls would take:

1. parse a SNAP-format edge list (a bundled miniature stands in here);
2. synthesize Zipf-distributed labels (the crawls carry none);
3. publish with k-automorphism and query through the cloud;
4. audit the release with the attack library.

Run:  python examples/real_data_workflow.py [path/to/edgelist.txt]
"""

import sys
import tempfile
from pathlib import Path

from repro import PrivacyPreservingSystem, SystemConfig
from repro.attacks import label_disclosure_risk, neighborhood_attack
from repro.graph import compute_statistics, estimate_zipf_skew, label_frequency_spectrum
from repro.matching import find_subgraph_matches
from repro.workloads import (
    assign_synthetic_labels,
    generate_workload,
    load_snap_edgelist,
)

# a miniature stand-in for web-NotreDame.txt (same file format)
SAMPLE_EDGELIST = """\
# Directed graph: sample web crawl
# FromNodeId  ToNodeId
0 1\n0 2\n0 3\n1 2\n1 4\n2 5\n3 6\n4 5\n4 7\n5 8\n6 7\n6 9\n7 8\n8 9\n9 10
10 11\n10 12\n11 12\n11 13\n12 14\n13 14\n13 15\n14 16\n15 16\n15 17\n16 18
17 18\n17 19\n18 19\n19 0\n2 10\n5 13\n8 17\n3 12\n6 15
"""


def main() -> None:
    if len(sys.argv) > 1:
        path = Path(sys.argv[1])
    else:
        handle = tempfile.NamedTemporaryFile(
            "w", suffix=".txt", delete=False, prefix="snap-sample-"
        )
        handle.write(SAMPLE_EDGELIST)
        handle.close()
        path = Path(handle.name)
        print(f"(no edge list given; using a bundled 20-vertex sample: {path})")

    # 1. ingest
    structure = load_snap_edgelist(path, max_vertices=5000)
    print(f"loaded: |V|={structure.vertex_count}, |E|={structure.edge_count}")

    # 2. labels (the paper's label experiments synthesize attributes too)
    graph, schema = assign_synthetic_labels(
        structure, label_count=12, labels_per_vertex=2, skew=0.8, seed=1
    )
    stats = compute_statistics(graph)
    vertex_type = next(iter(schema.type_names))
    attribute = schema.attributes_of(vertex_type)[0]
    skew = estimate_zipf_skew(label_frequency_spectrum(stats, vertex_type, attribute))
    print(f"labels assigned: {schema.label_count()} labels, fitted Zipf skew {skew:.2f}")

    # 3. publish and query
    workload = generate_workload(graph, 3, 5, seed=2)
    system = PrivacyPreservingSystem.setup(
        graph, schema, SystemConfig(k=2), sample_workload=workload
    )
    pm = system.publish_metrics
    print(
        f"published Go: |E|={pm.uploaded_edges} "
        f"(Gk: {pm.gk_edges}; noise: {pm.noise_edges})"
    )
    for i, query in enumerate(workload[:3]):
        outcome = system.query(query)
        oracle = len(find_subgraph_matches(query, graph))
        status = "OK" if len(outcome.matches) == oracle else "MISMATCH"
        print(
            f"  query {i}: {len(outcome.matches)} matches "
            f"[{status}] ({outcome.metrics.total_seconds * 1000:.1f} ms end-to-end)"
        )

    # 4. audit
    transform = system.published.transform
    worst = max(
        neighborhood_attack(transform.gk, v).success_probability
        for v in list(transform.gk.vertex_ids())[:100]
    )
    risk = label_disclosure_risk(system.published.lct, stats)
    print(
        f"audit: worst 1-hop attack {worst:.3f} (bound 1/k = {1 / 2:.3f}); "
        f"mean label-disclosure risk {risk.mean:.2f}"
    )


if __name__ == "__main__":
    main()
