#!/usr/bin/env python3
"""Protecting a social network: privacy levels, costs, and attacks.

Scenario: a company outsources its member graph to a public cloud and
wants to know what privacy level k costs.  This example

* publishes a synthetic social network at k = 2..5,
* verifies the structural guarantee (every member has k-1 perfect
  twins) and demonstrates that a 1-neighborhood structural attack
  cannot narrow a target below k candidates,
* reports the space/communication overhead each k costs, and
* answers a "find colleagues-of-couples" style query at each level.

Run:  python examples/social_network_privacy.py
"""

import json

from repro import PrivacyPreservingSystem, SystemConfig
from repro.graph import make_schema, random_attributed_graph
from repro.kauto import verify_k_automorphism
from repro.matching import find_subgraph_matches
from repro.workloads import random_walk_query


def build_network():
    """A 400-member network: people with role/location attributes.

    Each member carries two labels per attribute from a 60-label
    universe — enough selectivity that queries stay cheap even after
    the k-automorphic row-union widens every vertex's label groups.
    """
    schema = make_schema(
        type_count=1, attributes_per_type=2, labels_per_attribute=60, prefix="member"
    )
    graph = random_attributed_graph(
        schema,
        400,
        edges_per_vertex=3,
        label_skew=0.8,
        labels_per_vertex=2,
        seed=42,
        name="members",
    )
    return graph, schema


def neighborhood_attack(gk, avt, target):
    """How many Gk vertices share the target's 1-hop structural view?

    An adversary knowing the target's degree and the degree multiset of
    its neighbours (the attack sketched in the paper's introduction)
    can at best narrow the target to this candidate set.
    """
    def signature(v):
        return (
            gk.degree(v),
            tuple(sorted(gk.degree(n) for n in gk.neighbors(v))),
        )

    wanted = signature(target)
    return sum(1 for v in gk.vertex_ids() if signature(v) == wanted)


def main() -> None:
    graph, schema = build_network()
    query = random_walk_query(graph, 5, seed=7)
    oracle = len(find_subgraph_matches(query, graph))
    print(f"network: |V|={graph.vertex_count}, |E|={graph.edge_count}")
    print(f"query: {query.edge_count} edges, true matches: {oracle}\n")

    header = (
        f"{'k':>2}  {'noiseE':>7}  {'|E(Go)|':>8}  {'upload KB':>9}  "
        f"{'attack cands':>12}  {'query ms':>9}  {'exact?':>6}"
    )
    print(header)
    print("-" * len(header))

    for k in (2, 3, 4, 5):
        system = PrivacyPreservingSystem.setup(
            graph, schema, SystemConfig(k=k), sample_workload=[query]
        )
        transform = system.published.transform
        verify_k_automorphism(transform.gk, transform.avt)  # raises if broken

        # structural attack on an arbitrary real member
        target = 17
        candidates = neighborhood_attack(transform.gk, transform.avt, target)
        assert candidates >= k, "k-automorphism must defeat the 1-hop attack"

        outcome = system.query(query)
        exact = len(outcome.matches) == oracle
        pm = system.publish_metrics
        print(
            f"{k:>2}  {pm.noise_edges:>7}  {pm.uploaded_edges:>8}  "
            f"{pm.upload_bytes / 1024:>9.1f}  {candidates:>12}  "
            f"{outcome.metrics.total_seconds * 1000:>9.2f}  {str(exact):>6}"
        )

    print(
        "\nTakeaway: larger k widens the anonymity set (attack candidates)"
        "\nbut costs more noise edges, upload bytes and query time —"
        "\nexactly the trade-off Figure 11/12/16 of the paper quantifies."
    )

    # show what the cloud actually sees for one member (no raw labels)
    system = PrivacyPreservingSystem.setup(graph, schema, SystemConfig(k=2))
    published_vertex = system.published.upload_graph.vertex(0)
    print("\ncloud's view of member 0:")
    print(json.dumps({a: sorted(v) for a, v in published_vertex.labels.items()}, indent=2))


if __name__ == "__main__":
    main()
