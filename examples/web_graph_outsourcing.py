#!/usr/bin/env python3
"""Outsourcing a web graph: space savings of Go and the k trade-off.

Uses the Web-NotreDame analogue (one vertex type, 200 Zipf-distributed
page labels) and reproduces the headline systems argument of Section 4:
uploading the outsourced graph ``Go`` instead of the full k-automorphic
graph ``Gk`` saves close to a factor of k in cloud storage, upload
bytes and index size — while still answering queries exactly.

Run:  python examples/web_graph_outsourcing.py
"""

from repro import MethodConfig, PrivacyPreservingSystem, SystemConfig
from repro.matching import find_subgraph_matches, match_key
from repro.workloads import generate_workload, load_dataset


def main() -> None:
    dataset = load_dataset("Web-NotreDame", scale=0.4)
    graph, schema = dataset.graph, dataset.schema
    print(
        f"web graph: |V|={graph.vertex_count}, |E|={graph.edge_count}, "
        f"{schema.label_count()} page labels\n"
    )
    workload = generate_workload(graph, 6, 8, seed=11)

    print(
        f"{'k':>2}  {'|E(Gk)|':>8}  {'|E(Go)|':>8}  {'ratio':>6}  "
        f"{'Gk up KB':>8}  {'Go up KB':>8}  {'idx KB (BAS)':>12}  {'idx KB (Go)':>11}"
    )
    for k in (2, 3, 4, 5, 6):
        go_system = PrivacyPreservingSystem.setup(
            graph, schema, SystemConfig(k=k), sample_workload=workload
        )
        gk_system = PrivacyPreservingSystem.setup(
            graph,
            schema,
            SystemConfig(k=k, method=MethodConfig.from_name("BAS")),
            sample_workload=workload,
        )
        go_pm, gk_pm = go_system.publish_metrics, gk_system.publish_metrics
        ratio = go_pm.uploaded_edges / gk_pm.uploaded_edges
        print(
            f"{k:>2}  {gk_pm.uploaded_edges:>8}  {go_pm.uploaded_edges:>8}  "
            f"{ratio:>6.2f}  {gk_pm.upload_bytes / 1024:>8.1f}  "
            f"{go_pm.upload_bytes / 1024:>8.1f}  {gk_pm.index_bytes / 1024:>12.1f}  "
            f"{go_pm.index_bytes / 1024:>11.1f}"
        )

    # exactness spot-check at the largest k
    print("\nexactness check at k=6 over the workload:")
    system = PrivacyPreservingSystem.setup(
        graph, schema, SystemConfig(k=6), sample_workload=workload
    )
    for i, query in enumerate(workload[:4]):
        outcome = system.query(query)
        oracle = {match_key(m) for m in find_subgraph_matches(query, graph)}
        got = {match_key(m) for m in outcome.matches}
        status = "OK" if got == oracle else "MISMATCH"
        print(f"  query {i}: {len(got)} matches [{status}]")

    print(
        "\n|E(Go)|/|E(Gk)| approaches 1/k + boundary overhead — the space"
        "\nsaving that makes the optimized method (EFF) practical (Figure 12)."
    )


if __name__ == "__main__":
    main()
