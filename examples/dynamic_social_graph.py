#!/usr/bin/env python3
"""A living deployment: declarative queries over an evolving graph.

Shows two library extensions working together:

* the pattern DSL (`repro.query`) — queries written Cypher-style;
* incremental release maintenance (`repro.kauto.dynamic`) — the data
  owner inserts people and relationships after publication, and the
  k-automorphism invariant (and exactness) survives every update.

Run:  python examples/dynamic_social_graph.py
"""

from repro.anonymize import anonymize_query, build_lct, cost_based_grouping
from repro.client import expand_rin, filter_candidates
from repro.cloud import CloudServer
from repro.graph import compute_statistics, example_social_network
from repro.kauto import build_k_automorphic_graph, verify_k_automorphism
from repro.kauto.dynamic import DynamicRelease
from repro.matching import find_subgraph_matches
from repro.query import parse_pattern

ENGINEER_AT_INTERNET = """
(p:person {occupation=engineer})-(c:company {company_type=internet})
"""

COLLEAGUE_COUPLE = """
# two people at the same company, married to each other
(a:person)-(c:company)
(b:person)-(c)
(a)-(b)
"""


def answer(release, pattern_text):
    """Full pipeline on the release's current state."""
    parsed = parse_pattern(pattern_text)
    outsourced = release.refresh_outsourced()
    cloud = CloudServer(outsourced.graph, release.avt, outsourced.block_vertices)
    cloud_answer = cloud.answer(anonymize_query(parsed.graph, release.lct))
    expanded = expand_rin(cloud_answer.matches, release.avt)
    result = filter_candidates(expanded.matches, release.original, parsed.graph)
    oracle = find_subgraph_matches(parsed.graph, release.original)
    assert len(result.matches) == len(oracle), "pipeline must stay exact"
    return result.matches


def main() -> None:
    graph, schema = example_social_network()
    lct = build_lct(
        schema, 2, cost_based_grouping, graph_stats=compute_statistics(graph), seed=1
    )
    transform = build_k_automorphic_graph(lct.apply_to_graph(graph), 2, seed=1)
    release = DynamicRelease(graph.copy(), transform, lct)

    print("day 0: initial release")
    print(f"  engineers at internet companies: {len(answer(release, ENGINEER_AT_INTERNET))}")
    print(f"  married colleagues:              {len(answer(release, COLLEAGUE_COUPLE))}")

    print("\nday 1: a new engineer (id 100) joins Google (c1), marries Lucy (p2)")
    release.insert_vertex(
        100, "person", {"gender": ["female"], "occupation": ["engineer"]}
    )
    release.insert_edge(100, 4)  # works at c1
    release.insert_edge(100, 1)  # spouse of p2 (Lucy)
    verify_k_automorphism(release.gk, release.avt)
    print(f"  engineers at internet companies: {len(answer(release, ENGINEER_AT_INTERNET))}")
    print(f"  married colleagues:              {len(answer(release, COLLEAGUE_COUPLE))}")

    print("\nday 2: Tom (p1) leaves Google — employment edge deleted")
    release.delete_edge(0, 4)
    verify_k_automorphism(release.gk, release.avt)
    print(f"  engineers at internet companies: {len(answer(release, ENGINEER_AT_INTERNET))}")
    print(
        f"  noise edges now carried by Gk:   {release.noise_edge_count()} "
        "(deletions degrade to noise when symmetry pins them)"
    )

    print("\nday 3: shipping updates incrementally instead of re-uploading")
    from repro.cloud import CloudServer

    outsourced = release.refresh_outsourced()
    cloud = CloudServer(
        outsourced.graph.copy(), release.avt, list(outsourced.block_vertices)
    )
    log = release.insert_edge(2, 1)  # David befriends Lucy
    delta = release.go_delta(log)
    cloud.apply_delta(delta)
    print(
        f"  update shipped as a {delta.payload_bytes()}-byte delta "
        "(the cloud re-indexed in place)"
    )
    parsed = parse_pattern(COLLEAGUE_COUPLE)
    candidates = cloud.answer(anonymize_query(parsed.graph, release.lct))
    expanded = expand_rin(candidates.matches, release.avt)
    exact = filter_candidates(expanded.matches, release.original, parsed.graph)
    oracle = find_subgraph_matches(parsed.graph, release.original)
    assert len(exact.matches) == len(oracle)
    print(f"  married colleagues now:          {len(exact.matches)}")

    print("\nevery answer above was verified exact against the private graph.")


if __name__ == "__main__":
    main()
