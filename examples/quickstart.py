#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Builds the professional social network of Figure 1, publishes it with
k-automorphism (k=2) + label generalization, and answers the Figure 1
query through the cloud — recovering the exact two matches, without the
cloud ever seeing a raw label or the true structure.

Run:  python examples/quickstart.py
"""

from repro import PrivacyPreservingSystem, SystemConfig
from repro.graph import example_query, example_social_network
from repro.matching import find_subgraph_matches


def main() -> None:
    # 1. the data owner's private graph (Figure 1)
    graph, schema = example_social_network()
    print(f"original graph G: |V|={graph.vertex_count}, |E|={graph.edge_count}")

    # 2. publish: LCT + k-automorphic transform + outsourced graph Go
    system = PrivacyPreservingSystem.setup(graph, schema, SystemConfig(k=2))
    pm = system.publish_metrics
    print(
        f"published Go: |V|={pm.uploaded_vertices}, |E|={pm.uploaded_edges} "
        f"(Gk has {pm.gk_edges} edges; {pm.noise_edges} noise edges added)"
    )
    print(f"upload size: {pm.upload_bytes:,} bytes; index: {pm.index_bytes:,} bytes")

    # 3. query through the cloud (Figure 1's query Q)
    query = example_query()
    outcome = system.query(query)
    print(f"\nquery Q: |V|={query.vertex_count}, |E|={query.edge_count}")
    print(f"exact matches R(Q, G): {len(outcome.matches)}")
    for match in outcome.matches:
        assignment = ", ".join(f"q{q}->v{v}" for q, v in sorted(match.items()))
        print(f"  {assignment}")

    # 4. sanity: identical to matching directly on the private graph
    oracle = find_subgraph_matches(query, graph)
    assert len(oracle) == len(outcome.matches)
    print("\nverified: cloud pipeline result == direct matching on G")

    # 5. what it cost (the quantities the paper's evaluation reports)
    qm = outcome.metrics
    print(
        f"cloud: {qm.cloud_seconds * 1000:.2f} ms "
        f"(stars: {qm.star_matching_seconds * 1000:.2f} ms, "
        f"join: {qm.join_seconds * 1000:.2f} ms, |RS|={qm.rs_size}, |Rin|={qm.rin_size})"
    )
    print(
        f"network: {qm.network_seconds * 1000:.2f} ms ({qm.answer_bytes} answer bytes); "
        f"client: {qm.client_seconds * 1000:.2f} ms"
    )


if __name__ == "__main__":
    main()
