"""The cloud server: index construction and query answering.

One :class:`CloudServer` instance plays the role of the paper's cloud
machine.  It receives a published graph (``Go`` + AVT for the optimized
methods, or the full ``Gk`` for the BAS baseline), builds the VBV/LBV
index offline, and answers anonymized subgraph queries ``Qo`` with the
decompose → star-match → join pipeline of Section 4.2.1.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Sequence

from repro.anonymize.cost_model import (
    StarCardinalityEstimator,
    estimator_from_outsourced,
)
from repro.cloud.cache import (
    StarMatchCache,
    leaf_role_order,
    roles_to_table,
    star_signature,
    table_to_roles,
)
from repro.cloud.decomposition import decompose_query
from repro.cloud.index import CloudIndex
from repro.cloud.parallel import map_batch, validate_backend
from repro.cloud.result_join import JoinStats, join_star_tables
from repro.cloud.star_matching import StarMatchStats, match_star_table
from repro.compat import warn_renamed
from repro.graph.attributed import AttributedGraph
from repro.graph.stats import compute_statistics
from repro.kauto.avt import AlignmentVertexTable
from repro.matching.match import Match
from repro.matching.star import Decomposition, Star
from repro.matching.table import MatchTable
from repro.obs import Observability, SlidingWindow, names
from repro.obs.tracing import NullSpan, NullTracer, Span, Trace
from repro.outsource.delta import GoDelta


@dataclass(init=False)
class CloudAnswer:
    """Everything the cloud returns for one query, with telemetry.

    The result set is carried natively as a columnar
    :class:`~repro.matching.table.MatchTable` (``table``); the
    dict-form :attr:`matches` view is materialized lazily on first
    access, so serving paths that stay columnar (the system pipeline,
    the CLI) never pay the conversion.  Constructing with ``matches``
    only (no table) remains supported for the dict-based engines.

    ``cloud_seconds`` is the wall time of the cloud-side pipeline (the
    ``cloud.answer`` span's duration); ``trace``, when the caller
    passed a recording :class:`~repro.obs.Observability`, holds every
    span the answer produced.  The pre-redesign ``total_seconds`` name
    still works (field *and* constructor keyword) but emits a
    :class:`DeprecationWarning`.
    """

    expanded: bool
    decomposition: Decomposition
    decomposition_seconds: float
    star_stats: StarMatchStats
    join_stats: JoinStats
    cloud_seconds: float
    trace: Trace | None
    table: MatchTable | None

    def __init__(
        self,
        matches: list[Match] | None = None,
        expanded: bool = False,
        decomposition: Decomposition | None = None,
        decomposition_seconds: float = 0.0,
        star_stats: StarMatchStats | None = None,
        join_stats: JoinStats | None = None,
        cloud_seconds: float | None = None,
        trace: Trace | None = None,
        total_seconds: float | None = None,
        table: MatchTable | None = None,
    ) -> None:
        if total_seconds is not None:
            warn_renamed(
                "CloudAnswer(total_seconds=...)", "CloudAnswer(cloud_seconds=...)"
            )
            if cloud_seconds is None:
                cloud_seconds = total_seconds
        if matches is None and table is None:
            raise ValueError("CloudAnswer needs matches or a table")
        self._matches = matches
        self.table = table
        self.expanded = expanded
        self.decomposition = (
            decomposition if decomposition is not None else Decomposition(stars=[])
        )
        self.decomposition_seconds = decomposition_seconds
        self.star_stats = star_stats if star_stats is not None else StarMatchStats()
        self.join_stats = join_stats if join_stats is not None else JoinStats()
        self.cloud_seconds = 0.0 if cloud_seconds is None else cloud_seconds
        self.trace = trace

    @property
    def matches(self) -> list[Match]:
        """Dict-form results (lazily converted from :attr:`table`)."""
        matches = self._matches
        if matches is None:
            assert self.table is not None  # enforced by __init__
            matches = self._matches = self.table.to_matches()
        return matches

    @property
    def results(self) -> "MatchTable | list[Match]":
        """The preferred result payload: columnar when available.

        Feed this to :meth:`repro.core.query_client.QueryClient.
        process_answer` — it accepts either form and stays columnar
        end-to-end when given the table.
        """
        return self.table if self.table is not None else self.matches

    @property
    def total_seconds(self) -> float:
        """Deprecated alias of :attr:`cloud_seconds`."""
        warn_renamed("CloudAnswer.total_seconds", "CloudAnswer.cloud_seconds")
        return self.cloud_seconds

    @property
    def rs_size(self) -> int:
        """``|RS|`` of Figure 19: total star matches before the join."""
        return self.star_stats.total_results


class CloudServer:
    """Honest-but-curious cloud: stores published data, answers queries.

    Parameters
    ----------
    graph:
        The published graph — ``Go`` (optimized) or ``Gk`` (BAS).
    avt:
        The Alignment Vertex Table (published alongside the graph).
    center_vertices:
        The candidate star centers: block ``B1`` for the optimized
        methods, every vertex for BAS.
    expand_in_cloud:
        ``True`` -> star matches are expanded through the automorphic
        functions before the join (the ``Rin`` pipeline).  ``False``
        (BAS) -> the star matches already range over the published
        graph in full and are joined directly.
    star_workers:
        Width of the per-query star-matching pool: the independent
        stars of one decomposition are matched concurrently on a
        shared :class:`ThreadPoolExecutor`.  ``0``/``1`` (default)
        keeps the paper's serial loop; the parallel path returns
        bit-identical match sets (stars are gathered in plan order).
    obs:
        The :class:`~repro.obs.Observability` scope the server reports
        into.  Default: a measure-only scope (span durations fill the
        :class:`CloudAnswer` telemetry, nothing is retained — same cost
        as the hand-rolled timing it replaced).  Pass a recording scope
        for full traces, or ``Observability.disabled()`` for a no-op
        hot path (telemetry fields then read ``0.0``).  The star-cache
        hit/miss counters are exported as pull-gauges on its registry.
    """

    def __init__(
        self,
        graph: AttributedGraph,
        avt: AlignmentVertexTable,
        center_vertices: list[int],
        expand_in_cloud: bool = True,
        max_intermediate_results: int | None = None,
        join_strategy: str = "rin",
        star_cache_size: int = 0,
        decomposition_strategy: str = "optimal",
        engine: str = "stars",
        star_workers: int = 0,
        obs: Observability | None = None,
    ) -> None:
        if join_strategy not in ("rin", "full"):
            raise ValueError("join_strategy must be 'rin' or 'full'")
        if decomposition_strategy not in ("optimal", "greedy"):
            raise ValueError("decomposition_strategy must be 'optimal' or 'greedy'")
        if engine not in ("stars", "direct"):
            raise ValueError("engine must be 'stars' or 'direct'")
        if engine == "direct" and expand_in_cloud:
            raise ValueError(
                "the direct engine matches over the stored graph verbatim; "
                "it applies to full-Gk (BAS) deployments only"
            )
        self.graph = graph
        self.avt = avt
        self.center_vertices = list(center_vertices)
        self.expand_in_cloud = expand_in_cloud
        self.max_intermediate_results = max_intermediate_results
        # "rin": Algorithm 2's optimization — the anchor star stays in
        # B1 and Rin is returned.  "full": the straightforward strategy
        # (every star expanded, R(Qo, Gk) computed outright); kept for
        # the ablation study.
        self.join_strategy = join_strategy
        self.decomposition_strategy = decomposition_strategy
        # "stars": the paper's decompose → match → join pipeline.
        # "direct": plain subgraph matching over the stored graph with
        # the bitset engine — an ablation baseline for BAS that
        # quantifies what the star framework buys.
        self.engine = engine
        self._direct_matcher = None  #: guarded by _state_lock
        # optional LRU over star match sets, keyed by the star's
        # canonical constraint signature — different queries sharing a
        # star shape reuse its R(S, Go).  0 disables caching.  The
        # cache is internally locked, so one instance is shared by all
        # concurrent queries of a batch.
        self.star_cache = StarMatchCache(star_cache_size)
        if star_workers < 0:
            raise ValueError("star_workers must be >= 0")
        self.star_workers = star_workers
        # per-query star pool, built lazily.  _star_pool_pid detects
        # forked children (process batch backend), whose inherited pool
        # threads do not survive the fork and must be rebuilt before
        # first use.
        self._star_pool: ThreadPoolExecutor | None = None  #: guarded by _state_lock
        self._star_pool_pid: int | None = None  #: guarded by _state_lock
        self._state_lock = threading.Lock()
        self.obs = obs if obs is not None else Observability.measuring()
        with self.obs.tracer.span(names.CLOUD_INDEX_BUILD) as span:
            self.index = CloudIndex.build(graph, self.center_vertices)
            span.set(
                index_bytes=self.index.size_bytes(),
                build_seconds=self.index.build_seconds,
            )
        self.estimator = self._build_estimator()
        # pull-style gauges: the cache already counts hits/misses under
        # its own lock, so the registry reads them at snapshot time
        # instead of double-counting on the hot path.
        self.obs.metrics.register_callback(
            names.M_CACHE_HITS,
            lambda: float(self.star_cache.hits),
            help="Star-cache hits since server start (or last clear).",
        )
        self.obs.metrics.register_callback(
            names.M_CACHE_MISSES,
            lambda: float(self.star_cache.misses),
            help="Star-cache misses since server start (or last clear).",
        )
        # sliding-window SLO view of the cloud phase: quantiles are
        # computed at scrape time only (pull callbacks), the answer path
        # pays one deque append — and none at all under a null scope.
        self.latency_window = SlidingWindow(capacity=1024)
        self.latency_window.register(
            self.obs.metrics,
            names.W_CLOUD_WINDOW,
            help="Cloud-side answer seconds over the SLO window.",
        )

    def _build_estimator(self) -> StarCardinalityEstimator:
        if self.expand_in_cloud:
            return estimator_from_outsourced(
                self.center_vertices, self.graph, self.avt.k
            )
        stats = compute_statistics(self.graph)
        return StarCardinalityEstimator(
            block_stats=stats,
            gk_vertex_count=self.graph.vertex_count,
            average_degree=self.graph.average_degree(),
            k=1,
        )

    # ------------------------------------------------------------------
    # query answering
    # ------------------------------------------------------------------
    def answer(
        self,
        query: AttributedGraph,
        obs: Observability | None = None,
        star_workers: int | None = None,
    ) -> CloudAnswer:
        """Run the full cloud pipeline on an anonymized query ``Qo``.

        ``obs`` overrides the server's own observability scope for this
        one query — :class:`repro.core.system.PrivacyPreservingSystem`
        passes each query's private recording scope here so the spans
        land in that query's trace.  Every timing the answer reports is
        a span duration; no hand-rolled ``perf_counter`` pairs remain.

        ``star_workers`` overrides the configured intra-query star
        parallelism for this one call (``QueryOptions.star_workers``);
        results stay bit-identical either way.
        """
        if obs is None:
            obs = self.obs
        if self.engine == "direct":
            return self._answer_direct(query, obs)
        tracer = obs.tracer

        with tracer.span(names.CLOUD_ANSWER) as root:
            with tracer.span(names.CLOUD_DECOMPOSE) as decompose_span:
                decomposition = decompose_query(
                    query, self.estimator, strategy=self.decomposition_strategy
                )
                decompose_span.set(stars=len(decomposition.stars))

            star_tables, star_stats = self._match_stars(
                query,
                decomposition.stars,
                tracer=tracer,
                star_workers=star_workers,
            )
            full_join = self.join_strategy == "full"
            with tracer.span(names.CLOUD_JOIN) as join_span:
                rin_table, join_stats = join_star_tables(
                    decomposition.stars,
                    star_tables,
                    self.avt,
                    expand=self.expand_in_cloud,
                    max_intermediate=self.max_intermediate_results,
                    expand_anchor=full_join,
                )
                join_span.set(
                    rin_size=join_stats.rin_size,
                    intermediate_peak=max(
                        join_stats.intermediate_sizes, default=0
                    ),
                )
            root.set(
                rs_size=star_stats.total_results,
                rin_size=join_stats.rin_size,
                matches=len(rin_table),
                expanded=not self.expand_in_cloud or full_join,
            )

        metrics = obs.metrics
        metrics.counter(
            names.M_STAR_MATCHES,
            help="Star matches (|RS|) produced across all queries.",
        ).inc(star_stats.total_results)
        metrics.gauge(
            names.M_INTERMEDIATE_PEAK,
            help="Largest join intermediate seen by any query.",
        ).set_max(max(join_stats.intermediate_sizes, default=0))
        metrics.histogram(
            names.M_CLOUD_SECONDS,
            help="Cloud-side wall seconds per query.",
        ).observe(root.duration)
        if obs.enabled:
            self.latency_window.observe(root.duration)

        return CloudAnswer(
            table=rin_table,
            expanded=not self.expand_in_cloud or full_join,
            decomposition=decomposition,
            decomposition_seconds=decompose_span.duration,
            star_stats=star_stats,
            join_stats=join_stats,
            cloud_seconds=root.duration,
        )

    def query_batch(
        self,
        queries: list[AttributedGraph],
        max_workers: int | None = None,
        backend: str = "thread",
    ) -> list[CloudAnswer]:
        """Answer a workload of anonymized queries concurrently.

        A bounded worker pool (``max_workers``, default: one per core)
        services the batch; every worker shares the immutable VBV/LBV
        index and the thread-safe :class:`StarMatchCache`, so repeated
        star shapes across the workload hit warm entries.  Answers come
        back **in input order** and are bit-identical to running
        :meth:`answer` in a serial loop (``backend="serial"`` *is* that
        loop).  ``backend="process"`` forks workers for CPU-bound
        batches on multi-core hosts; cache/counter updates then stay in
        the children (the parent's cache is untouched).

        The first query exception (e.g.
        :class:`~repro.exceptions.ResultBudgetExceeded`) propagates,
        matching the serial loop's behavior.
        """
        validate_backend(backend)
        return map_batch(self.answer, list(queries), max_workers, backend)

    def _answer_direct(
        self, query: AttributedGraph, obs: Observability
    ) -> CloudAnswer:
        """Plain bitset subgraph matching over the stored graph."""
        from repro.matching.bitset import BitsetMatcher

        with obs.tracer.span(names.CLOUD_ANSWER, engine="direct") as root:
            # R3 (lock discipline): every _direct_matcher access happens
            # under _state_lock — concurrent batch queries must neither
            # race to build two matchers nor observe apply_delta()'s
            # invalidation mid-build.  The lock is held across the lazy
            # build; later queries pay one uncontended acquire.
            with self._state_lock:
                matcher = self._direct_matcher
                if matcher is None:
                    matcher = self._direct_matcher = BitsetMatcher(self.graph)
            matches = matcher.find_matches(query)
            root.set(
                rs_size=len(matches),
                rin_size=len(matches),
                matches=len(matches),
            )
        elapsed = root.duration
        # The direct engine matches the whole query as one pseudo-star,
        # so its result set *is* |RS|.  Reporting result_sizes under the
        # sentinel key -1 (no query vertex is negative) keeps rs_size,
        # the span attribute above and the M_STAR_MATCHES counter
        # consistent with the stars engine — they all used to read 0
        # here, under-counting every direct-engine query.
        stats = StarMatchStats(seconds=elapsed, result_sizes={-1: len(matches)})
        join_stats = JoinStats(seconds=0.0, rin_size=len(matches))
        obs.metrics.counter(
            names.M_STAR_MATCHES,
            help="Star matches (|RS|) produced across all queries.",
        ).inc(len(matches))
        obs.metrics.histogram(
            names.M_CLOUD_SECONDS,
            help="Cloud-side wall seconds per query.",
        ).observe(elapsed)
        if obs.enabled:
            self.latency_window.observe(elapsed)
        return CloudAnswer(
            matches=matches,
            expanded=True,
            decomposition=Decomposition(stars=[]),
            decomposition_seconds=0.0,
            star_stats=stats,
            join_stats=join_stats,
            cloud_seconds=elapsed,
        )

    def _star_executor(self) -> ThreadPoolExecutor | None:
        """The shared per-query star pool (lazy; fork-aware)."""
        if self.star_workers <= 1:
            return None
        pid = os.getpid()
        with self._state_lock:
            if self._star_pool is None or self._star_pool_pid != pid:
                # a forked child inherits a pool object whose worker
                # threads died with the fork; build a fresh one
                self._star_pool = ThreadPoolExecutor(
                    max_workers=self.star_workers,
                    thread_name_prefix="repro-stars",
                )
                self._star_pool_pid = pid
            return self._star_pool

    def _star_executor_for(
        self, star_workers: int | None
    ) -> tuple[ThreadPoolExecutor | None, ThreadPoolExecutor | None]:
        """Resolve a per-call worker override to ``(executor, transient)``.

        ``None`` (or the configured value) reuses the shared lazy pool;
        a differing override builds a transient pool the caller must
        shut down (returned as the second element).
        """
        if star_workers is None or star_workers == self.star_workers:
            return self._star_executor(), None
        if star_workers <= 1:
            return None, None
        pool = ThreadPoolExecutor(
            max_workers=star_workers, thread_name_prefix="repro-stars-call"
        )
        return pool, pool

    def _match_one_star(self, query: AttributedGraph, star: Star) -> MatchTable:
        return match_star_table(
            query,
            star,
            self.index,
            self.graph,
            max_results=self.max_intermediate_results,
        )

    def _match_one_star_traced(
        self,
        query: AttributedGraph,
        star: Star,
        tracer: NullTracer,
        parent: "Span | NullSpan",
    ) -> MatchTable:
        """One star under its own span; ``parent`` re-attaches the span
        to the ``cloud.star_matching`` span opened on the submitting
        thread (pool threads have no implicit span stack)."""
        with tracer.span(
            names.CLOUD_STAR_MATCH, parent=parent, center=star.center
        ) as span:
            table = self._match_one_star(query, star)
            span.set(results=len(table))
        return table

    def _match_stars(
        self,
        query: AttributedGraph,
        stars: Sequence[Star],
        tracer: NullTracer | None = None,
        star_workers: int | None = None,
    ) -> tuple[dict[int, MatchTable], StarMatchStats]:
        """Algorithm 1 for every star, through the optional LRU cache.

        Results are columnar :class:`~repro.matching.table.MatchTable`
        instances (schema ``(center, *leaves)``); the cache keeps its
        role-form tuple wire format, now written/read through the
        columnar codec (:func:`~repro.cloud.cache.table_to_roles` /
        :func:`~repro.cloud.cache.roles_to_table`).

        With ``star_workers > 1`` the cache misses of one decomposition
        are matched concurrently on the shared star pool; hits, puts
        and result assembly stay on the calling thread.  Both paths
        produce bit-identical results: equivalent stars within one
        query resolve through the same role-form round-trip, and
        results are assembled in plan (star) order.

        Every computed (cache-missed) star emits a ``cloud.star_match``
        span under the enclosing ``cloud.star_matching`` span — on the
        executor path the per-star spans are parented explicitly, since
        pool threads do not inherit the caller's span stack.
        """
        if tracer is None:
            tracer = self.obs.tracer
        stats = StarMatchStats()
        use_cache = self.star_cache.capacity > 0
        executor, transient = self._star_executor_for(star_workers)
        results: dict[int, MatchTable] = {}

        try:
            return self._match_stars_on(
                query, stars, tracer, executor, use_cache, stats, results
            )
        finally:
            if transient is not None:
                transient.shutdown(wait=True)

    def _match_stars_on(
        self,
        query: AttributedGraph,
        stars: Sequence[Star],
        tracer: NullTracer,
        executor: ThreadPoolExecutor | None,
        use_cache: bool,
        stats: StarMatchStats,
        results: dict[int, MatchTable],
    ) -> tuple[dict[int, MatchTable], StarMatchStats]:
        with tracer.span(
            names.CLOUD_STAR_MATCHING, stars=len(stars)
        ) as matching_span:
            if executor is None:
                for star in stars:
                    if use_cache:
                        signature = star_signature(query, star)
                        role_order = leaf_role_order(query, star)
                        roles = self.star_cache.get(signature)
                        if roles is None:
                            table = self._match_one_star_traced(
                                query, star, tracer, matching_span
                            )
                            self.star_cache.put(
                                signature,
                                table_to_roles(table, star, role_order),
                            )
                        else:
                            table = roles_to_table(roles, star, role_order)
                    else:
                        table = self._match_one_star_traced(
                            query, star, tracer, matching_span
                        )
                    results[star.center] = table
            else:
                # resolve cache hits up front; fan the misses out,
                # deduped by signature so equivalent stars are computed
                # once (as the serial put-then-hit sequence guarantees)
                pending: list[tuple] = []  # (star, signature, role_order)
                computed: dict[tuple, object] = {}  # signature -> future
                for star in stars:
                    if not use_cache:
                        pending.append((star, None, None))
                        continue
                    signature = star_signature(query, star)
                    role_order = leaf_role_order(query, star)
                    roles = self.star_cache.get(signature)
                    if roles is None:
                        pending.append((star, signature, role_order))
                    else:
                        results[star.center] = roles_to_table(
                            roles, star, role_order
                        )
                futures = []
                for star, signature, role_order in pending:
                    if signature is not None and signature in computed:
                        futures.append((star, signature, role_order, None))
                        continue
                    future = executor.submit(
                        self._match_one_star_traced,
                        query,
                        star,
                        tracer,
                        matching_span,
                    )
                    if signature is not None:
                        computed[signature] = (star, role_order, future)
                    futures.append((star, signature, role_order, future))
                for star, signature, role_order, future in futures:
                    if signature is None:
                        results[star.center] = future.result()
                        continue
                    rep_star, rep_order, rep_future = computed[signature]
                    table = rep_future.result()
                    roles = table_to_roles(table, rep_star, rep_order)
                    self.star_cache.put(signature, roles)
                    if star is rep_star:
                        results[star.center] = table
                    else:
                        # an equivalent star of the same query: re-label
                        # the representative's roles, like a cache hit
                        results[star.center] = roles_to_table(
                            roles, star, role_order
                        )
                results = {star.center: results[star.center] for star in stars}

            for star in stars:
                stats.result_sizes[star.center] = len(results[star.center])
            matching_span.set(rs_size=stats.total_results)
        stats.seconds = matching_span.duration
        return results, stats

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def apply_delta(self, delta: GoDelta) -> None:
        """Apply a :class:`repro.outsource.GoDelta` from the data owner.

        Updates the stored graph, extends the AVT with any shipped
        rows, rebuilds the index and invalidates caches — everything a
        real cloud would do on an incremental update.  Only meaningful
        for ``Go`` deployments (``expand_in_cloud=True``); a BAS cloud
        stores ``Gk`` verbatim and is re-uploaded instead.
        """
        from repro.kauto.avt import AlignmentVertexTable
        from repro.outsource.delta import apply_go_delta
        from repro.outsource.outsourced_graph import OutsourcedGraph

        if not self.expand_in_cloud:
            raise ValueError("deltas apply to Go deployments only")
        outsourced = OutsourcedGraph(
            graph=self.graph, block_vertices=self.center_vertices
        )
        apply_go_delta(outsourced, delta)
        self.center_vertices = outsourced.block_vertices
        if delta.added_avt_rows:
            rows = [list(row) for row in self.avt.rows()]
            rows.extend(delta.added_avt_rows)
            self.avt = AlignmentVertexTable(rows)
        self.index = CloudIndex.build(self.graph, self.center_vertices)
        self.estimator = self._build_estimator()
        self.star_cache.clear()
        # R3 fix: this invalidation used to race with _answer_direct's
        # lazy build — a concurrent query could re-publish a matcher
        # over the *old* graph after the delta was applied.
        with self._state_lock:
            self._direct_matcher = None

    def close(self) -> None:
        """Shut down the per-query star pool (idempotent)."""
        with self._state_lock:
            pool, self._star_pool, self._star_pool_pid = self._star_pool, None, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "CloudServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def index_size_bytes(self) -> int:
        return self.index.size_bytes()

    def index_build_seconds(self) -> float:
        return self.index.build_seconds
