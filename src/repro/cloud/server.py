"""The cloud server: index construction and query answering.

One :class:`CloudServer` instance plays the role of the paper's cloud
machine.  It receives a published graph (``Go`` + AVT for the optimized
methods, or the full ``Gk`` for the BAS baseline), builds the VBV/LBV
index offline, and answers anonymized subgraph queries ``Qo`` with the
decompose → star-match → join pipeline of Section 4.2.1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.anonymize.cost_model import (
    StarCardinalityEstimator,
    estimator_from_outsourced,
)
from repro.cloud.cache import (
    StarMatchCache,
    leaf_role_order,
    matches_to_roles,
    roles_to_matches,
    star_signature,
)
from repro.cloud.decomposition import decompose_query
from repro.cloud.index import CloudIndex
from repro.cloud.result_join import JoinStats, join_star_matches
from repro.cloud.star_matching import StarMatchStats, match_star
from repro.graph.attributed import AttributedGraph
from repro.graph.stats import compute_statistics
from repro.kauto.avt import AlignmentVertexTable
from repro.matching.match import Match
from repro.matching.star import Decomposition


@dataclass
class CloudAnswer:
    """Everything the cloud returns for one query, with telemetry."""

    matches: list[Match]
    expanded: bool
    decomposition: Decomposition
    decomposition_seconds: float
    star_stats: StarMatchStats
    join_stats: JoinStats
    total_seconds: float

    @property
    def rs_size(self) -> int:
        """``|RS|`` of Figure 19: total star matches before the join."""
        return self.star_stats.total_results


class CloudServer:
    """Honest-but-curious cloud: stores published data, answers queries.

    Parameters
    ----------
    graph:
        The published graph — ``Go`` (optimized) or ``Gk`` (BAS).
    avt:
        The Alignment Vertex Table (published alongside the graph).
    center_vertices:
        The candidate star centers: block ``B1`` for the optimized
        methods, every vertex for BAS.
    expand_in_cloud:
        ``True`` -> star matches are expanded through the automorphic
        functions before the join (the ``Rin`` pipeline).  ``False``
        (BAS) -> the star matches already range over the published
        graph in full and are joined directly.
    """

    def __init__(
        self,
        graph: AttributedGraph,
        avt: AlignmentVertexTable,
        center_vertices: list[int],
        expand_in_cloud: bool = True,
        max_intermediate_results: int | None = None,
        join_strategy: str = "rin",
        star_cache_size: int = 0,
        decomposition_strategy: str = "optimal",
        engine: str = "stars",
    ):
        if join_strategy not in ("rin", "full"):
            raise ValueError("join_strategy must be 'rin' or 'full'")
        if decomposition_strategy not in ("optimal", "greedy"):
            raise ValueError("decomposition_strategy must be 'optimal' or 'greedy'")
        if engine not in ("stars", "direct"):
            raise ValueError("engine must be 'stars' or 'direct'")
        if engine == "direct" and expand_in_cloud:
            raise ValueError(
                "the direct engine matches over the stored graph verbatim; "
                "it applies to full-Gk (BAS) deployments only"
            )
        self.graph = graph
        self.avt = avt
        self.center_vertices = list(center_vertices)
        self.expand_in_cloud = expand_in_cloud
        self.max_intermediate_results = max_intermediate_results
        # "rin": Algorithm 2's optimization — the anchor star stays in
        # B1 and Rin is returned.  "full": the straightforward strategy
        # (every star expanded, R(Qo, Gk) computed outright); kept for
        # the ablation study.
        self.join_strategy = join_strategy
        self.decomposition_strategy = decomposition_strategy
        # "stars": the paper's decompose → match → join pipeline.
        # "direct": plain subgraph matching over the stored graph with
        # the bitset engine — an ablation baseline for BAS that
        # quantifies what the star framework buys.
        self.engine = engine
        self._direct_matcher = None
        # optional LRU over star match sets, keyed by the star's
        # canonical constraint signature — different queries sharing a
        # star shape reuse its R(S, Go).  0 disables caching.
        self.star_cache = StarMatchCache(star_cache_size)
        self.index = CloudIndex.build(graph, self.center_vertices)
        self.estimator = self._build_estimator()

    def _build_estimator(self) -> StarCardinalityEstimator:
        if self.expand_in_cloud:
            return estimator_from_outsourced(
                self.center_vertices, self.graph, self.avt.k
            )
        stats = compute_statistics(self.graph)
        return StarCardinalityEstimator(
            block_stats=stats,
            gk_vertex_count=self.graph.vertex_count,
            average_degree=self.graph.average_degree(),
            k=1,
        )

    # ------------------------------------------------------------------
    # query answering
    # ------------------------------------------------------------------
    def answer(self, query: AttributedGraph) -> CloudAnswer:
        """Run the full cloud pipeline on an anonymized query ``Qo``."""
        if self.engine == "direct":
            return self._answer_direct(query)
        started = time.perf_counter()

        decomposition_start = time.perf_counter()
        decomposition = decompose_query(
            query, self.estimator, strategy=self.decomposition_strategy
        )
        decomposition_seconds = time.perf_counter() - decomposition_start

        star_matches, star_stats = self._match_stars(query, decomposition.stars)
        full_join = self.join_strategy == "full"
        matches, join_stats = join_star_matches(
            decomposition.stars,
            star_matches,
            self.avt,
            expand=self.expand_in_cloud,
            max_intermediate=self.max_intermediate_results,
            expand_anchor=full_join,
        )
        return CloudAnswer(
            matches=matches,
            expanded=not self.expand_in_cloud or full_join,
            decomposition=decomposition,
            decomposition_seconds=decomposition_seconds,
            star_stats=star_stats,
            join_stats=join_stats,
            total_seconds=time.perf_counter() - started,
        )

    def _answer_direct(self, query: AttributedGraph) -> CloudAnswer:
        """Plain bitset subgraph matching over the stored graph."""
        from repro.matching.bitset import BitsetMatcher
        from repro.matching.star import Decomposition

        started = time.perf_counter()
        if self._direct_matcher is None:
            self._direct_matcher = BitsetMatcher(self.graph)
        matches = self._direct_matcher.find_matches(query)
        elapsed = time.perf_counter() - started
        stats = StarMatchStats(seconds=elapsed)
        join_stats = JoinStats(seconds=0.0, rin_size=len(matches))
        return CloudAnswer(
            matches=matches,
            expanded=True,
            decomposition=Decomposition(stars=[]),
            decomposition_seconds=0.0,
            star_stats=stats,
            join_stats=join_stats,
            total_seconds=elapsed,
        )

    def _match_stars(self, query, stars) -> tuple[dict, StarMatchStats]:
        """Algorithm 1 for every star, through the optional LRU cache."""
        stats = StarMatchStats()
        started = time.perf_counter()
        results: dict[int, list] = {}
        for star in stars:
            if self.star_cache.capacity > 0:
                signature = star_signature(query, star)
                role_order = leaf_role_order(query, star)
                roles = self.star_cache.get(signature)
                if roles is None:
                    matches = match_star(
                        query,
                        star,
                        self.index,
                        self.graph,
                        max_results=self.max_intermediate_results,
                    )
                    self.star_cache.put(
                        signature, matches_to_roles(matches, star, role_order)
                    )
                else:
                    matches = roles_to_matches(roles, star, role_order)
            else:
                matches = match_star(
                    query,
                    star,
                    self.index,
                    self.graph,
                    max_results=self.max_intermediate_results,
                )
            results[star.center] = matches
            stats.result_sizes[star.center] = len(matches)
        stats.seconds = time.perf_counter() - started
        return results, stats

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def apply_delta(self, delta) -> None:
        """Apply a :class:`repro.outsource.GoDelta` from the data owner.

        Updates the stored graph, extends the AVT with any shipped
        rows, rebuilds the index and invalidates caches — everything a
        real cloud would do on an incremental update.  Only meaningful
        for ``Go`` deployments (``expand_in_cloud=True``); a BAS cloud
        stores ``Gk`` verbatim and is re-uploaded instead.
        """
        from repro.kauto.avt import AlignmentVertexTable
        from repro.outsource.delta import apply_go_delta
        from repro.outsource.outsourced_graph import OutsourcedGraph

        if not self.expand_in_cloud:
            raise ValueError("deltas apply to Go deployments only")
        outsourced = OutsourcedGraph(
            graph=self.graph, block_vertices=self.center_vertices
        )
        apply_go_delta(outsourced, delta)
        self.center_vertices = outsourced.block_vertices
        if delta.added_avt_rows:
            rows = [list(row) for row in self.avt.rows()]
            rows.extend(delta.added_avt_rows)
            self.avt = AlignmentVertexTable(rows)
        self.index = CloudIndex.build(self.graph, self.center_vertices)
        self.estimator = self._build_estimator()
        self.star_cache.clear()
        self._direct_matcher = None

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def index_size_bytes(self) -> int:
        return self.index.size_bytes()

    def index_build_seconds(self) -> float:
        return self.index.build_seconds
