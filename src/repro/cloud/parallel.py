"""Worker-pool plumbing for the parallel batched query engine.

The cloud of the paper answers each ``Qo`` serially.  A production
deployment serves a *workload*: many anonymized queries in flight at
once, sharing one immutable VBV/LBV index and one (locked)
:class:`repro.cloud.cache.StarMatchCache`.  This module centralizes the
``concurrent.futures`` mechanics used by both
:meth:`repro.cloud.server.CloudServer.query_batch` and
:meth:`repro.core.system.PrivacyPreservingSystem.query_batch`:

* ``backend="serial"`` — a plain loop (the baseline the benchmarks
  compare against, and the fallback for 0/1 workers or 0/1 tasks);
* ``backend="thread"`` — a bounded :class:`ThreadPoolExecutor`.  All
  workers share the index and the star cache, so repeated star shapes
  across the batch hit warm entries;
* ``backend="process"`` — a fork-based :class:`ProcessPoolExecutor`
  for CPU-bound workloads on multi-core clouds.  The server is
  inherited copy-on-write by the forked workers (never pickled); only
  the per-task payloads and answers cross the pipe.  Falls back to
  ``thread`` where fork is unavailable (e.g. Windows/macOS-spawn).

All backends return results **in input order** and re-raise the first
task exception (e.g. :class:`repro.exceptions.ResultBudgetExceeded`),
so callers observe exactly the semantics of the serial loop.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

BACKENDS = ("serial", "thread", "process")

#: Default pool width when ``max_workers`` is not given: every core,
#: but never fewer than 2 so ``query_batch()`` exercises the concurrent
#: path even on single-core hosts (correctness there is what the stress
#: tests pin down; speed needs real cores).
DEFAULT_MAX_WORKERS = max(2, os.cpu_count() or 1)


def fork_available() -> bool:
    """True when the fork start method exists (Linux, macOS-fork)."""
    return "fork" in multiprocessing.get_all_start_methods()


def effective_workers(max_workers: int | None, task_count: int) -> int:
    """Clamp the requested pool width to something sensible."""
    workers = DEFAULT_MAX_WORKERS if max_workers is None else int(max_workers)
    return max(1, min(workers, max(task_count, 1)))


def validate_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    return backend


# ----------------------------------------------------------------------
# fork-shared callable registry (process backend)
# ----------------------------------------------------------------------
# ``ProcessPoolExecutor`` pickles the submitted callable.  Bound methods
# of a CloudServer would drag the whole graph + index through the pipe
# for every task.  Instead the callable is parked here *before* the
# fork; children inherit the registry (and the server behind it)
# copy-on-write and look it up by token.  Only the token + payload are
# pickled per task.
_FORK_REGISTRY: dict[int, Callable] = {}  #: guarded by _FORK_LOCK
# R3 (lock discipline): concurrent process-backend batches — two
# ShardedCloud answers, or a sharded answer inside a process batch —
# register and pop tokens from different threads; the registry dict is
# shared module state and every parent-side mutation holds this lock.
_FORK_LOCK = threading.Lock()
_FORK_TOKENS = itertools.count(1)


def _call_registered(token: int, payload: Any) -> Any:  # pragma: no cover - runs in child
    # Lock-free by design: this runs in a freshly forked, single-threaded
    # child whose registry snapshot was fixed at fork time (the parent
    # registered the token before creating the pool).
    return _FORK_REGISTRY[token](payload)


class PersistentProcessPool:
    """A long-lived fork pool bound to one registered callable.

    :func:`map_batch` builds a fresh ``ProcessPoolExecutor`` per call,
    so every batch repays the fork *plus* the copy-on-write faulting of
    the inherited heap — refcount updates dirty every object page a
    worker touches, which for a graph-scanning task costs about as much
    as the scan itself.  Callers that scatter over the same immutable
    state once per query (:class:`repro.cloud.sharding.ShardedCloud`)
    keep one of these alive instead: children fork once, fault their
    share of the heap once, and stay warm for every later call.

    The callable is parked in the fork registry *before* the pool is
    created — exactly like ``map_batch``'s process branch — and stays
    registered for the pool's lifetime (popped by :meth:`close`).  Per
    call only the payload items and results cross the pipe.
    """

    def __init__(self, fn: Callable[[Any], Any], max_workers: int) -> None:
        if not fork_available():  # pragma: no cover - non-fork platforms
            raise RuntimeError(
                "PersistentProcessPool requires the fork start method"
            )
        self._token = next(_FORK_TOKENS)
        with _FORK_LOCK:
            _FORK_REGISTRY[self._token] = fn
        context = multiprocessing.get_context("fork")
        self._pool: ProcessPoolExecutor | None = ProcessPoolExecutor(
            max_workers=max(1, int(max_workers)), mp_context=context
        )

    def map(self, items: Sequence[Any]) -> list[Any]:
        """Apply the bound callable to every item; results in input order.

        Re-raises the first task exception, like :func:`map_batch`.  The
        pool survives task exceptions (only a crashed worker breaks it).
        """
        pool = self._pool
        if pool is None:
            raise RuntimeError("persistent pool is closed")
        return list(
            pool.map(_call_registered, itertools.repeat(self._token), items)
        )

    @property
    def closed(self) -> bool:
        return self._pool is None

    def close(self) -> None:
        """Shut the workers down and unregister the callable (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        with _FORK_LOCK:
            _FORK_REGISTRY.pop(self._token, None)

    def __enter__(self) -> "PersistentProcessPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def map_batch(
    fn: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    max_workers: int | None = None,
    backend: str = "thread",
) -> list[R]:
    """Apply ``fn`` to every item; results in input order.

    The workhorse of ``query_batch``.  ``backend``/``max_workers``
    choose the pool; degenerate cases (one item, one worker, serial
    backend) run the plain loop so the parallel path is *bit-identical*
    to it by construction.
    """
    validate_backend(backend)
    items = list(items)
    workers = effective_workers(max_workers, len(items))
    if backend == "serial" or workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]

    if backend == "process":
        if not fork_available():  # pragma: no cover - non-fork platforms
            backend = "thread"
        else:
            token = next(_FORK_TOKENS)
            with _FORK_LOCK:
                _FORK_REGISTRY[token] = fn
            try:
                context = multiprocessing.get_context("fork")
                with ProcessPoolExecutor(
                    max_workers=workers, mp_context=context
                ) as pool:
                    return list(
                        pool.map(_call_registered, itertools.repeat(token), items)
                    )
            finally:
                with _FORK_LOCK:
                    _FORK_REGISTRY.pop(token, None)

    with ThreadPoolExecutor(
        max_workers=workers, thread_name_prefix="repro-batch"
    ) as pool:
        return list(pool.map(fn, items))
