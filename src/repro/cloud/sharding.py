"""Sharded scatter-gather cloud: ``Go`` partitioned across N servers.

The paper's cloud holds all of ``Go`` in one machine.  This module
scales the same engine horizontally, the way STwig partitions billion
node graphs over Trinity: the coordinator splits ``Go`` into ``N``
shards with the multilevel partitioner
(:func:`repro.kauto.partition.partition_graph` — the privacy argument:
the partitioner is a pure structural algorithm run on the *published*
graph the cloud already stores, so no owner/client secret is
consulted), scatters each query's star plan to every shard, and joins
the gathered per-shard tables centrally.

**Halo construction.**  A star anchored at center ``c`` touches only
``c`` and its direct neighbours, so shard ``i`` stores its centers
(``block_i ∩ center_vertices``) plus a one-hop *halo* of every
neighbour of those centers.  Within the shard subgraph each local
center then has exactly its ``Go`` neighbourhood — star matching
against the shard is bit-identical to matching the same center against
the full graph.  Halo vertices are storage overlap only: they are
never indexed as centers, so each candidate center lives in exactly
one shard.

**Bit-identity.**  Single-server star tables list centers in
``center_vertices`` order (the VBV yields candidates in ascending bit
position) with a deterministic DFS row block per center.  Shard-local
center lists preserve the global order, so gathering is a stable merge
of the per-shard tables keyed by each row's global center position —
followed by a defensive dedupe — and reproduces the single-server
table exactly, rows and order.  The central join, budget enforcement
and telemetry then run the very same code as
:class:`~repro.cloud.server.CloudServer`, making
:meth:`ShardedCloud.answer` bit-identical to the single-server path
for every shard count and scatter backend.

**Wire format.**  With a :class:`~repro.core.protocol.NetworkChannel`
attached, scatter/gather really crosses the simulated wire: one
:func:`~repro.core.protocol.encode_shard_request` frame per shard out,
one :func:`~repro.core.protocol.encode_shard_tables` frame per shard
back, all byte-accounted under the ``shard_query``/``shard_answer``
directions.  Without a channel (the default) the handoff is in-memory
and only the scatter backend (serial/thread/fork-process via
:func:`~repro.cloud.parallel.map_batch`) is exercised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.analysis.markers import hot_path
from repro.anonymize.cost_model import (
    StarCardinalityEstimator,
    estimator_from_outsourced,
)
from repro.cloud.cache import (
    StarMatchCache,
    leaf_role_order,
    roles_to_table,
    star_signature,
    table_to_roles,
)
from repro.cloud.decomposition import decompose_query
from repro.cloud.index import CloudIndex
from repro.cloud.parallel import (
    PersistentProcessPool,
    effective_workers,
    fork_available,
    map_batch,
    validate_backend,
)
from repro.cloud.result_join import join_star_tables
from repro.cloud.server import CloudAnswer
from repro.cloud.star_matching import StarMatchStats, match_star_table
from repro.core.protocol import (
    NetworkChannel,
    TraceContext,
    decode_shard_request,
    decode_shard_tables,
    encode_shard_request,
    encode_shard_tables,
)
from repro.exceptions import ResultBudgetExceeded
from repro.graph.attributed import AttributedGraph
from repro.graph.stats import compute_statistics
from repro.kauto.avt import AlignmentVertexTable
from repro.kauto.partition import partition_graph
from repro.matching.star import Star
from repro.matching.table import MatchTable, Row, dedupe_rows
from repro.obs import Observability, SlidingWindow, names
from repro.obs.tracing import NullTracer, Trace, Tracer
from repro.outsource.delta import GoDelta

import threading


@dataclass
class CloudShard:
    """One shard server: a slice of ``Go`` with its own index + cache.

    ``centers`` is this shard's subsequence of the global
    ``center_vertices`` list (global order preserved — the merge step
    depends on it); ``graph`` is the induced subgraph over the centers
    plus their one-hop halo; ``index``/``cache`` mirror a standalone
    :class:`~repro.cloud.server.CloudServer`'s per-server state.
    """

    shard_id: int
    centers: list[int]
    graph: AttributedGraph
    index: CloudIndex
    cache: StarMatchCache

    def index_size_bytes(self) -> int:
        return self.index.size_bytes()


def halo_vertices(graph: AttributedGraph, centers: Sequence[int]) -> set[int]:
    """The shard's vertex set: centers plus every direct neighbour.

    One hop suffices: a star match binds the center and vertices
    adjacent to it, and leaf label checks only read vertex data — no
    leaf-to-leaf edges are ever consulted (those belong to other stars
    of the decomposition).
    """
    keep: set[int] = set(centers)
    for center in centers:
        keep |= graph.neighbors(center)
    return keep


def build_shards(
    graph: AttributedGraph,
    center_vertices: Sequence[int],
    shards: int,
    star_cache_size: int = 0,
    seed: int = 0,
) -> list[CloudShard]:
    """Partition ``graph`` and stand up one :class:`CloudShard` per block.

    Blocks that receive no candidate centers are dropped (they would
    answer every request with empty tables), so the returned list may
    be shorter than ``shards`` on small graphs.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    position = {vid: i for i, vid in enumerate(center_vertices)}
    if shards == 1:
        blocks = [list(center_vertices)]
    else:
        blocks = partition_graph(graph, shards, seed=seed)
    built: list[CloudShard] = []
    for block in blocks:
        members = set(block)
        centers = [vid for vid in center_vertices if vid in members]
        if not centers:
            continue
        shard_graph = graph.induced_subgraph(
            halo_vertices(graph, centers), name=f"shard-{len(built)}"
        )
        built.append(
            CloudShard(
                shard_id=len(built),
                centers=centers,
                graph=shard_graph,
                index=CloudIndex.build(shard_graph, centers),
                cache=StarMatchCache(star_cache_size),
            )
        )
    # re-assert the global invariant the merge relies on: every center
    # in exactly one shard, in global order within each
    assert sum(len(s.centers) for s in built) == len(position)
    return built


@hot_path
def merge_star_tables(
    star: Star, tables: Sequence[MatchTable], position: dict[int, int]
) -> MatchTable:
    """Gather one star's per-shard tables into the single-server table.

    Rows are keyed by the global position of their center (column 0 of
    the star schema); each shard's rows arrive already ordered by it,
    and shard center sets are disjoint, so a stable sort reconstructs
    exactly the order the full-graph kernel emits.  The trailing dedupe
    is defensive — halo vertices are never indexed, so duplicates can
    only come from a misbehaving shard reply.
    """
    schema = (star.center, *star.leaves)
    rows: list[Row] = []
    for table in tables:
        if table.schema == schema:
            rows.extend(table.rows)
        else:
            rows.extend(table.project_rows(schema))
    rows.sort(key=lambda row: position[row[0]])
    return MatchTable(schema, dedupe_rows(rows))


class ShardCacheView:
    """CloudServer-compatible facade over the per-shard star caches.

    ``PrivacyPreservingSystem.query_batch`` and the CLI read
    ``cloud.star_cache.counters()``; this view aggregates the shard
    caches behind the same surface.  It reads through a callable so a
    post-:meth:`ShardedCloud.apply_delta` rebuild is reflected
    immediately.
    """

    def __init__(self, caches: Callable[[], list[StarMatchCache]]) -> None:
        self._caches = caches

    @property
    def hits(self) -> int:
        return sum(cache.counters()[0] for cache in self._caches())

    @property
    def misses(self) -> int:
        return sum(cache.counters()[1] for cache in self._caches())

    def counters(self) -> tuple[int, int]:
        """Aggregate ``(hits, misses)`` across every shard cache."""
        hits = misses = 0
        for cache in self._caches():
            shard_hits, shard_misses = cache.counters()
            hits += shard_hits
            misses += shard_misses
        return hits, misses

    def clear(self) -> None:
        for cache in self._caches():
            cache.clear()

    @property
    def hit_rate(self) -> float:
        hits, misses = self.counters()
        total = hits + misses
        return hits / total if total else 0.0

    def __len__(self) -> int:
        return sum(len(cache) for cache in self._caches())


class ShardedCloud:
    """Scatter-gather coordinator over ``N`` :class:`CloudShard` servers.

    Construction mirrors :class:`~repro.cloud.server.CloudServer` (the
    coordinator still holds the full published graph — it is the data
    the owner uploaded; the shards are the cloud's *internal* layout),
    plus:

    shards:
        Requested shard count.  Shards whose partition block holds no
        candidate center are dropped; ``len(cloud.shards)`` is the
        effective count.
    backend / max_workers:
        How star-match requests are scattered:
        :func:`~repro.cloud.parallel.map_batch` semantics
        (``serial``/``thread``/``process``).  The fork-process backend
        scatters through a persistent
        :class:`~repro.cloud.parallel.PersistentProcessPool` — children
        inherit the shard state copy-on-write at first use and stay
        warm across answers (so per-shard cache updates live in the
        children, and the page-faulting cost of the inherited heap is
        paid once, not per query).
    channel:
        Optional :class:`~repro.core.protocol.NetworkChannel`.  When
        given, every scatter/gather really encodes, transmits and
        decodes shard frames (byte-accounted under ``shard_query`` /
        ``shard_answer``); ``None`` (default) hands tables over
        in-memory.
    partition_seed:
        Seed of the multilevel partitioner (answers are bit-identical
        for every seed; the seed only shapes the shard layout).
    """

    def __init__(
        self,
        graph: AttributedGraph,
        avt: AlignmentVertexTable,
        center_vertices: list[int],
        shards: int = 2,
        expand_in_cloud: bool = True,
        max_intermediate_results: int | None = None,
        join_strategy: str = "rin",
        star_cache_size: int = 0,
        decomposition_strategy: str = "optimal",
        backend: str = "thread",
        max_workers: int | None = None,
        channel: NetworkChannel | None = None,
        partition_seed: int = 0,
        obs: Observability | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if join_strategy not in ("rin", "full"):
            raise ValueError("join_strategy must be 'rin' or 'full'")
        if decomposition_strategy not in ("optimal", "greedy"):
            raise ValueError("decomposition_strategy must be 'optimal' or 'greedy'")
        validate_backend(backend)
        self.graph = graph
        self.avt = avt
        self.center_vertices = list(center_vertices)
        self.shard_count = shards
        self.expand_in_cloud = expand_in_cloud
        self.max_intermediate_results = max_intermediate_results
        self.join_strategy = join_strategy
        self.star_cache_size = star_cache_size
        self.decomposition_strategy = decomposition_strategy
        self.backend = backend
        self.max_workers = max_workers
        self.channel = channel
        self.partition_seed = partition_seed
        self._state_lock = threading.Lock()
        # persistent fork pool of the process backend: forked lazily on
        # the first process scatter and reused across answers so the
        # children's copy-on-write faulting of the shard heap is paid
        # once, not per query.  Swapped out whenever the shard state it
        # snapshotted changes (apply_delta) and torn down by close().
        self._scatter_pool: PersistentProcessPool | None = None  #: guarded by _state_lock
        self._scatter_pool_version = -1  #: guarded by _state_lock
        self._shard_version = 0  #: guarded by _state_lock
        self.obs = obs if obs is not None else Observability.measuring()
        with self.obs.tracer.span(names.CLOUD_INDEX_BUILD) as span:
            self._shards = build_shards(  #: guarded by _state_lock
                graph,
                self.center_vertices,
                shards,
                star_cache_size=star_cache_size,
                seed=partition_seed,
            )
            span.set(
                shards=len(self._shards),
                index_bytes=sum(s.index_size_bytes() for s in self._shards),
                build_seconds=sum(s.index.build_seconds for s in self._shards),
            )
        self._center_position = {
            vid: i for i, vid in enumerate(self.center_vertices)
        }
        self.estimator = self._build_estimator()
        self.star_cache = ShardCacheView(self._shard_caches)
        self.obs.metrics.register_callback(
            names.M_CACHE_HITS,
            lambda: float(self.star_cache.hits),
            help="Star-cache hits across all shards (or since clear).",
        )
        self.obs.metrics.register_callback(
            names.M_CACHE_MISSES,
            lambda: float(self.star_cache.misses),
            help="Star-cache misses across all shards (or since clear).",
        )
        self.latency_window = SlidingWindow(capacity=1024)
        self.latency_window.register(
            self.obs.metrics,
            names.W_CLOUD_WINDOW,
            help="Cloud-side answer seconds over the SLO window.",
        )

    # ------------------------------------------------------------------
    # shard state accessors
    # ------------------------------------------------------------------
    @property
    def shards(self) -> list[CloudShard]:
        """A snapshot of the current shard servers."""
        with self._state_lock:
            return list(self._shards)

    def _shard_caches(self) -> list[StarMatchCache]:
        with self._state_lock:
            return [shard.cache for shard in self._shards]

    def _build_estimator(self) -> StarCardinalityEstimator:
        # identical to CloudServer._build_estimator: decomposition must
        # pick the same star plan the single server would.
        if self.expand_in_cloud:
            return estimator_from_outsourced(
                self.center_vertices, self.graph, self.avt.k
            )
        stats = compute_statistics(self.graph)
        return StarCardinalityEstimator(
            block_stats=stats,
            gk_vertex_count=self.graph.vertex_count,
            average_degree=self.graph.average_degree(),
            k=1,
        )

    # ------------------------------------------------------------------
    # query answering
    # ------------------------------------------------------------------
    def answer(
        self, query: AttributedGraph, obs: Observability | None = None
    ) -> CloudAnswer:
        """The full scatter-gather pipeline on an anonymized query ``Qo``.

        Bit-identical to single-server
        :meth:`~repro.cloud.server.CloudServer.answer`: same
        decomposition, same star tables (same rows, same order), same
        join, same budget trips, same telemetry fields.
        """
        if obs is None:
            obs = self.obs
        tracer = obs.tracer
        with self._state_lock:
            shards = list(self._shards)

        with tracer.span(names.CLOUD_ANSWER) as root:
            with tracer.span(names.CLOUD_DECOMPOSE) as decompose_span:
                decomposition = decompose_query(
                    query, self.estimator, strategy=self.decomposition_strategy
                )
                decompose_span.set(stars=len(decomposition.stars))

            star_tables, star_stats, shard_results = self._scatter_gather(
                query, decomposition.stars, shards, tracer, obs
            )
            full_join = self.join_strategy == "full"
            with tracer.span(names.CLOUD_JOIN) as join_span:
                rin_table, join_stats = join_star_tables(
                    decomposition.stars,
                    star_tables,
                    self.avt,
                    expand=self.expand_in_cloud,
                    max_intermediate=self.max_intermediate_results,
                    expand_anchor=full_join,
                )
                join_span.set(
                    rin_size=join_stats.rin_size,
                    intermediate_peak=max(
                        join_stats.intermediate_sizes, default=0
                    ),
                )
            root.set(
                rs_size=star_stats.total_results,
                rin_size=join_stats.rin_size,
                matches=len(rin_table),
                expanded=not self.expand_in_cloud or full_join,
                shards=len(shards),
            )

        metrics = obs.metrics
        metrics.counter(
            names.M_STAR_MATCHES,
            help="Star matches (|RS|) produced across all queries.",
        ).inc(star_stats.total_results)
        metrics.counter(
            names.M_SHARD_MATCHES,
            help="Per-shard star matches gathered (pre-merge).",
        ).inc(shard_results)
        metrics.gauge(
            names.M_INTERMEDIATE_PEAK,
            help="Largest join intermediate seen by any query.",
        ).set_max(max(join_stats.intermediate_sizes, default=0))
        metrics.histogram(
            names.M_CLOUD_SECONDS,
            help="Cloud-side wall seconds per query.",
        ).observe(root.duration)
        if obs.enabled:
            self.latency_window.observe(root.duration)

        return CloudAnswer(
            table=rin_table,
            expanded=not self.expand_in_cloud or full_join,
            decomposition=decomposition,
            decomposition_seconds=decompose_span.duration,
            star_stats=star_stats,
            join_stats=join_stats,
            cloud_seconds=root.duration,
        )

    def query_batch(
        self,
        queries: list[AttributedGraph],
        max_workers: int | None = None,
        backend: str = "thread",
    ) -> list[CloudAnswer]:
        """Answer a workload concurrently; results in input order.

        Each query runs the full scatter-gather of :meth:`answer`; the
        shard indexes are shared read-only and each shard's cache is
        internally locked, so batch workers overlap freely.  Nesting a
        ``process`` batch over a ``process`` scatter is legal (each
        forked batch child scatters over its inherited shard copies).
        """
        validate_backend(backend)
        return map_batch(self.answer, list(queries), max_workers, backend)

    # ------------------------------------------------------------------
    # scatter / gather
    # ------------------------------------------------------------------
    @hot_path
    def _match_on_shard(
        self, shard: CloudShard, query: AttributedGraph, stars: Sequence[Star]
    ) -> dict[int, MatchTable]:
        """Match every star of the plan against one shard (Algorithm 1).

        The per-shard replica of the single server's cached star loop:
        misses run the columnar kernel over the shard graph/index,
        hits re-label the shard cache's role-form rows.
        """
        results: dict[int, MatchTable] = {}
        use_cache = shard.cache.capacity > 0
        for star in stars:
            if use_cache:
                signature = star_signature(query, star)
                role_order = leaf_role_order(query, star)
                roles = shard.cache.get(signature)
                if roles is None:
                    table = match_star_table(
                        query,
                        star,
                        shard.index,
                        shard.graph,
                        max_results=self.max_intermediate_results,
                    )
                    shard.cache.put(
                        signature, table_to_roles(table, star, role_order)
                    )
                else:
                    table = roles_to_table(roles, star, role_order)
            else:
                table = match_star_table(
                    query,
                    star,
                    shard.index,
                    shard.graph,
                    max_results=self.max_intermediate_results,
                )
            results[star.center] = table
        return results

    def _make_scatter_worker(
        self, shards: list[CloudShard]
    ) -> Callable[
        [tuple[int, AttributedGraph, tuple[Star, ...], dict | None]],
        tuple[dict[int, MatchTable], dict | None],
    ]:
        """The fixed callable a persistent scatter pool is bound to.

        Captures an explicit shard snapshot rather than reading
        ``self._shards`` so the forked children never touch the
        coordinator's state lock (a lock inherited mid-acquisition
        would deadlock the child); per task only the payload tuple
        crosses the pipe.  When the payload carries a trace-context
        doc, the child records its shard-match span on a private
        tracer and ships the trace doc back with the tables — the
        coordinator absorbs it under its ``cloud.star_matching`` span,
        making fork-child work visible in the stitched trace.
        """

        def run(
            payload: tuple[int, AttributedGraph, tuple[Star, ...], dict | None]
        ) -> tuple[dict[int, MatchTable], dict | None]:
            position, query, stars, ctx_doc = payload
            shard = shards[position]
            if ctx_doc is None:
                return self._match_on_shard(shard, query, list(stars)), None
            context = TraceContext.from_doc(ctx_doc)
            child_tracer = Tracer(query_id=context.query_id)
            with child_tracer.span(
                names.CLOUD_SHARD_MATCH,
                shard=shard.shard_id,
                ctx_parent=context.parent_span_id,
            ) as span:
                tables = self._match_on_shard(shard, query, list(stars))
                span.set(results=sum(len(t) for t in tables.values()))
            return tables, child_tracer.take_trace().to_dict()

        return run

    def _ensure_scatter_pool(self, workers: int) -> PersistentProcessPool:
        """The warm fork pool for the current shard state (lazily forked).

        A pool snapshotted against stale shard state (after
        :meth:`apply_delta`) is replaced — its children hold the old
        copy-on-write graph and would answer against it forever.
        """
        stale: PersistentProcessPool | None = None
        with self._state_lock:
            pool = self._scatter_pool
            if (
                pool is not None
                and self._scatter_pool_version == self._shard_version
            ):
                return pool
            stale = pool
            pool = PersistentProcessPool(
                self._make_scatter_worker(list(self._shards)), workers
            )
            self._scatter_pool = pool
            self._scatter_pool_version = self._shard_version
        if stale is not None:
            stale.close()
        return pool

    def _scatter_gather(
        self,
        query: AttributedGraph,
        stars: Sequence[Star],
        shards: list[CloudShard],
        tracer: NullTracer,
        obs: Observability,
    ) -> tuple[dict[int, MatchTable], StarMatchStats, int]:
        """Scatter the star plan, gather and merge the shard tables.

        Returns the merged per-star tables (single-server identical),
        the :class:`StarMatchStats`, and the raw pre-merge shard result
        count (the ``shard_star_matches_total`` increment).
        """
        stats = StarMatchStats()
        star_list = list(stars)
        channel = self.channel

        with tracer.span(
            names.CLOUD_STAR_MATCHING, stars=len(star_list), shards=len(shards)
        ) as matching_span:
            # the propagated context: shard work (wire frames, fork
            # children) parents under the coordinator's star-matching
            # span; absent entirely when the call is untraced.
            context: TraceContext | None = None
            if tracer.recording and matching_span.span_id:
                context = TraceContext(
                    query_id=tracer.query_id,
                    parent_span_id=matching_span.span_id,
                )
            with tracer.span(names.CLOUD_SCATTER, shards=len(shards)) as scatter:
                payload: bytes | None = None
                if channel is not None:
                    payload = encode_shard_request(
                        query, star_list, context=context
                    )
                    for _ in shards:
                        channel.transmit("shard_query", payload, obs=obs)
                    scatter.set(bytes=len(payload) * len(shards))

            if channel is not None:
                request = payload

                def run_shard_wire(position: int) -> bytes:
                    shard = shards[position]
                    with tracer.span(
                        names.CLOUD_SHARD_MATCH,
                        parent=matching_span,
                        shard=shard.shard_id,
                    ) as span:
                        assert request is not None
                        shard_query, shard_stars, shard_ctx = (
                            decode_shard_request(request)
                        )
                        if shard_ctx is not None:
                            span.set(ctx_parent=shard_ctx.parent_span_id)
                        tables = self._match_on_shard(
                            shard, shard_query, shard_stars
                        )
                        span.set(
                            results=sum(len(t) for t in tables.values())
                        )
                    return encode_shard_tables(tables)

                replies = map_batch(
                    run_shard_wire,
                    list(range(len(shards))),
                    self.max_workers,
                    self.backend,
                )
                per_shard: list[dict[int, MatchTable]] = []
                for reply in replies:
                    channel.transmit("shard_answer", reply, obs=obs)
                    per_shard.append(decode_shard_tables(reply))
            else:
                workers = effective_workers(self.max_workers, len(shards))
                if (
                    self.backend == "process"
                    and workers > 1
                    and len(shards) > 1
                    and fork_available()
                ):
                    # warm persistent children; when tracing, each
                    # child records its shard-match span on a private
                    # tracer and ships the trace back for absorption
                    # under the star-matching span (fresh local ids —
                    # child counters all start at 1 and would collide).
                    pool = self._ensure_scatter_pool(workers)
                    ctx_doc = context.to_doc() if context is not None else None
                    shipped = pool.map(
                        [
                            (position, query, tuple(star_list), ctx_doc)
                            for position in range(len(shards))
                        ]
                    )
                    per_shard = []
                    for tables, trace_doc in shipped:
                        per_shard.append(tables)
                        if trace_doc is not None:
                            tracer.absorb(
                                Trace.from_dict(trace_doc),
                                parent=matching_span,
                            )
                else:

                    def run_shard(position: int) -> dict[int, MatchTable]:
                        shard = shards[position]
                        with tracer.span(
                            names.CLOUD_SHARD_MATCH,
                            parent=matching_span,
                            shard=shard.shard_id,
                        ) as span:
                            tables = self._match_on_shard(
                                shard, query, star_list
                            )
                            span.set(
                                results=sum(len(t) for t in tables.values())
                            )
                        return tables

                    per_shard = map_batch(
                        run_shard,
                        list(range(len(shards))),
                        self.max_workers,
                        self.backend,
                    )

            with tracer.span(names.CLOUD_GATHER) as gather_span:
                results: dict[int, MatchTable] = {}
                shard_results = 0
                budget = self.max_intermediate_results
                for star in star_list:
                    tables = [
                        shard_tables[star.center]
                        for shard_tables in per_shard
                        if star.center in shard_tables
                    ]
                    shard_results += sum(len(table) for table in tables)
                    merged = merge_star_tables(
                        star, tables, self._center_position
                    )
                    if budget is not None and len(merged) > budget:
                        # a shard-local trip would already have raised in
                        # the scatter; this catches unions that only
                        # exceed the budget once merged — exactly the
                        # queries the single server rejects.
                        raise ResultBudgetExceeded(
                            "star matching", len(merged), budget
                        )
                    results[star.center] = merged
                    stats.result_sizes[star.center] = len(merged)
                gather_span.set(
                    rs_size=stats.total_results, shard_results=shard_results
                )
            matching_span.set(rs_size=stats.total_results)
        stats.seconds = matching_span.duration
        return results, stats, shard_results

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def apply_delta(self, delta: GoDelta) -> None:
        """Apply an owner delta and rebuild every shard.

        Same contract as
        :meth:`~repro.cloud.server.CloudServer.apply_delta`: graph and
        AVT update, indexes rebuild, caches invalidate (the rebuild
        replaces them wholesale).  ``Go`` deployments only.
        """
        from repro.outsource.delta import apply_go_delta
        from repro.outsource.outsourced_graph import OutsourcedGraph

        if not self.expand_in_cloud:
            raise ValueError("deltas apply to Go deployments only")
        outsourced = OutsourcedGraph(
            graph=self.graph, block_vertices=self.center_vertices
        )
        apply_go_delta(outsourced, delta)
        self.center_vertices = outsourced.block_vertices
        if delta.added_avt_rows:
            rows = [list(row) for row in self.avt.rows()]
            rows.extend(delta.added_avt_rows)
            self.avt = AlignmentVertexTable(rows)
        self.estimator = self._build_estimator()
        self._center_position = {
            vid: i for i, vid in enumerate(self.center_vertices)
        }
        rebuilt = build_shards(
            self.graph,
            self.center_vertices,
            self.shard_count,
            star_cache_size=self.star_cache_size,
            seed=self.partition_seed,
        )
        with self._state_lock:
            self._shards = rebuilt
            self._shard_version += 1
            stale, self._scatter_pool = self._scatter_pool, None
        if stale is not None:
            # children hold the pre-delta graph copy-on-write; drain
            # them so the next process scatter forks fresh state.
            stale.close()

    def close(self) -> None:
        """Tear down the persistent scatter pool (if one was forked)."""
        with self._state_lock:
            stale, self._scatter_pool = self._scatter_pool, None
        if stale is not None:
            stale.close()

    def __enter__(self) -> "ShardedCloud":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def index_size_bytes(self) -> int:
        """Total bytes across every shard's VBV/LBV tables."""
        with self._state_lock:
            return sum(shard.index_size_bytes() for shard in self._shards)

    def index_build_seconds(self) -> float:
        """Summed shard index build time (they build sequentially)."""
        with self._state_lock:
            return sum(shard.index.build_seconds for shard in self._shards)
