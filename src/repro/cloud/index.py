"""The cloud's bit-vector index (Figure 7): VBV and LBV tables.

Built offline over the published graph:

* **VBV** (Vertex Bit Vector) — one bit vector per *label group*; bit
  ``p`` is set iff the ``p``-th indexed vertex carries that group.
  A companion per-*vertex-type* bit vector plays the same role for
  types (the paper checks types alongside label groups).
* **LBV** (Neighbor Label Bit Vector) — one bit vector per indexed
  vertex, over label groups; bit ``g`` is set iff at least one
  neighbour of the vertex carries group ``g``.

Bit vectors are Python integers (arbitrary-precision bitsets), so the
bitwise AND of Algorithm 1 is a single machine-assisted operation.

The *indexed vertices* are the candidate star centers: block ``B1``
for the optimized method (centers of ``Rin`` matches live in ``B1``),
or all of ``Gk`` for the BAS baseline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.graph.attributed import AttributedGraph, VertexData

# a label-group coordinate as it appears on vertices: (attribute, group id)
GroupBitKey = tuple[str, str]


@dataclass
class CloudIndex:
    """VBV/LBV tables over the indexed (candidate-center) vertices."""

    indexed_vertices: list[int]
    position: dict[int, int]
    type_bits: dict[str, int]
    vbv: dict[GroupBitKey, int]
    group_bit: dict[GroupBitKey, int]
    lbv: dict[int, int]
    build_seconds: float = 0.0
    _full_mask: int = field(default=0)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: AttributedGraph,
        indexed_vertices: Sequence[int],
    ) -> "CloudIndex":
        """Build the index over ``indexed_vertices`` of ``graph``.

        Neighbour information (LBV) is drawn from ``graph`` — for the
        optimized method that is ``Go``, which contains every ``Gk``
        edge incident to ``B1``, so LBVs are complete.
        """
        started = time.perf_counter()
        vertices = list(indexed_vertices)
        position = {vid: p for p, vid in enumerate(vertices)}

        type_bits: dict[str, int] = {}
        vbv: dict[GroupBitKey, int] = {}
        group_bit: dict[GroupBitKey, int] = {}

        def bit_of(key: GroupBitKey) -> int:
            if key not in group_bit:
                group_bit[key] = len(group_bit)
            return group_bit[key]

        for vid in vertices:
            data = graph.vertex(vid)
            mask = 1 << position[vid]
            type_bits[data.vertex_type] = type_bits.get(data.vertex_type, 0) | mask
            for attr, groups in data.labels.items():
                for group in groups:
                    key = (attr, group)
                    bit_of(key)
                    vbv[key] = vbv.get(key, 0) | mask

        # group bits must also exist for groups only seen on neighbours
        lbv: dict[int, int] = {}
        for vid in vertices:
            neighbor_mask = 0
            for nbr in graph.neighbors(vid):
                nbr_data = graph.vertex(nbr)
                for attr, groups in nbr_data.labels.items():
                    for group in groups:
                        neighbor_mask |= 1 << bit_of((attr, group))
            lbv[vid] = neighbor_mask

        index = cls(
            indexed_vertices=vertices,
            position=position,
            type_bits=type_bits,
            vbv=vbv,
            group_bit=group_bit,
            lbv=lbv,
        )
        index._full_mask = (1 << len(vertices)) - 1
        index.build_seconds = time.perf_counter() - started
        return index

    # ------------------------------------------------------------------
    # Algorithm 1 primitives
    # ------------------------------------------------------------------
    def candidate_center_mask(self, query_vertex: VertexData) -> int:
        """Line 4 of Algorithm 1: AND of the VBVs of the center's groups.

        Returns 0 as soon as any constraint has no support (unknown
        type or group), which simply means "no candidates".
        """
        mask = self.type_bits.get(query_vertex.vertex_type, 0)
        for attr, groups in query_vertex.labels.items():
            for group in groups:
                mask &= self.vbv.get((attr, group), 0)
                if not mask:
                    return 0
        return mask

    def candidates_from_mask(self, mask: int) -> Iterable[int]:
        """Vertex ids of the set bits of ``mask``."""
        vertices = self.indexed_vertices
        while mask:
            low = mask & -mask
            yield vertices[low.bit_length() - 1]
            mask ^= low

    def query_neighbor_mask(self, leaf_vertices: Iterable[VertexData]) -> int:
        """``LBV(v_i)`` of Algorithm 1: bits of all groups on the leaves.

        Returns -1 (sentinel) if a leaf carries a group that no indexed
        vertex's neighbourhood contains — the star is unmatchable.
        """
        mask = 0
        for leaf in leaf_vertices:
            for attr, groups in leaf.labels.items():
                for group in groups:
                    bit = self.group_bit.get((attr, group))
                    if bit is None:
                        return -1
                    mask |= 1 << bit
        return mask

    def neighborhood_supports(self, vid: int, query_mask: int) -> bool:
        """Line 6 of Algorithm 1: ``LBV(va) ∧ LBV(vi) == LBV(vi)``."""
        if query_mask < 0:
            return False
        have = self.lbv.get(vid, 0)
        return (have & query_mask) == query_mask

    # ------------------------------------------------------------------
    # accounting (Figure 13)
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Approximate in-memory size: both bit tables, in bytes.

        VBV: one |indexed|-bit vector per label group (+ per type);
        LBV: one |groups|-bit vector per indexed vertex.  This mirrors
        the paper's index-size accounting, which scales with |V(Go)|.
        """
        rows = len(self.vbv) + len(self.type_bits)
        vbv_bits = rows * max(len(self.indexed_vertices), 1)
        lbv_bits = len(self.indexed_vertices) * max(len(self.group_bit), 1)
        return (vbv_bits + lbv_bits + 7) // 8
