"""The cloud's bit-vector index (Figure 7): VBV and LBV tables.

Built offline over the published graph:

* **VBV** (Vertex Bit Vector) — one bit vector per *label group*; bit
  ``p`` is set iff the ``p``-th indexed vertex carries that group.
  A companion per-*vertex-type* bit vector plays the same role for
  types (the paper checks types alongside label groups).
* **LBV** (Neighbor Label Bit Vector) — one bit vector per indexed
  vertex, over label groups; bit ``g`` is set iff at least one
  neighbour of the vertex carries group ``g``.

Bit vectors are Python integers (arbitrary-precision bitsets), so the
bitwise AND of Algorithm 1 is a single machine-assisted operation.

The *indexed vertices* are the candidate star centers: block ``B1``
for the optimized method (centers of ``Rin`` matches live in ``B1``),
or all of ``Gk`` for the BAS baseline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.analysis.markers import hot_path
from repro.graph.attributed import AttributedGraph, VertexData
from repro.matching import vec

# a label-group coordinate as it appears on vertices: (attribute, group id)
GroupBitKey = tuple[str, str]


@dataclass
class GraphCSR:
    """Compressed sparse-row adjacency + inverted label/type indexes.

    The flat companion to a published graph: neighbor lists
    concatenated into one int64 ``indices`` array (each per-vertex
    slice **ascending**, matching ``sorted(graph.neighbors(v))``),
    packed sorted edge keys for bulk edge-membership tests, and sorted
    vertex-id arrays per vertex type and per ``(attribute, group)``
    label so a query vertex's full candidate set is a chain of sorted
    intersections instead of per-vertex ``matches`` calls.

    Only built when numpy is available and the id space is dense
    enough for the position LUT and small enough for 63-bit packed
    edge keys (:meth:`build` returns ``None`` otherwise) — every
    consumer treats a missing CSR as "use the tuple kernels".
    """

    source: AttributedGraph
    ids: Any  # sorted vertex ids, int64
    pos: Any  # dense id -> row LUT (-1 = unknown vertex)
    indptr: Any
    indices: Any  # neighbor ids, ascending within each row slice
    edge_keys: Any  # sorted packed min*stride+max keys
    stride: int
    type_ids: dict[str, Any]
    label_ids: dict[GroupBitKey, Any]

    @classmethod
    def build(cls, graph: AttributedGraph) -> "GraphCSR | None":
        """The CSR of ``graph``, or ``None`` when ineligible.

        Eligibility: numpy importable, all vertex ids non-negative and
        below both :data:`repro.matching.vec.PACKED_ID_LIMIT` (packed
        edge keys stay within int64) and
        :data:`repro.matching.vec.DENSE_LUT_LIMIT` (the dense position
        LUT stays small).
        """
        if not vec.HAVE_NUMPY:
            return None
        np = vec.np
        ids = sorted(graph.vertex_ids())
        if ids and (
            ids[0] < 0
            or ids[-1] >= min(vec.PACKED_ID_LIMIT, vec.DENSE_LUT_LIMIT)
        ):
            return None
        max_id = ids[-1] if ids else -1
        stride = max_id + 1 if max_id >= 0 else 1
        ids_arr = np.asarray(ids, dtype=np.int64)
        pos = np.full(max_id + 1, -1, dtype=np.int64)
        pos[ids_arr] = np.arange(len(ids), dtype=np.int64)

        indptr = np.zeros(len(ids) + 1, dtype=np.int64)
        flat_neighbors: list[int] = []
        type_lists: dict[str, list[int]] = {}
        label_lists: dict[GroupBitKey, list[int]] = {}
        for row, vid in enumerate(ids):
            flat_neighbors.extend(sorted(graph.neighbors(vid)))
            indptr[row + 1] = len(flat_neighbors)
            data = graph.vertex(vid)
            type_lists.setdefault(data.vertex_type, []).append(vid)
            for attr, groups in data.labels.items():
                for group in groups:
                    label_lists.setdefault((attr, group), []).append(vid)
        indices = np.asarray(flat_neighbors, dtype=np.int64)

        edge_keys = np.fromiter(
            (u * stride + v for u, v in graph.edges()),
            dtype=np.int64,
            count=graph.edge_count,
        )
        edge_keys.sort()

        # ids were walked in ascending order, so every inverted list is
        # already sorted and unique
        return cls(
            source=graph,
            ids=ids_arr,
            pos=pos,
            indptr=indptr,
            indices=indices,
            edge_keys=edge_keys,
            stride=stride,
            type_ids={
                t: np.asarray(lst, dtype=np.int64)
                for t, lst in type_lists.items()
            },
            label_ids={
                k: np.asarray(lst, dtype=np.int64)
                for k, lst in label_lists.items()
            },
        )

    @hot_path
    def neighbor_slice(self, vid: int) -> Any:
        """The ascending neighbor-id array of ``vid`` (empty if unknown)."""
        np = vec.np
        if vid < 0 or vid >= len(self.pos):
            return np.empty(0, dtype=np.int64)
        row = int(self.pos[vid])
        if row < 0:
            return np.empty(0, dtype=np.int64)
        return self.indices[self.indptr[row] : self.indptr[row + 1]]

    @hot_path
    def candidate_array(self, query_vertex: VertexData) -> Any:
        """Sorted data-vertex ids that ``query_vertex`` can map to.

        Exactly the set ``{v : query_vertex.matches(graph.vertex(v))}``:
        the type's id list intersected with the id list of every
        ``(attribute, group)`` the query vertex requires.
        """
        np = vec.np
        empty = np.empty(0, dtype=np.int64)
        out = self.type_ids.get(query_vertex.vertex_type)
        if out is None:
            return empty
        for attr, groups in query_vertex.labels.items():
            for group in groups:
                have = self.label_ids.get((attr, group))
                if have is None:
                    return empty
                out = vec.intersect_sorted(out, have)
                if len(out) == 0:
                    return out
        return out

    @hot_path
    def vertex_flags(self) -> Any:
        """A dense ``id -> exists`` boolean array (bounds-guarded reads)."""
        return self.pos >= 0

    @hot_path
    def edge_flags(self, u_col: Any, v_col: Any) -> Any:
        """Bulk ``has_edge``: a boolean mask over aligned id columns.

        Unknown or out-of-range ids read ``False``, like the dict
        adjacency's ``.get`` fallback on the tuple path.
        """
        np = vec.np
        bound = self.stride
        valid = (u_col >= 0) & (u_col < bound) & (v_col >= 0) & (v_col < bound)
        lo = np.minimum(u_col, v_col)
        hi = np.maximum(u_col, v_col)
        keys = np.where(valid, lo * bound + hi, -1)
        return valid & vec.isin_sorted(keys, self.edge_keys)


@dataclass
class CloudIndex:
    """VBV/LBV tables over the indexed (candidate-center) vertices."""

    indexed_vertices: list[int]
    position: dict[int, int]
    type_bits: dict[str, int]
    vbv: dict[GroupBitKey, int]
    group_bit: dict[GroupBitKey, int]
    lbv: dict[int, int]
    csr: GraphCSR | None = None
    build_seconds: float = 0.0
    _full_mask: int = field(default=0)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: AttributedGraph,
        indexed_vertices: Sequence[int],
    ) -> "CloudIndex":
        """Build the index over ``indexed_vertices`` of ``graph``.

        Neighbour information (LBV) is drawn from ``graph`` — for the
        optimized method that is ``Go``, which contains every ``Gk``
        edge incident to ``B1``, so LBVs are complete.
        """
        started = time.perf_counter()
        vertices = list(indexed_vertices)
        position = {vid: p for p, vid in enumerate(vertices)}

        type_bits: dict[str, int] = {}
        vbv: dict[GroupBitKey, int] = {}
        group_bit: dict[GroupBitKey, int] = {}

        def bit_of(key: GroupBitKey) -> int:
            if key not in group_bit:
                group_bit[key] = len(group_bit)
            return group_bit[key]

        for vid in vertices:
            data = graph.vertex(vid)
            mask = 1 << position[vid]
            type_bits[data.vertex_type] = type_bits.get(data.vertex_type, 0) | mask
            for attr, groups in data.labels.items():
                for group in groups:
                    key = (attr, group)
                    bit_of(key)
                    vbv[key] = vbv.get(key, 0) | mask

        # group bits must also exist for groups only seen on neighbours
        lbv: dict[int, int] = {}
        for vid in vertices:
            neighbor_mask = 0
            for nbr in graph.neighbors(vid):
                nbr_data = graph.vertex(nbr)
                for attr, groups in nbr_data.labels.items():
                    for group in groups:
                        neighbor_mask |= 1 << bit_of((attr, group))
            lbv[vid] = neighbor_mask

        index = cls(
            indexed_vertices=vertices,
            position=position,
            type_bits=type_bits,
            vbv=vbv,
            group_bit=group_bit,
            lbv=lbv,
            csr=GraphCSR.build(graph),
        )
        index._full_mask = (1 << len(vertices)) - 1
        index.build_seconds = time.perf_counter() - started
        return index

    # ------------------------------------------------------------------
    # Algorithm 1 primitives
    # ------------------------------------------------------------------
    def candidate_center_mask(self, query_vertex: VertexData) -> int:
        """Line 4 of Algorithm 1: AND of the VBVs of the center's groups.

        Returns 0 as soon as any constraint has no support (unknown
        type or group), which simply means "no candidates".
        """
        mask = self.type_bits.get(query_vertex.vertex_type, 0)
        for attr, groups in query_vertex.labels.items():
            for group in groups:
                mask &= self.vbv.get((attr, group), 0)
                if not mask:
                    return 0
        return mask

    def candidates_from_mask(self, mask: int) -> Iterable[int]:
        """Vertex ids of the set bits of ``mask``."""
        vertices = self.indexed_vertices
        while mask:
            low = mask & -mask
            yield vertices[low.bit_length() - 1]
            mask ^= low

    def query_neighbor_mask(self, leaf_vertices: Iterable[VertexData]) -> int:
        """``LBV(v_i)`` of Algorithm 1: bits of all groups on the leaves.

        Returns -1 (sentinel) if a leaf carries a group that no indexed
        vertex's neighbourhood contains — the star is unmatchable.
        """
        mask = 0
        for leaf in leaf_vertices:
            for attr, groups in leaf.labels.items():
                for group in groups:
                    bit = self.group_bit.get((attr, group))
                    if bit is None:
                        return -1
                    mask |= 1 << bit
        return mask

    def neighborhood_supports(self, vid: int, query_mask: int) -> bool:
        """Line 6 of Algorithm 1: ``LBV(va) ∧ LBV(vi) == LBV(vi)``."""
        if query_mask < 0:
            return False
        have = self.lbv.get(vid, 0)
        return (have & query_mask) == query_mask

    # ------------------------------------------------------------------
    # accounting (Figure 13)
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Approximate in-memory size: both bit tables, in bytes.

        VBV: one |indexed|-bit vector per label group (+ per type);
        LBV: one |groups|-bit vector per indexed vertex.  This mirrors
        the paper's index-size accounting, which scales with |V(Go)|.
        """
        rows = len(self.vbv) + len(self.type_bits)
        vbv_bits = rows * max(len(self.indexed_vertices), 1)
        lbv_bits = len(self.indexed_vertices) * max(len(self.group_bit), 1)
        return (vbv_bits + lbv_bits + 7) // 8
