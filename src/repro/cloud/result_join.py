"""Result join (Algorithm 2): assembling ``Rin`` from star matches.

The cloud joins the per-star match sets into matches of the whole
outsourced query.  The key optimization of Section 4.2.1: the anchor
star's matches are *not* expanded through the automorphic functions —
they stay anchored in block ``B1`` — while every other star's matches
are expanded to the full ``R(S_i, Gk)`` before joining.  The join
output ``Rin`` therefore contains exactly the matches of
``R(Qo, Gk)`` whose anchor-center vertex lies in ``B1``; the remaining
matches (``Rout``) are recovered later by applying ``F_1..F_{k-1}``
(Theorem 3), avoiding ``k-1`` redundant join passes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.exceptions import QueryError, ResultBudgetExceeded
from repro.kauto.avt import AlignmentVertexTable
from repro.matching.match import Match, dedupe_matches, is_injective
from repro.matching.star import Star


@dataclass
class JoinStats:
    """Telemetry of one Algorithm-2 run."""

    seconds: float = 0.0
    anchor_center: int | None = None
    intermediate_sizes: list[int] = field(default_factory=list)
    rin_size: int = 0


def expand_star_matches(
    matches: list[Match],
    avt: AlignmentVertexTable,
) -> list[Match]:
    """``R(S, Gk) = ∪_m F_m(R(S, Go))`` (Lines 5-8 of Algorithm 2)."""
    return dedupe_matches(avt.expand_matches(matches))


def _hash_join(
    left: list[Match],
    right: list[Match],
    shared: tuple[int, ...],
    budget: int | None = None,
) -> list[Match]:
    """Natural join on the ``shared`` query vertices, injective only.

    With no shared vertices this degenerates to a cross product (still
    injectivity-filtered); connected queries never hit that path.
    ``budget`` caps the output size (quota enforcement).
    """
    out: list[Match] = []

    def emit(merged: Match) -> None:
        out.append(merged)
        if budget is not None and len(out) > budget:
            raise ResultBudgetExceeded("result join", len(out), budget)

    if not shared:
        for lm in left:
            for rm in right:
                merged = {**lm, **rm}
                if is_injective(merged):
                    emit(merged)
        return out

    buckets: dict[tuple[int, ...], list[Match]] = {}
    for rm in right:
        key = tuple(rm[q] for q in shared)
        buckets.setdefault(key, []).append(rm)

    for lm in left:
        key = tuple(lm[q] for q in shared)
        for rm in buckets.get(key, ()):
            merged = {**lm, **rm}
            # Lines 10-12: drop matches where two query vertices share a
            # data vertex (subgraph isomorphism is injective).
            if is_injective(merged):
                emit(merged)
    return out


def join_star_matches(
    stars: list[Star],
    star_matches: dict[int, list[Match]],
    avt: AlignmentVertexTable,
    expand: bool = True,
    max_intermediate: int | None = None,
    expand_anchor: bool = False,
) -> tuple[list[Match], JoinStats]:
    """Algorithm 2: join star matches into ``Rin``.

    ``expand=False`` joins the star results as-is — used by the BAS
    baseline whose star matches already range over the full ``Gk``
    (its index covers every ``Gk`` vertex), so the output is the whole
    ``R(Qo, Gk)`` rather than ``Rin``.

    ``max_intermediate`` is the cloud's per-query result quota: a join
    step growing past it raises :class:`ResultBudgetExceeded`.

    ``expand_anchor=True`` selects the *straightforward* strategy the
    paper describes before introducing ``Rin``: every star (anchor
    included) is expanded to ``R(S_i, Gk)`` and the join computes the
    whole ``R(Qo, Gk)`` directly — k times more anchor tuples enter the
    join.  Kept as an ablation baseline (see
    ``benchmarks/bench_ablation_rin.py``).

    Concurrency contract (relied on by the parallel batched engine):
    ``star_matches`` is **read-only** — neither the per-center lists
    nor their match dicts are ever mutated here, and every emitted
    ``Rin`` row is a fresh dict sharing no structure with the inputs.
    That makes it safe to feed this join match lists that other
    concurrent queries may also be holding (e.g. out of the shared
    star cache).  The join is also deterministic: star order, anchor
    choice, and bucket iteration are all keyed on sizes with vertex-id
    tie-breaks, so serial and parallel star matching yield bit-identical
    ``Rin`` lists.
    """
    if not stars:
        raise QueryError("cannot join an empty decomposition")
    missing = [s.center for s in stars if s.center not in star_matches]
    if missing:
        raise QueryError(f"star matches missing for centers {missing}")
    stats = JoinStats()
    started = time.perf_counter()

    remaining = sorted(stars, key=lambda s: (len(star_matches[s.center]), s.center))
    anchor = remaining.pop(0)
    stats.anchor_center = anchor.center
    current: list[Match] = [dict(m) for m in star_matches[anchor.center]]
    if expand and expand_anchor:
        current = expand_star_matches(current, avt)
    covered: set[int] = set(anchor.vertex_order)
    stats.intermediate_sizes.append(len(current))

    while remaining:
        overlapping = [s for s in remaining if s.overlaps(covered)]
        pool = overlapping or remaining  # disconnected fallback: cross join
        nxt = min(pool, key=lambda s: (len(star_matches[s.center]), s.center))
        remaining.remove(nxt)

        right = star_matches[nxt.center]
        if expand:
            right = expand_star_matches(right, avt)
        shared = tuple(sorted(covered & set(nxt.vertex_order)))
        current = _hash_join(current, right, shared, budget=max_intermediate)
        covered |= set(nxt.vertex_order)
        stats.intermediate_sizes.append(len(current))
        if not current:
            break

    rin = dedupe_matches(current)
    stats.rin_size = len(rin)
    stats.seconds = time.perf_counter() - started
    return rin, stats
