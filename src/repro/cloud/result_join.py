"""Result join (Algorithm 2): assembling ``Rin`` from star matches.

The cloud joins the per-star match sets into matches of the whole
outsourced query.  The key optimization of Section 4.2.1: the anchor
star's matches are *not* expanded through the automorphic functions —
they stay anchored in block ``B1`` — while every other star's matches
are expanded to the full ``R(S_i, Gk)`` before joining.  The join
output ``Rin`` therefore contains exactly the matches of
``R(Qo, Gk)`` whose anchor-center vertex lies in ``B1``; the remaining
matches (``Rout``) are recovered later by applying ``F_1..F_{k-1}``
(Theorem 3), avoiding ``k-1`` redundant join passes.

Two implementations share the Algorithm-2 control flow (anchor
selection, overlap-driven join order, budget enforcement):

* :func:`join_star_tables` — the **columnar** hash join the serving
  path uses.  Star results arrive as
  :class:`~repro.matching.table.MatchTable`\\ s; join keys are extracted
  positionally (:func:`~repro.matching.table.row_getter`), expansion is
  the AVT's column-wise id remap, injectivity is decided from
  precomputed per-row flags plus one ``isdisjoint`` per candidate pair
  (no dict merges, no ``set(match.values())`` rebuilds), and dedupe
  keys are the row tuples themselves.
* :func:`join_star_matches_legacy` — the dict-based reference path,
  kept for the ablation/A-B benchmarks.  It produces results equal to
  the columnar path (same matches, same order).

The public dict API :func:`join_star_matches` is a thin boundary
adapter over the columnar kernel.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.markers import hot_path
from repro.exceptions import QueryError, ResultBudgetExceeded
from repro.kauto.avt import AlignmentVertexTable
from repro.matching import vec
from repro.matching.match import Match, dedupe_matches, is_injective
from repro.matching.star import Star
from repro.matching.table import MatchTable, Row, dedupe_rows, row_getter

#: Pairwise-disjointness checks are broadcast over (pairs × left width ×
#: right width) boolean blocks; chunking bounds the peak allocation.
_PAIR_CHUNK = 1 << 18


@dataclass
class JoinStats:
    """Telemetry of one Algorithm-2 run."""

    seconds: float = 0.0
    anchor_center: int | None = None
    intermediate_sizes: list[int] = field(default_factory=list)
    rin_size: int = 0


# ----------------------------------------------------------------------
# columnar kernels (serving path)
# ----------------------------------------------------------------------
@hot_path
def expand_star_table(
    table: MatchTable, avt: AlignmentVertexTable
) -> MatchTable:
    """``R(S, Gk) = ∪_m F_m(R(S, Go))``, columnar (Lines 5-8).

    The AVT remap is a flat per-shift id lookup applied column-wise;
    under a fixed schema the row tuple is already the canonical dedupe
    key, so no per-match sort is performed.  Output rows equal
    :func:`expand_star_matches` of the same matches, in the same order.

    With the vector backend each ``F_m`` is one LUT gather over every
    column and the dedupe one first-seen pass; ids unknown to the AVT
    drop to the tuple path so its ``KeyError`` contract is preserved.
    """
    if vec.vectorize(len(table)):
        expanded = avt.expand_table(table)
        if expanded is not None:
            return expanded.deduped()
    return MatchTable(table.schema, dedupe_rows(avt.expand_rows(table.rows)))


@hot_path
def _hash_join_tables(
    left: MatchTable,
    right: MatchTable,
    shared: tuple[int, ...],
    budget: int | None = None,
) -> MatchTable:
    """Natural join on ``shared`` query vertices, injective rows only.

    The output schema is ``left.schema`` followed by the right table's
    non-shared columns in their schema order.  A merged row is
    injective iff the left row is injective, the right row's *new*
    values are pairwise distinct, and the two value sets are disjoint —
    the first two are precomputed per row, leaving one disjointness
    test per candidate pair.  With no shared vertices this degenerates
    to a cross product (still injectivity-filtered); connected queries
    never hit that path.  ``budget`` caps the output size (quota
    enforcement).

    Dispatches to the flat-column kernel when the vec mode allows and
    the key columns fit a packed int64 sort key; the tuple-row kernel
    is the fallback and the executable specification — emission order
    (left order, then right row order within a key bucket) and the
    budget-exception point are identical.
    """
    shared_set = set(shared)
    out_schema = left.schema + tuple(
        q for q in right.schema if q not in shared_set
    )
    if shared and vec.vectorize(len(left) + len(right)):
        joined = _hash_join_columns(
            left, right, shared, shared_set, out_schema, budget
        )
        if joined is not None:
            return joined
    return _hash_join_rows(left, right, shared, shared_set, out_schema, budget)


def _hash_join_rows(
    left: MatchTable,
    right: MatchTable,
    shared: tuple[int, ...],
    shared_set: set[int],
    out_schema: tuple[int, ...],
    budget: int | None,
) -> MatchTable:
    """The tuple-row join kernel (reference path)."""
    left_key = row_getter([left.column_of(q) for q in shared])
    right_key = row_getter([right.column_of(q) for q in shared])
    new_vals_of = row_getter(
        [i for i, q in enumerate(right.schema) if q not in shared_set]
    )

    # bucket the right side once: key -> [(new values, injective?), ...]
    # in row order, so emission order matches the legacy nested loops
    buckets: dict[Row, list[tuple[Row, bool]]] = {}
    setdefault = buckets.setdefault
    right_rows = right.rows
    left_rows = left.rows
    for rrow in right_rows:
        new_vals = new_vals_of(rrow)
        setdefault(right_key(rrow), []).append(
            (new_vals, len(set(new_vals)) == len(new_vals))
        )

    out_rows: list[Row] = []
    append = out_rows.append
    get = buckets.get
    count = 0
    for lrow in left_rows:
        hits = get(left_key(lrow))
        if not hits:
            continue
        lset = set(lrow)
        if len(lset) != len(lrow):
            # Lines 10-12: subgraph isomorphism is injective — a left
            # row reusing a data vertex can never merge injectively.
            continue
        isdisjoint = lset.isdisjoint
        for new_vals, r_ok in hits:
            if r_ok and isdisjoint(new_vals):
                append(lrow + new_vals)
                count += 1
                if budget is not None and count > budget:
                    raise ResultBudgetExceeded("result join", count, budget)
    return MatchTable(out_schema, out_rows)


@hot_path
def _packed_keys(cols: list[Any], stride: int) -> Any:
    """One int64 sort key per row from the aligned key columns."""
    key = cols[0]
    for col in cols[1:]:
        key = key * stride + col
    return key


@hot_path
def _hash_join_columns(
    left: MatchTable,
    right: MatchTable,
    shared: tuple[int, ...],
    shared_set: set[int],
    out_schema: tuple[int, ...],
    budget: int | None,
) -> MatchTable | None:
    """The flat-column join kernel, or ``None`` when inapplicable.

    The legacy bucket map becomes a stable argsort of packed right
    keys plus a ``searchsorted`` range per left key; the per-pair
    injectivity test becomes per-row distinctness flags plus a chunked
    broadcast disjointness mask.  ``None`` when the key values are
    negative or too wide for a collision-free packed int64 key (the
    tuple kernel then runs).
    """
    lcols_raw = left.as_columns()
    rcols_raw = right.as_columns()
    if lcols_raw is None or rcols_raw is None:
        return None
    np = vec.np
    nl, nr = len(left), len(right)
    new_idx = [i for i, q in enumerate(right.schema) if q not in shared_set]
    if nl == 0 or nr == 0:
        width = len(left.schema) + len(new_idx)
        return MatchTable.from_columns(
            out_schema, [np.empty(0, dtype=np.int64) for _ in range(width)], 0
        )
    lcols = [vec.as_ndarray(col) for col in lcols_raw]
    rcols = [vec.as_ndarray(col) for col in rcols_raw]
    lk_cols = [lcols[left.column_of(q)] for q in shared]
    rk_cols = [rcols[right.column_of(q)] for q in shared]

    low = min(int(col.min()) for col in lk_cols + rk_cols)
    high = max(int(col.max()) for col in lk_cols + rk_cols)
    stride = high + 1
    if low < 0 or stride ** len(shared) >= 1 << 63:
        return None

    l_ok = vec.distinct_within_rows(lcols)
    r_new = [rcols[i] for i in new_idx]
    if r_new:
        r_ok = vec.distinct_within_rows(r_new)
    else:
        r_ok = np.ones(nr, dtype=bool)

    lkey = _packed_keys(lk_cols, stride)
    rkey = _packed_keys(rk_cols, stride)
    order_r = np.argsort(rkey, kind="stable")
    rkey_sorted = rkey[order_r]
    lo = np.searchsorted(rkey_sorted, lkey, side="left")
    hi = np.searchsorted(rkey_sorted, lkey, side="right")
    counts = np.where(l_ok, hi - lo, 0)
    total = int(counts.sum())
    if total == 0:
        width = len(left.schema) + len(new_idx)
        return MatchTable.from_columns(
            out_schema, [np.empty(0, dtype=np.int64) for _ in range(width)], 0
        )

    # pair index arrays: for each left row its [lo, hi) bucket range,
    # flattened — left order outer, right original row order inner
    # (stable argsort keeps equal keys in row order)
    cum = np.cumsum(counts)
    left_idx = np.repeat(np.arange(nl, dtype=np.int64), counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(cum - counts, counts)
    right_idx = order_r[np.repeat(lo, counts) + within]

    keep = r_ok[right_idx]
    if r_new:
        left_mat = np.column_stack(lcols)
        new_mat = np.column_stack(r_new)
        for start in range(0, total, _PAIR_CHUNK):
            chunk = slice(start, min(start + _PAIR_CHUNK, total))
            clash = (
                left_mat[left_idx[chunk]][:, :, None]
                == new_mat[right_idx[chunk]][:, None, :]
            ).any(axis=(1, 2))
            keep[chunk] &= ~clash

    count = int(keep.sum())
    if budget is not None and count > budget:
        raise ResultBudgetExceeded("result join", budget + 1, budget)
    kept_l = left_idx[keep]
    kept_r = right_idx[keep]
    out_cols = [col[kept_l] for col in lcols] + [col[kept_r] for col in r_new]
    return MatchTable.from_columns(out_schema, out_cols, count)


def join_star_tables(
    stars: list[Star],
    star_tables: dict[int, MatchTable],
    avt: AlignmentVertexTable,
    expand: bool = True,
    max_intermediate: int | None = None,
    expand_anchor: bool = False,
) -> tuple[MatchTable, JoinStats]:
    """Algorithm 2 over columnar star tables: join into ``Rin``.

    ``star_tables`` maps each star's center to its
    :func:`~repro.cloud.star_matching.match_star_table` result; the
    output table's schema is the anchor star's columns followed by each
    joined star's new columns in join order.  Rows (viewed as
    query-vertex → data-vertex mappings) are identical to
    :func:`join_star_matches_legacy` on the same inputs, in the same
    order.

    ``expand=False`` joins the star results as-is — used by the BAS
    baseline whose star matches already range over the full ``Gk``
    (its index covers every ``Gk`` vertex), so the output is the whole
    ``R(Qo, Gk)`` rather than ``Rin``.

    ``max_intermediate`` is the cloud's per-query result quota: a join
    step growing past it raises :class:`ResultBudgetExceeded`.

    ``expand_anchor=True`` selects the *straightforward* strategy the
    paper describes before introducing ``Rin``: every star (anchor
    included) is expanded to ``R(S_i, Gk)`` and the join computes the
    whole ``R(Qo, Gk)`` directly — k times more anchor tuples enter the
    join.  Kept as an ablation baseline (see
    ``benchmarks/bench_ablation_rin.py``).

    Concurrency contract (relied on by the parallel batched engine):
    ``star_tables`` is **read-only** — no input table or row is ever
    mutated here, and the returned table is freshly allocated (its rows
    are immutable tuples, possibly shared with the inputs, which is
    safe).  That makes it safe to feed this join tables that other
    concurrent queries may also be holding (e.g. out of the shared
    star cache).  The join is also deterministic: star order, anchor
    choice, and bucket iteration are all keyed on sizes with vertex-id
    tie-breaks, so serial and parallel star matching yield bit-identical
    ``Rin`` tables.
    """
    if not stars:
        raise QueryError("cannot join an empty decomposition")
    missing = [s.center for s in stars if s.center not in star_tables]
    if missing:
        raise QueryError(f"star matches missing for centers {missing}")
    stats = JoinStats()
    started = time.perf_counter()

    remaining = sorted(stars, key=lambda s: (len(star_tables[s.center]), s.center))
    anchor = remaining.pop(0)
    stats.anchor_center = anchor.center
    current = star_tables[anchor.center]
    if expand and expand_anchor:
        current = expand_star_table(current, avt)
    covered: set[int] = set(current.schema)
    stats.intermediate_sizes.append(len(current))

    while remaining:
        overlapping = [s for s in remaining if s.overlaps(covered)]
        pool = overlapping or remaining  # disconnected fallback: cross join
        nxt = min(pool, key=lambda s: (len(star_tables[s.center]), s.center))
        remaining.remove(nxt)

        right = star_tables[nxt.center]
        if expand:
            right = expand_star_table(right, avt)
        shared = tuple(sorted(covered & set(right.schema)))
        current = _hash_join_tables(
            current, right, shared, budget=max_intermediate
        )
        covered |= set(right.schema)
        stats.intermediate_sizes.append(len(current))
        if not current:
            break

    rin = current.deduped()
    stats.rin_size = len(rin)
    stats.seconds = time.perf_counter() - started
    return rin, stats


def join_star_matches(
    stars: list[Star],
    star_matches: dict[int, list[Match]],
    avt: AlignmentVertexTable,
    expand: bool = True,
    max_intermediate: int | None = None,
    expand_anchor: bool = False,
) -> tuple[list[Match], JoinStats]:
    """Algorithm 2 with the dict-based ``Match`` API (boundary adapter).

    Tabulates each star's matches (columns in ``star.vertex_order``),
    runs the columnar :func:`join_star_tables`, and converts the result
    back to fresh dicts.  Output matches — and their order — equal
    :func:`join_star_matches_legacy`; only the internal representation
    differs.  See :func:`join_star_tables` for the parameter and
    concurrency contracts.
    """
    if not stars:
        raise QueryError("cannot join an empty decomposition")
    missing = [s.center for s in stars if s.center not in star_matches]
    if missing:
        raise QueryError(f"star matches missing for centers {missing}")
    tables = {
        star.center: MatchTable.from_matches(
            star_matches[star.center], star.vertex_order
        )
        for star in stars
    }
    rin, stats = join_star_tables(
        stars,
        tables,
        avt,
        expand=expand,
        max_intermediate=max_intermediate,
        expand_anchor=expand_anchor,
    )
    return rin.to_matches(), stats


# ----------------------------------------------------------------------
# dict-based reference path (ablation / A-B benchmarks)
# ----------------------------------------------------------------------
def expand_star_matches(
    matches: list[Match],
    avt: AlignmentVertexTable,
) -> list[Match]:
    """``R(S, Gk) = ∪_m F_m(R(S, Go))`` (Lines 5-8 of Algorithm 2)."""
    return dedupe_matches(avt.expand_matches(matches))


def _hash_join(
    left: list[Match],
    right: list[Match],
    shared: tuple[int, ...],
    budget: int | None = None,
) -> list[Match]:
    """Natural join on the ``shared`` query vertices, injective only.

    With no shared vertices this degenerates to a cross product (still
    injectivity-filtered); connected queries never hit that path.
    ``budget`` caps the output size (quota enforcement).
    """
    out: list[Match] = []

    def emit(merged: Match) -> None:
        out.append(merged)
        if budget is not None and len(out) > budget:
            raise ResultBudgetExceeded("result join", len(out), budget)

    if not shared:
        for lm in left:
            for rm in right:
                merged = {**lm, **rm}
                if is_injective(merged):
                    emit(merged)
        return out

    buckets: dict[tuple[int, ...], list[Match]] = {}
    for rm in right:
        key = tuple(rm[q] for q in shared)
        buckets.setdefault(key, []).append(rm)

    for lm in left:
        key = tuple(lm[q] for q in shared)
        for rm in buckets.get(key, ()):
            merged = {**lm, **rm}
            # Lines 10-12: drop matches where two query vertices share a
            # data vertex (subgraph isomorphism is injective).
            if is_injective(merged):
                emit(merged)
    return out


def join_star_matches_legacy(
    stars: list[Star],
    star_matches: dict[int, list[Match]],
    avt: AlignmentVertexTable,
    expand: bool = True,
    max_intermediate: int | None = None,
    expand_anchor: bool = False,
) -> tuple[list[Match], JoinStats]:
    """Algorithm 2, dict-based reference implementation.

    The original per-match implementation: one dict per candidate, dict
    merges per join row, ``match_key`` sorts for dedupe.  Kept for the
    columnar A/B benchmark and as an executable specification — its
    output is the ground truth :func:`join_star_matches` must equal.
    See :func:`join_star_tables` for the parameter semantics.
    """
    if not stars:
        raise QueryError("cannot join an empty decomposition")
    missing = [s.center for s in stars if s.center not in star_matches]
    if missing:
        raise QueryError(f"star matches missing for centers {missing}")
    stats = JoinStats()
    started = time.perf_counter()

    remaining = sorted(stars, key=lambda s: (len(star_matches[s.center]), s.center))
    anchor = remaining.pop(0)
    stats.anchor_center = anchor.center
    current: list[Match] = [dict(m) for m in star_matches[anchor.center]]
    if expand and expand_anchor:
        current = expand_star_matches(current, avt)
    covered: set[int] = set(anchor.vertex_order)
    stats.intermediate_sizes.append(len(current))

    while remaining:
        overlapping = [s for s in remaining if s.overlaps(covered)]
        pool = overlapping or remaining  # disconnected fallback: cross join
        nxt = min(pool, key=lambda s: (len(star_matches[s.center]), s.center))
        remaining.remove(nxt)

        right = star_matches[nxt.center]
        if expand:
            right = expand_star_matches(right, avt)
        shared = tuple(sorted(covered & set(nxt.vertex_order)))
        current = _hash_join(current, right, shared, budget=max_intermediate)
        covered |= set(nxt.vertex_order)
        stats.intermediate_sizes.append(len(current))
        if not current:
            break

    rin = dedupe_matches(current)
    stats.rin_size = len(rin)
    stats.seconds = time.perf_counter() - started
    return rin, stats
