"""Query decomposition into stars (Section 4.2.1).

The cloud decomposes the outsourced query ``Qo`` into stars whose
roots form a minimum-cost vertex cover, where the cost of a root is
the *estimated* number of star matches ``|R(S(v))|`` from the cost
model.  Fewer/smaller intermediate star results mean a cheaper join.
"""

from __future__ import annotations

from repro.anonymize.cost_model import StarCardinalityEstimator
from repro.cloud.vertex_cover import (
    greedy_weighted_vertex_cover,
    minimum_weighted_vertex_cover,
)
from repro.exceptions import QueryError
from repro.graph.attributed import AttributedGraph
from repro.matching.star import Decomposition, star_as_graph, star_of


def estimate_all_stars(
    query: AttributedGraph,
    estimator: StarCardinalityEstimator,
) -> dict[int, float]:
    """Estimated ``|R(S(v))|`` for a star rooted at every query vertex."""
    estimates: dict[int, float] = {}
    for center in query.vertex_ids():
        if query.degree(center) == 0:
            continue
        star_graph = star_as_graph(query, star_of(query, center))
        estimates[center] = estimator.estimate(star_graph, center)
    return estimates


def decompose_query(
    query: AttributedGraph,
    estimator: StarCardinalityEstimator,
    strategy: str = "optimal",
) -> Decomposition:
    """Star decomposition of ``query`` under the cost model.

    ``strategy="optimal"`` (the paper's ILP, solved exactly by branch
    and bound) or ``"greedy"`` (coverage-per-weight heuristic for query
    graphs too large for exact search; the result is still a valid
    cover, just possibly costlier).  A single-vertex query decomposes
    into one degenerate star.
    """
    if strategy not in ("optimal", "greedy"):
        raise QueryError(f"unknown decomposition strategy {strategy!r}")
    if query.vertex_count == 0:
        raise QueryError("cannot decompose an empty query")
    if query.edge_count == 0:
        if query.vertex_count > 1:
            raise QueryError("query with multiple isolated vertices")
        center = next(iter(query.vertex_ids()))
        return Decomposition(stars=[star_of(query, center)], estimated_sizes={center: 1.0})

    estimates = estimate_all_stars(query, estimator)
    solver = (
        minimum_weighted_vertex_cover
        if strategy == "optimal"
        else greedy_weighted_vertex_cover
    )
    cover = solver(list(query.edges()), estimates)
    stars = [star_of(query, center) for center in sorted(cover)]
    decomposition = Decomposition(stars=stars, estimated_sizes=estimates)
    if not decomposition.covers(query):
        raise QueryError("internal error: decomposition does not cover the query")
    return decomposition
