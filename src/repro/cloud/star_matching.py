"""Star matching over the outsourced graph (Algorithm 1).

For each star ``S_i`` of the decomposition the cloud finds
``R(S_i, Go)``: candidate centers are located with the VBV bit
vectors, pruned with the LBV neighbourhood test, and the leaves are
then assigned by backtracking over the candidate center's neighbours
(injectively, per Definition 2).

Centers are restricted to the indexed vertex set (block ``B1`` for the
optimized method) while leaves may land anywhere in ``Go`` — exactly
the shape of ``Rin``'s anchored matches.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor
from dataclasses import dataclass, field

from repro.cloud.index import CloudIndex
from repro.exceptions import ResultBudgetExceeded
from repro.graph.attributed import AttributedGraph
from repro.matching.match import Match
from repro.matching.star import Star


@dataclass
class StarMatchStats:
    """Per-query star-matching telemetry (Figures 18 and 19)."""

    seconds: float = 0.0
    result_sizes: dict[int, int] = field(default_factory=dict)

    @property
    def total_results(self) -> int:
        """``|RS|`` — total star matches produced for the query."""
        return sum(self.result_sizes.values())


def match_star(
    query: AttributedGraph,
    star: Star,
    index: CloudIndex,
    data: AttributedGraph,
    max_results: int | None = None,
    use_vbv: bool = True,
    use_lbv: bool = True,
) -> list[Match]:
    """``R(S, data)`` with centers drawn from the index (Algorithm 1).

    ``max_results`` is an optional resource quota: exceeding it raises
    :class:`ResultBudgetExceeded` rather than exhausting cloud memory.

    ``use_vbv`` / ``use_lbv`` disable the corresponding half of the
    Figure 7 index (candidates then come from a linear scan / no
    neighbourhood pruning).  Results are identical either way; the
    flags exist for the index ablation benchmark.
    """
    center_vertex = query.vertex(star.center)
    leaf_vertices = [query.vertex(leaf) for leaf in star.leaves]

    if use_vbv:
        center_mask = index.candidate_center_mask(center_vertex)
        if not center_mask:
            return []
        center_candidates = index.candidates_from_mask(center_mask)
    else:
        center_candidates = (
            vid
            for vid in index.indexed_vertices
            if center_vertex.matches(data.vertex(vid))
        )

    if use_lbv:
        query_mask = index.query_neighbor_mask(leaf_vertices)
        if query_mask < 0 and star.leaves:
            return []
    else:
        query_mask = 0  # every vertex trivially supports the empty mask

    # most-constrained leaves first: more labels, then higher query id
    # for determinism
    leaf_order = sorted(
        star.leaves,
        key=lambda leaf: (
            -sum(len(v) for v in query.vertex(leaf).labels.values()),
            leaf,
        ),
    )
    results: list[Match] = []
    for center_candidate in center_candidates:
        if star.leaves and not index.neighborhood_supports(center_candidate, query_mask):
            continue
        if data.degree(center_candidate) < len(star.leaves):
            continue
        _assign_leaves(
            query,
            leaf_order,
            0,
            center_candidate,
            {star.center: center_candidate},
            data,
            results,
        )
        if max_results is not None and len(results) > max_results:
            raise ResultBudgetExceeded("star matching", len(results), max_results)
    return results


def _assign_leaves(
    query: AttributedGraph,
    leaf_order: list[int],
    depth: int,
    center_candidate: int,
    partial: Match,
    data: AttributedGraph,
    results: list[Match],
) -> None:
    if depth == len(leaf_order):
        results.append(dict(partial))
        return
    leaf = leaf_order[depth]
    leaf_vertex = query.vertex(leaf)
    used = set(partial.values())
    for candidate in sorted(data.neighbors(center_candidate)):
        if candidate in used:
            continue
        if not leaf_vertex.matches(data.vertex(candidate)):
            continue
        partial[leaf] = candidate
        _assign_leaves(
            query, leaf_order, depth + 1, center_candidate, partial, data, results
        )
        del partial[leaf]


def match_all_stars(
    query: AttributedGraph,
    stars: list[Star],
    index: CloudIndex,
    data: AttributedGraph,
    max_results: int | None = None,
    executor: Executor | None = None,
) -> tuple[dict[int, list[Match]], StarMatchStats]:
    """Run Algorithm 1 for every star; returns results keyed by center.

    With an ``executor`` the stars of the decomposition are matched
    concurrently: each ``match_star`` call reads only the immutable
    query/index/graph, so independent stars are embarrassingly
    parallel.  Results are gathered **in star order**, making the
    output bit-identical to the serial loop regardless of completion
    order; the first star exception (e.g.
    :class:`~repro.exceptions.ResultBudgetExceeded`) is re-raised as in
    the serial path.
    """
    stats = StarMatchStats()
    started = time.perf_counter()
    results: dict[int, list[Match]] = {}
    if executor is not None and len(stars) > 1:
        futures = [
            (
                star,
                executor.submit(
                    match_star, query, star, index, data, max_results=max_results
                ),
            )
            for star in stars
        ]
        for star, future in futures:
            results[star.center] = future.result()
    else:
        for star in stars:
            results[star.center] = match_star(
                query, star, index, data, max_results=max_results
            )
    for star in stars:
        stats.result_sizes[star.center] = len(results[star.center])
    stats.seconds = time.perf_counter() - started
    return results, stats
