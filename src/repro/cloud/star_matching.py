"""Star matching over the outsourced graph (Algorithm 1).

For each star ``S_i`` of the decomposition the cloud finds
``R(S_i, Go)``: candidate centers are located with the VBV bit
vectors, pruned with the LBV neighbourhood test, and the leaves are
then assigned by backtracking over the candidate center's neighbours
(injectively, per Definition 2).

Centers are restricted to the indexed vertex set (block ``B1`` for the
optimized method) while leaves may land anywhere in ``Go`` — exactly
the shape of ``Rin``'s anchored matches.

Two implementations share the candidate-generation logic:

* :func:`match_star_table` — the **columnar** kernel the serving path
  uses.  Leaf assignment is an iterative backtracking loop writing
  into a reusable row buffer; the center's neighbour list is sorted
  once per center (not once per depth), per-leaf label checks are
  memoized across centers, and results are emitted straight into a
  :class:`~repro.matching.table.MatchTable` (no per-match dicts).
* :func:`match_star` — the dict-based reference path, kept for the
  ablation benchmarks and any caller of the ``list[Match]`` API.  It
  produces bit-identical results (same DFS emission order).

Both enforce the ``max_results`` quota *inside* the leaf-assignment
loop: a single high-degree center cannot blow past the budget before
:class:`~repro.exceptions.ResultBudgetExceeded` fires.
"""

from __future__ import annotations

import time
from array import array
from concurrent.futures import Executor
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.markers import hot_path
from repro.cloud.index import CloudIndex
from repro.exceptions import ResultBudgetExceeded
from repro.graph.attributed import AttributedGraph
from repro.matching import vec
from repro.matching.match import Match
from repro.matching.star import Star
from repro.matching.table import MatchTable, Row


@dataclass
class StarMatchStats:
    """Per-query star-matching telemetry (Figures 18 and 19)."""

    seconds: float = 0.0
    result_sizes: dict[int, int] = field(default_factory=dict)

    @property
    def total_results(self) -> int:
        """``|RS|`` — total star matches produced for the query."""
        return sum(self.result_sizes.values())


def _leaf_order(query: AttributedGraph, star: Star) -> list[int]:
    """Most-constrained leaves first: more labels, then higher query id
    for determinism."""
    return sorted(
        star.leaves,
        key=lambda leaf: (
            -sum(len(v) for v in query.vertex(leaf).labels.values()),
            leaf,
        ),
    )


def _center_candidates(
    query: AttributedGraph,
    star: Star,
    index: CloudIndex,
    data: AttributedGraph,
    use_vbv: bool,
) -> Iterable[int] | None:
    """Candidate centers from the VBV (or a linear scan); ``None`` = empty."""
    center_vertex = query.vertex(star.center)
    if use_vbv:
        center_mask = index.candidate_center_mask(center_vertex)
        if not center_mask:
            return None
        return index.candidates_from_mask(center_mask)
    return (
        vid
        for vid in index.indexed_vertices
        if center_vertex.matches(data.vertex(vid))
    )


def _query_mask(
    query: AttributedGraph, star: Star, index: CloudIndex, use_lbv: bool
) -> int | None:
    """The LBV neighbourhood mask for the star's leaves; ``None`` = empty."""
    if not use_lbv:
        return 0  # every vertex trivially supports the empty mask
    leaf_vertices = [query.vertex(leaf) for leaf in star.leaves]
    mask = index.query_neighbor_mask(leaf_vertices)
    if mask < 0 and star.leaves:
        return None
    return mask


@hot_path
def match_star_table(
    query: AttributedGraph,
    star: Star,
    index: CloudIndex,
    data: AttributedGraph,
    max_results: int | None = None,
    use_vbv: bool = True,
    use_lbv: bool = True,
) -> MatchTable:
    """``R(S, data)`` as a columnar table (Algorithm 1, serving kernel).

    The table schema is ``star.vertex_order`` (center first, then the
    sorted leaves).  Results are bit-identical to :func:`match_star`
    (same rows, same order); only the representation differs.

    When the index carries a :class:`~repro.cloud.index.GraphCSR` for
    ``data`` (and the vec mode allows it), the per-leaf candidate
    lists come from edge-candidate arrays — the CSR neighbor slice of
    the center intersected with the leaf's precomputed global
    candidate array — and rows are emitted straight into a flat
    row-major int64 buffer.  Otherwise the per-vertex memoized scan
    runs; either way the resumable-cursor enumeration below is shared,
    so the emission order (and the budget-exception point) is
    bit-identical across all three representations.
    """
    schema = (star.center, *star.leaves)

    candidate_iter = _center_candidates(query, star, index, data, use_vbv)
    if candidate_iter is None:
        return MatchTable(schema, [])
    query_mask = _query_mask(query, star, index, use_lbv)
    if query_mask is None:
        return MatchTable(schema, [])
    candidates = list(candidate_iter)
    if not candidates:
        return MatchTable(schema, [])

    leaf_order = _leaf_order(query, star)
    leaf_count = len(leaf_order)
    leaf_cols = [schema.index(leaf) for leaf in leaf_order]
    leaf_vertices = [query.vertex(leaf) for leaf in leaf_order]

    csr = index.csr
    # the CSR branch pays one numpy intersection per (center, leaf), so
    # it is gated on the candidate-center count — a selective query over
    # a huge graph stays on the memoized tuple scan
    use_csr = (
        csr is not None
        and csr.source is data
        and vec.vectorize(len(candidates))
    )
    if use_csr:
        assert csr is not None
        # global per-leaf candidate arrays, computed once per star: the
        # sorted ids every center's neighbor slice is intersected with
        leaf_globals = [csr.candidate_array(lv) for lv in leaf_vertices]
        if any(len(g) == 0 for g in leaf_globals):
            return MatchTable(schema, [])
        # flat row-major emission: ids are CSR-validated < 2^31, so the
        # array('q') buffer cannot overflow
        out_buf: array = array("q")
        emit = out_buf.extend
        rows: list[Row] = []
    else:
        # (leaf, data vertex) label checks are center-independent:
        # memoize them across centers — but only when enough centers
        # can revisit the same vertices to repay the per-check dict
        # traffic (a selective query with a handful of candidate
        # centers is cheaper checking labels inline).
        use_memo = len(candidates) >= 8
        leaf_memos: list[dict[int, bool]] = (
            [{} for _ in leaf_order] if use_memo else []
        )
        rows = []
        emit = None  # type: ignore[assignment]

    neighbors = data.neighbors
    degree = data.degree
    vertex = data.vertex
    supports = index.neighborhood_supports
    has_leaves = bool(star.leaves)
    count = 0

    row_buf: list[int] = [0] * (1 + leaf_count)
    positions: list[int] = [0] * max(leaf_count, 1)
    cand_lists: list[list[int]] = [[] for _ in range(leaf_count)]

    for center_candidate in candidates:
        if has_leaves and not supports(center_candidate, query_mask):
            continue
        if degree(center_candidate) < leaf_count:
            continue
        if leaf_count == 0:
            count += 1
            if use_csr:
                emit((center_candidate,))
            else:
                rows.append((center_candidate,))
            if max_results is not None and count > max_results:
                raise ResultBudgetExceeded("star matching", count, max_results)
            continue

        if use_csr:
            assert csr is not None
            # the CSR slice is already ascending — the same order the
            # legacy path gets from sorting the neighbour set
            nbr = csr.neighbor_slice(center_candidate)
            nbrs: list[int] = []
        else:
            # the neighbour list is sorted once per center — every
            # depth of the legacy backtracking re-sorted the same set
            nbrs = sorted(neighbors(center_candidate))

        # iterative DFS with resumable cursors over the per-leaf
        # candidate lists, writing into the reusable row buffer;
        # injectivity via the ``used`` set.  Candidate lists are
        # center-global (path-independent), so they are built lazily at
        # the first visit to each depth: a center whose first leaf has
        # no candidates never pays for the deeper scans, and an empty
        # list at any depth kills the whole center.
        row_buf[0] = center_candidate
        used = {center_candidate}
        depth = 0
        positions[0] = 0
        last = leaf_count - 1
        built = 0
        while True:
            if built <= depth:
                if use_csr:
                    cand = nbr[vec.isin_sorted(nbr, leaf_globals[depth])]
                    lst = cand.tolist()
                    cand_lists[depth] = lst
                elif use_memo:
                    memo = leaf_memos[depth]
                    leaf_vertex = leaf_vertices[depth]
                    lst = cand_lists[depth]
                    lst.clear()
                    for v in nbrs:
                        hit = memo.get(v)
                        if hit is None:
                            hit = leaf_vertex.matches(vertex(v))
                            memo[v] = hit
                        if hit:
                            lst.append(v)
                else:
                    leaf_vertex = leaf_vertices[depth]
                    lst = cand_lists[depth]
                    lst.clear()
                    for v in nbrs:
                        if leaf_vertex.matches(vertex(v)):
                            lst.append(v)
                built = depth + 1
                if not lst:
                    break
            else:
                lst = cand_lists[depth]
            i = positions[depth]
            limit = len(lst)
            chosen = -1
            while i < limit:
                v = lst[i]
                i += 1
                if v not in used:
                    chosen = v
                    break
            if chosen >= 0:
                positions[depth] = i
                row_buf[leaf_cols[depth]] = chosen
                if depth == last:
                    count += 1
                    if use_csr:
                        emit(row_buf)
                    else:
                        rows.append(tuple(row_buf))
                    if max_results is not None and count > max_results:
                        raise ResultBudgetExceeded(
                            "star matching", count, max_results
                        )
                else:
                    used.add(chosen)
                    depth += 1
                    positions[depth] = 0
            else:
                if depth == 0:
                    break
                depth -= 1
                used.discard(row_buf[leaf_cols[depth]])
    if use_csr:
        return MatchTable.from_flat_rows(schema, out_buf, 1 + leaf_count)
    return MatchTable(schema, rows)


def match_star(
    query: AttributedGraph,
    star: Star,
    index: CloudIndex,
    data: AttributedGraph,
    max_results: int | None = None,
    use_vbv: bool = True,
    use_lbv: bool = True,
) -> list[Match]:
    """``R(S, data)`` with centers drawn from the index (Algorithm 1).

    The dict-based reference path: one ``Match`` dict per result.  The
    serving pipeline uses :func:`match_star_table` instead; this
    remains for the index/decomposition ablation benchmarks and for
    callers of the ``list[Match]`` API.  Output is bit-identical to
    ``match_star_table(...).to_matches()``.

    ``max_results`` is an optional resource quota: exceeding it raises
    :class:`ResultBudgetExceeded` rather than exhausting cloud memory
    (enforced per emitted match, inside the backtracking).

    ``use_vbv`` / ``use_lbv`` disable the corresponding half of the
    Figure 7 index (candidates then come from a linear scan / no
    neighbourhood pruning).  Results are identical either way; the
    flags exist for the index ablation benchmark.
    """
    candidates = _center_candidates(query, star, index, data, use_vbv)
    if candidates is None:
        return []
    query_mask = _query_mask(query, star, index, use_lbv)
    if query_mask is None:
        return []

    leaf_order = _leaf_order(query, star)
    leaf_vertices = [query.vertex(leaf) for leaf in leaf_order]
    results: list[Match] = []
    for center_candidate in candidates:
        if star.leaves and not index.neighborhood_supports(
            center_candidate, query_mask
        ):
            continue
        if data.degree(center_candidate) < len(star.leaves):
            continue
        # hoisted: sorted once per center (the set is the same at every
        # backtracking depth) and the used-set is maintained
        # incrementally instead of rebuilt per call
        sorted_neighbors = sorted(data.neighbors(center_candidate))
        _assign_leaves(
            leaf_vertices,
            0,
            sorted_neighbors,
            leaf_order,
            {star.center: center_candidate},
            {center_candidate},
            data,
            results,
            max_results,
        )
    return results


def _assign_leaves(
    leaf_vertices: list,
    depth: int,
    sorted_neighbors: list[int],
    leaf_order: list[int],
    partial: Match,
    used: set[int],
    data: AttributedGraph,
    results: list[Match],
    max_results: int | None,
) -> None:
    if depth == len(leaf_order):
        results.append(dict(partial))
        # quota enforced per emitted match: a single high-degree center
        # cannot overshoot the budget before the check fires
        if max_results is not None and len(results) > max_results:
            raise ResultBudgetExceeded(
                "star matching", len(results), max_results
            )
        return
    leaf = leaf_order[depth]
    leaf_vertex = leaf_vertices[depth]
    for candidate in sorted_neighbors:
        if candidate in used:
            continue
        if not leaf_vertex.matches(data.vertex(candidate)):
            continue
        partial[leaf] = candidate
        used.add(candidate)
        _assign_leaves(
            leaf_vertices,
            depth + 1,
            sorted_neighbors,
            leaf_order,
            partial,
            used,
            data,
            results,
            max_results,
        )
        used.discard(candidate)
        del partial[leaf]


def match_all_stars(
    query: AttributedGraph,
    stars: list[Star],
    index: CloudIndex,
    data: AttributedGraph,
    max_results: int | None = None,
    executor: Executor | None = None,
) -> tuple[dict[int, list[Match]], StarMatchStats]:
    """Run Algorithm 1 for every star; returns results keyed by center.

    With an ``executor`` the stars of the decomposition are matched
    concurrently: each ``match_star`` call reads only the immutable
    query/index/graph, so independent stars are embarrassingly
    parallel.  Results are gathered **in star order**, making the
    output bit-identical to the serial loop regardless of completion
    order; the first star exception (e.g.
    :class:`~repro.exceptions.ResultBudgetExceeded`) is re-raised as in
    the serial path.
    """
    stats = StarMatchStats()
    started = time.perf_counter()
    results: dict[int, list[Match]] = {}
    if executor is not None and len(stars) > 1:
        futures = [
            (
                star,
                executor.submit(
                    match_star, query, star, index, data, max_results=max_results
                ),
            )
            for star in stars
        ]
        for star, future in futures:
            results[star.center] = future.result()
    else:
        for star in stars:
            results[star.center] = match_star(
                query, star, index, data, max_results=max_results
            )
    for star in stars:
        stats.result_sizes[star.center] = len(results[star.center])
    stats.seconds = time.perf_counter() - started
    return results, stats
