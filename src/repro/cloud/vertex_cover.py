"""Exact minimum weighted vertex cover (the ILP of Section 4.2.1).

The optimal query decomposition minimizes ``Σ |R(S(v_i))| x_i`` subject
to every query edge having at least one selected endpoint — a minimum
weighted vertex cover, NP-hard in general (Theorem 2).  The paper
solves the ILP with Gurobi and notes that query graphs are tiny, so
exact search is cheap.  We substitute a branch-and-bound solver that
returns a provably optimal cover for the graph sizes queries have
(|V| <= ~20); it degrades gracefully (still correct, just slower) on
larger inputs.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence


def minimum_weighted_vertex_cover(
    edges: Sequence[tuple[int, int]],
    weights: Mapping[int, float],
) -> set[int]:
    """Return an optimal weighted vertex cover of ``edges``.

    ``weights[v]`` is the cost of selecting ``v`` (here: the estimated
    star cardinality ``|R(S(v))|``).  Vertices absent from ``weights``
    get weight 0.  Branch and bound: branch on an endpoint of an
    uncovered edge, preferring the edge whose endpoints are heaviest
    (fail-first), pruning with the best cover found so far.

    The solver is *deterministic*: all weight ties — in edge selection,
    endpoint branching order, and incumbent replacement — are broken by
    vertex id, so repeated runs on the same query (in any edge order)
    return the same cover and hence the same star decomposition/plan.
    """
    edge_list = [tuple(sorted(edge)) for edge in edges]
    edge_list = sorted(set(edge_list))
    if not edge_list:
        return set()

    def weight_of(v: int) -> float:
        return float(weights.get(v, 0.0))

    best_cover: set[int] = {v for edge in edge_list for v in edge}
    best_cost = sum(weight_of(v) for v in best_cover)

    # greedy warm start: repeatedly take the endpoint covering the most
    # uncovered edges per unit weight
    greedy = _greedy_cover(edge_list, weight_of)
    greedy_cost = sum(weight_of(v) for v in greedy)
    if greedy_cost < best_cost:
        best_cover, best_cost = greedy, greedy_cost

    chosen: set[int] = set()

    def branch(remaining: list[tuple[int, int]], cost: float) -> None:
        nonlocal best_cover, best_cost
        if cost >= best_cost:
            return
        if not remaining:
            best_cover = set(chosen)
            best_cost = cost
            return
        # fail-first: branch on the edge with the heaviest cheap
        # endpoint; weight ties break on the (sorted) edge itself so
        # the search tree is reproducible
        u, v = max(
            remaining,
            key=lambda e: (min(weight_of(e[0]), weight_of(e[1])), (-e[0], -e[1])),
        )
        # cheaper endpoint first; equal weights break by vertex id
        for pick in sorted((u, v), key=lambda w: (weight_of(w), w)):
            chosen.add(pick)
            still = [e for e in remaining if pick not in e]
            branch(still, cost + weight_of(pick))
            chosen.discard(pick)

    branch(edge_list, 0.0)
    return best_cover


def greedy_weighted_vertex_cover(
    edges: Sequence[tuple[int, int]],
    weights: Mapping[int, float],
) -> set[int]:
    """A fast non-optimal cover: best coverage-per-weight vertex first.

    Provided as the ``greedy`` decomposition strategy for very large
    query graphs where even the small branch-and-bound is unwanted;
    the paper's evaluation always uses the exact optimum (its ILP).
    """
    edge_list = sorted({tuple(sorted(edge)) for edge in edges})

    def weight_of(v: int) -> float:
        return float(weights.get(v, 0.0))

    return _greedy_cover(list(edge_list), weight_of)


def _greedy_cover(
    edges: list[tuple[int, int]],
    weight_of: Callable[[int], float],
) -> set[int]:
    remaining = list(edges)
    cover: set[int] = set()
    while remaining:
        coverage: dict[int, int] = {}
        for u, v in remaining:
            coverage[u] = coverage.get(u, 0) + 1
            coverage[v] = coverage.get(v, 0) + 1
        # score: edges covered per unit weight (zero weight = infinitely good)
        def score(v: int) -> float:
            w = weight_of(v)
            if w <= 0.0:
                return float("inf")
            return coverage[v] / w

        # ties on (score, coverage) break by smallest vertex id so the
        # greedy cover — and everything seeded from it — is reproducible
        pick = max(coverage, key=lambda v: (score(v), coverage[v], -v))
        cover.add(pick)
        remaining = [e for e in remaining if pick not in e]
    return cover


def is_vertex_cover(edges: Sequence[tuple[int, int]], cover: set[int]) -> bool:
    """True if every edge has at least one endpoint in ``cover``."""
    return all(u in cover or v in cover for u, v in edges)


def cover_cost(cover: set[int], weights: Mapping[int, float]) -> float:
    return sum(float(weights.get(v, 0.0)) for v in cover)
