"""Cloud-side query engine (Section 4.2.1)."""

from repro.cloud.cache import StarMatchCache, star_signature
from repro.cloud.decomposition import decompose_query, estimate_all_stars
from repro.cloud.index import CloudIndex
from repro.cloud.parallel import BACKENDS, fork_available, map_batch
from repro.cloud.result_join import (
    JoinStats,
    expand_star_matches,
    expand_star_table,
    join_star_matches,
    join_star_matches_legacy,
    join_star_tables,
)
from repro.cloud.server import CloudAnswer, CloudServer
from repro.cloud.sharding import (
    CloudShard,
    ShardCacheView,
    ShardedCloud,
    build_shards,
    merge_star_tables,
)
from repro.cloud.star_matching import (
    StarMatchStats,
    match_all_stars,
    match_star,
    match_star_table,
)
from repro.cloud.vertex_cover import (
    cover_cost,
    greedy_weighted_vertex_cover,
    is_vertex_cover,
    minimum_weighted_vertex_cover,
)

__all__ = [
    "StarMatchCache",
    "star_signature",
    "CloudIndex",
    "BACKENDS",
    "fork_available",
    "map_batch",
    "CloudServer",
    "CloudAnswer",
    "ShardedCloud",
    "CloudShard",
    "ShardCacheView",
    "build_shards",
    "merge_star_tables",
    "decompose_query",
    "estimate_all_stars",
    "match_star",
    "match_star_table",
    "match_all_stars",
    "StarMatchStats",
    "join_star_matches",
    "join_star_matches_legacy",
    "join_star_tables",
    "expand_star_matches",
    "expand_star_table",
    "JoinStats",
    "minimum_weighted_vertex_cover",
    "greedy_weighted_vertex_cover",
    "is_vertex_cover",
    "cover_cost",
]
