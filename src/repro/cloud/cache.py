"""Star-match result caching for the cloud server.

Different queries frequently share stars: the star of a query vertex is
determined (up to renaming) by its type, its label groups, and the
multiset of its leaves' (type, label groups) constraints.  A cloud
server answering a workload can therefore reuse ``R(S, Go)`` across
queries.  This module provides the canonical star signature and a
small LRU cache keyed by it; :class:`repro.cloud.server.CloudServer`
uses it when constructed with ``star_cache_size > 0``.

Cached entries store matches in *role form* (center, then leaves in
signature order) so they can be re-labeled to any query's vertex ids on
a hit.

The cache is safe to share between the worker threads of the parallel
batched engine (:meth:`repro.cloud.server.CloudServer.query_batch`):
every operation holds an internal lock, and entries are defensively
copied on both :meth:`StarMatchCache.put` and
:meth:`StarMatchCache.get`, so no caller ever holds a reference to the
live stored list — mutating a hit (or a list later ``put``) cannot
corrupt what other queries observe.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.analysis.markers import hot_path
from repro.graph.attributed import AttributedGraph, VertexData
from repro.matching.match import Match
from repro.matching.star import Star
from repro.matching.table import MatchTable, Row, row_getter

# a vertex constraint: (type, ((attr, (group, ...)), ...))
Constraint = tuple


def vertex_constraint(vertex: VertexData) -> Constraint:
    """Canonical form of one query vertex's matching constraint."""
    labels = tuple(
        (attr, tuple(sorted(values))) for attr, values in sorted(vertex.labels.items())
    )
    return (vertex.vertex_type, labels)


def star_signature(query: AttributedGraph, star: Star) -> tuple:
    """Canonical signature of a star: center + sorted leaf constraints.

    Two stars with equal signatures have identical match sets up to the
    renaming of their query vertices; leaves with identical constraints
    are interchangeable (the match set is closed under permuting them).
    """
    center = vertex_constraint(query.vertex(star.center))
    leaves = tuple(
        sorted(vertex_constraint(query.vertex(leaf)) for leaf in star.leaves)
    )
    return (center, leaves)


def leaf_role_order(query: AttributedGraph, star: Star) -> list[int]:
    """Leaves ordered consistently with the signature's sorted leaves."""
    return sorted(
        star.leaves, key=lambda leaf: (vertex_constraint(query.vertex(leaf)), leaf)
    )


@hot_path
def matches_to_roles(
    matches: list[Match], star: Star, role_order: list[int]
) -> list[tuple[int, ...]]:
    """Store matches positionally: (center image, leaf images...)."""
    return [
        (match[star.center], *(match[leaf] for leaf in role_order))
        for match in matches
    ]


@hot_path
def roles_to_matches(
    roles: list[tuple[int, ...]], star: Star, role_order: list[int]
) -> list[Match]:
    """Re-label positional matches onto this query's vertex ids."""
    out: list[Match] = []
    for row in roles:
        match: Match = {star.center: row[0]}
        for leaf, value in zip(role_order, row[1:]):
            match[leaf] = value
        out.append(match)
    return out


@hot_path
def table_to_roles(
    table: MatchTable, star: Star, role_order: list[int]
) -> list[Row]:
    """Columnar :func:`matches_to_roles`: a column re-order, no dicts.

    Produces exactly the tuples ``matches_to_roles`` would produce for
    ``table.to_matches()`` — the cache wire format is unchanged, so
    dict-path and columnar-path servers can share cache entries.
    """
    getter = row_getter(
        [table.column_of(q) for q in (star.center, *role_order)]
    )
    return [getter(row) for row in table.rows]


@hot_path
def roles_to_table(
    roles: list[Row], star: Star, role_order: list[int]
) -> MatchTable:
    """Columnar :func:`roles_to_matches`: re-label onto a star table.

    The output schema is the star's canonical column order
    ``(center, *leaves)`` — the same schema
    :func:`~repro.cloud.star_matching.match_star_table` emits, so cache
    hits are indistinguishable from fresh computations.
    """
    schema = (star.center, *star.leaves)
    role_schema = (star.center, *role_order)
    column = {q: i for i, q in enumerate(role_schema)}
    getter = row_getter([column[q] for q in schema])
    return MatchTable(schema, [getter(row) for row in roles])


@dataclass
class StarMatchCache:
    """A bounded, thread-safe LRU cache of role-form star match sets.

    Correctness notes (regression-tested in ``tests/test_cloud_cache.py``):

    * **No aliasing.**  ``get`` returns a fresh list and ``put`` stores a
      fresh list of (immutable) tuples.  Historically both handed out the
      live internal list, so a caller mutating a hit — or two concurrent
      queries sharing one — silently corrupted every later hit for that
      signature.
    * **Locked.**  All bookkeeping (LRU order, eviction, hit/miss
      counters) happens under one lock so concurrent queries of a batch
      can share a single cache.
    """

    capacity: int
    _entries: OrderedDict = field(default_factory=OrderedDict)  #: guarded by _lock
    hits: int = 0  #: guarded by _lock
    misses: int = 0  #: guarded by _lock
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def get(self, signature: tuple) -> list[tuple[int, ...]] | None:
        with self._lock:
            entry = self._entries.get(signature)
            if entry is not None:
                self._entries.move_to_end(signature)
                self.hits += 1
                # copy-on-read: rows are immutable tuples, so a shallow
                # list copy fully detaches the caller from the cache
                return list(entry)
            self.misses += 1
            return None

    def put(self, signature: tuple, roles: list[tuple[int, ...]]) -> None:
        if self.capacity <= 0:
            return
        # copy-on-write: normalize rows to tuples so the stored entry
        # shares no mutable structure with the caller's list
        stored = [tuple(row) for row in roles]
        with self._lock:
            self._entries[signature] = stored
            self._entries.move_to_end(signature)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def counters(self) -> tuple[int, int]:
        """A consistent ``(hits, misses)`` snapshot."""
        with self._lock:
            return self.hits, self.misses

    @property
    def hit_rate(self) -> float:
        hits, misses = self.counters()
        total = hits + misses
        return hits / total if total else 0.0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
