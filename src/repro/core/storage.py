"""Persistence of publish-time artifacts.

A data owner publishes once and queries many times, possibly across
processes.  This module saves and reloads the split deployment:

* ``cloud/``  — what the cloud stores: the published graph, the AVT
  and the candidate-center list (never the LCT or the original graph);
* ``client/`` — what the trusted client keeps: the LCT and the AVT
  (the original graph travels separately, it belongs to the owner).

Both halves are plain JSON files, so the directory doubles as an audit
artifact: everything under ``cloud/`` is exactly what an adversary at
the cloud provider could see.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.anonymize.lct import LabelCorrespondenceTable
from repro.core.data_owner import PublishedData
from repro.exceptions import ProtocolError
from repro.graph.attributed import AttributedGraph
from repro.graph.io import graph_from_dict, graph_to_dict
from repro.kauto.avt import AlignmentVertexTable

CLOUD_DIR = "cloud"
CLIENT_DIR = "client"


def save_published(published: PublishedData, directory: str | Path) -> Path:
    """Write the deployment to ``directory`` (created if missing)."""
    root = Path(directory)
    cloud = root / CLOUD_DIR
    client = root / CLIENT_DIR
    cloud.mkdir(parents=True, exist_ok=True)
    client.mkdir(parents=True, exist_ok=True)

    (cloud / "graph.json").write_text(
        json.dumps(graph_to_dict(published.upload_graph), sort_keys=True)
    )
    (cloud / "avt.json").write_text(json.dumps(published.transform.avt.to_dict()))
    (cloud / "meta.json").write_text(
        json.dumps(
            {
                "center_vertices": published.center_vertices,
                "expand_in_cloud": published.expand_in_cloud,
                "k": published.transform.k,
            }
        )
    )
    (client / "lct.json").write_text(json.dumps(published.lct.to_dict()))
    (client / "avt.json").write_text(json.dumps(published.transform.avt.to_dict()))
    return root


def load_cloud_side(
    directory: str | Path,
) -> tuple[AttributedGraph, AlignmentVertexTable, list[int], bool]:
    """Load what a cloud server needs: (graph, avt, centers, expand)."""
    cloud = Path(directory) / CLOUD_DIR
    try:
        graph = graph_from_dict(json.loads((cloud / "graph.json").read_text()))
        avt = AlignmentVertexTable.from_dict(
            json.loads((cloud / "avt.json").read_text())
        )
        meta = json.loads((cloud / "meta.json").read_text())
        return graph, avt, list(meta["center_vertices"]), bool(meta["expand_in_cloud"])
    except (OSError, KeyError, ValueError) as exc:
        raise ProtocolError(f"cannot load cloud artifacts from {cloud}: {exc}") from exc


def load_client_side(
    directory: str | Path,
) -> tuple[LabelCorrespondenceTable, AlignmentVertexTable]:
    """Load what the trusted client needs: (lct, avt)."""
    client = Path(directory) / CLIENT_DIR
    try:
        lct = LabelCorrespondenceTable.from_dict(
            json.loads((client / "lct.json").read_text())
        )
        avt = AlignmentVertexTable.from_dict(
            json.loads((client / "avt.json").read_text())
        )
        return lct, avt
    except (OSError, KeyError, ValueError) as exc:
        raise ProtocolError(
            f"cannot load client artifacts from {client}: {exc}"
        ) from exc
