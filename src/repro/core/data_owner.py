"""The data owner: anonymize, transform, and publish the data graph.

The owner holds the original graph ``G`` (and optionally a sample query
workload used to estimate ``F_Savg`` for the EFF cost model).  The
publish pipeline (Sections 3-4):

1. build the LCT with the configured grouping strategy (EFF/RAN/FSIM);
2. generalize ``G``'s labels through the LCT;
3. run the k-automorphism transform -> ``Gk`` + AVT;
4. extract the outsourced graph ``Go`` (or keep ``Gk`` for BAS);
5. hand the published graph + AVT to the cloud; keep ``G`` and the LCT
   private.

Every phase emits a span (``publish`` > ``publish.lct`` /
``publish.kauto`` / ``publish.outsource``); the
:class:`~repro.obs.views.PublishMetrics` record on the returned
:class:`PublishedData` is *derived from the trace*, not hand-threaded.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.anonymize import build_lct
from repro.anonymize.lct import LabelCorrespondenceTable
from repro.anonymize.query_anonymizer import star_workload_statistics
from repro.core.config import SystemConfig
from repro.graph.attributed import AttributedGraph
from repro.graph.schema import GraphSchema
from repro.graph.stats import GraphStatistics, compute_statistics
from repro.kauto.builder import KAutomorphismResult, build_k_automorphic_graph
from repro.obs import Observability, PublishMetrics, names
from repro.obs.tracing import Trace
from repro.outsource import build_outsourced_graph


@dataclass
class PublishedData:
    """Everything produced by one publish run.

    ``lct`` is PRIVATE to the owner/clients; the cloud only receives
    ``upload_graph``, ``center_vertices`` and the AVT inside
    ``transform``.  ``trace`` holds the publish spans when the
    observability scope records (the default); ``metrics`` is the
    legacy view computed from it.
    """

    lct: LabelCorrespondenceTable
    transform: KAutomorphismResult
    upload_graph: AttributedGraph
    center_vertices: list[int]
    expand_in_cloud: bool
    metrics: PublishMetrics
    trace: Trace | None = field(default=None)


class DataOwner:
    """Holds ``G`` and orchestrates anonymized publication.

    ``obs`` is the owner's default observability scope.  Publishing is
    one-shot (never on a hot path), so :meth:`publish` always records
    its spans — into a fresh scope derived from ``obs`` — unless the
    caller hands it an explicit scope of its own.
    """

    def __init__(
        self,
        graph: AttributedGraph,
        schema: GraphSchema,
        sample_workload: list[AttributedGraph] | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.graph = graph
        self.schema = schema
        self.sample_workload = list(sample_workload or [])
        self._graph_stats: GraphStatistics | None = None
        self.obs = obs if obs is not None else Observability.measuring()

    @property
    def graph_stats(self) -> GraphStatistics:
        if self._graph_stats is None:
            self._graph_stats = compute_statistics(self.graph)
        return self._graph_stats

    def build_lct(
        self, config: SystemConfig, obs: Observability | None = None
    ) -> tuple[LabelCorrespondenceTable, float]:
        """Construct (and verify) the LCT for ``config``; returns (lct, seconds).

        The whole step — grouping strategy plus verification — runs
        under one ``publish.lct`` span whose duration is the returned
        ``seconds``.
        """
        if obs is None:
            obs = self.obs
        with obs.tracer.span(names.PUBLISH_LCT) as span:
            workload_stats = (
                star_workload_statistics(self.sample_workload)
                if self.sample_workload
                else None
            )
            lct = build_lct(
                self.schema,
                config.theta,
                config.method.strategy,
                graph_stats=self.graph_stats,
                workload_stats=workload_stats,
                seed=config.seed,
                obs=obs,
            )
            lct.verify(allow_small_groups=config.allow_small_label_groups)
        return lct, span.duration

    def publish(
        self, config: SystemConfig, obs: Observability | None = None
    ) -> PublishedData:
        """Run the full publish pipeline for ``config``.

        With ``obs=None`` (standalone use) a fresh recording scope is
        forked from the owner's default, so ``PublishedData.trace`` and
        the derived metrics are always populated.  Pass a scope
        explicitly to aggregate the publish spans into a larger trace
        (what :class:`~repro.core.system.PrivacyPreservingSystem.setup`
        does before appending its upload/index spans).
        """
        scope = obs if obs is not None else self.obs.for_query()
        tracer = scope.tracer

        with tracer.span(names.PUBLISH) as root:
            root.set(
                method=config.method.name,
                k=config.k,
                theta=config.theta,
                original_vertices=self.graph.vertex_count,
                original_edges=self.graph.edge_count,
            )

            lct, _ = self.build_lct(config, obs=scope)

            with tracer.span(names.PUBLISH_KAUTO) as kauto_span:
                generalized = lct.apply_to_graph(self.graph)
                transform = build_k_automorphic_graph(
                    generalized,
                    config.k,
                    seed=config.seed,
                    label_aware_alignment=config.label_aware_alignment,
                    obs=scope,
                )
                kauto_span.set(
                    gk_vertices=transform.gk.vertex_count,
                    gk_edges=transform.gk.edge_count,
                    noise_vertices=transform.noise_vertex_count,
                    noise_edges=transform.noise_edge_count,
                )

            with tracer.span(names.PUBLISH_OUTSOURCE) as out_span:
                if config.method.upload_full_gk:
                    upload_graph = transform.gk
                    center_vertices = sorted(transform.gk.vertex_ids())
                    expand_in_cloud = False
                else:
                    outsourced = build_outsourced_graph(
                        transform.gk, transform.avt
                    )
                    upload_graph = outsourced.graph
                    center_vertices = outsourced.block_vertices
                    expand_in_cloud = True
                out_span.set(
                    uploaded_vertices=upload_graph.vertex_count,
                    uploaded_edges=upload_graph.edge_count,
                    full_gk=config.method.upload_full_gk,
                )

        trace = tracer.trace() if tracer.recording else None
        return PublishedData(
            lct=lct,
            transform=transform,
            upload_graph=upload_graph,
            center_vertices=center_vertices,
            expand_in_cloud=expand_in_cloud,
            metrics=PublishMetrics.from_trace(trace),
            trace=trace,
        )
