"""The data owner: anonymize, transform, and publish the data graph.

The owner holds the original graph ``G`` (and optionally a sample query
workload used to estimate ``F_Savg`` for the EFF cost model).  The
publish pipeline (Sections 3-4):

1. build the LCT with the configured grouping strategy (EFF/RAN/FSIM);
2. generalize ``G``'s labels through the LCT;
3. run the k-automorphism transform -> ``Gk`` + AVT;
4. extract the outsourced graph ``Go`` (or keep ``Gk`` for BAS);
5. hand the published graph + AVT to the cloud; keep ``G`` and the LCT
   private.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.anonymize import build_lct
from repro.anonymize.lct import LabelCorrespondenceTable
from repro.anonymize.query_anonymizer import star_workload_statistics
from repro.core.config import SystemConfig
from repro.core.metrics import PublishMetrics
from repro.graph.attributed import AttributedGraph
from repro.graph.schema import GraphSchema
from repro.graph.stats import GraphStatistics, compute_statistics
from repro.kauto.builder import KAutomorphismResult, build_k_automorphic_graph
from repro.outsource import build_outsourced_graph


@dataclass
class PublishedData:
    """Everything produced by one publish run.

    ``lct`` is PRIVATE to the owner/clients; the cloud only receives
    ``upload_graph``, ``center_vertices`` and the AVT inside
    ``transform``.
    """

    lct: LabelCorrespondenceTable
    transform: KAutomorphismResult
    upload_graph: AttributedGraph
    center_vertices: list[int]
    expand_in_cloud: bool
    metrics: PublishMetrics


class DataOwner:
    """Holds ``G`` and orchestrates anonymized publication."""

    def __init__(
        self,
        graph: AttributedGraph,
        schema: GraphSchema,
        sample_workload: list[AttributedGraph] | None = None,
    ):
        self.graph = graph
        self.schema = schema
        self.sample_workload = list(sample_workload or [])
        self._graph_stats: GraphStatistics | None = None

    @property
    def graph_stats(self) -> GraphStatistics:
        if self._graph_stats is None:
            self._graph_stats = compute_statistics(self.graph)
        return self._graph_stats

    def build_lct(self, config: SystemConfig) -> tuple[LabelCorrespondenceTable, float]:
        """Construct (and verify) the LCT for ``config``; returns (lct, seconds)."""
        started = time.perf_counter()
        workload_stats = (
            star_workload_statistics(self.sample_workload)
            if self.sample_workload
            else None
        )
        lct = build_lct(
            self.schema,
            config.theta,
            config.method.strategy,
            graph_stats=self.graph_stats,
            workload_stats=workload_stats,
            seed=config.seed,
        )
        lct.verify(allow_small_groups=config.allow_small_label_groups)
        return lct, time.perf_counter() - started

    def publish(self, config: SystemConfig) -> PublishedData:
        """Run the full publish pipeline for ``config``."""
        metrics = PublishMetrics(
            method=config.method.name,
            k=config.k,
            theta=config.theta,
            original_vertices=self.graph.vertex_count,
            original_edges=self.graph.edge_count,
        )

        lct, metrics.lct_seconds = self.build_lct(config)

        gk_start = time.perf_counter()
        generalized = lct.apply_to_graph(self.graph)
        transform = build_k_automorphic_graph(
            generalized,
            config.k,
            seed=config.seed,
            label_aware_alignment=config.label_aware_alignment,
        )
        metrics.gk_seconds = time.perf_counter() - gk_start
        metrics.gk_vertices = transform.gk.vertex_count
        metrics.gk_edges = transform.gk.edge_count
        metrics.noise_vertices = transform.noise_vertex_count
        metrics.noise_edges = transform.noise_edge_count

        go_start = time.perf_counter()
        if config.method.upload_full_gk:
            upload_graph = transform.gk
            center_vertices = sorted(transform.gk.vertex_ids())
            expand_in_cloud = False
        else:
            outsourced = build_outsourced_graph(transform.gk, transform.avt)
            upload_graph = outsourced.graph
            center_vertices = outsourced.block_vertices
            expand_in_cloud = True
        metrics.go_seconds = time.perf_counter() - go_start
        metrics.uploaded_vertices = upload_graph.vertex_count
        metrics.uploaded_edges = upload_graph.edge_count

        return PublishedData(
            lct=lct,
            transform=transform,
            upload_graph=upload_graph,
            center_vertices=center_vertices,
            expand_in_cloud=expand_in_cloud,
            metrics=metrics,
        )
