"""End-to-end facade: data owner + simulated wire + cloud + client.

:class:`PrivacyPreservingSystem` wires the whole paper pipeline
together and measures every phase the evaluation reports: cloud query
time, star matching time, |RS|, |Rin|, network bytes/time, client
expansion/filter time, and the end-to-end total.

Usage::

    system = PrivacyPreservingSystem.setup(graph, schema, SystemConfig(k=3))
    outcome = system.query(query_graph)
    outcome.matches        # exactly R(Q, G)
    outcome.metrics        # per-phase timings and sizes
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass

from repro.client.expansion import expand_rin
from repro.cloud.parallel import effective_workers, map_batch, validate_backend
from repro.cloud.server import CloudServer
from repro.core.config import SystemConfig
from repro.core.data_owner import DataOwner, PublishedData
from repro.core.metrics import BatchMetrics, PublishMetrics, QueryMetrics
from repro.core.protocol import (
    NetworkChannel,
    decode_answer,
    decode_query,
    decode_upload,
    encode_answer,
    encode_query,
    encode_upload,
)
from repro.core.query_client import QueryClient
from repro.graph.attributed import AttributedGraph
from repro.graph.schema import GraphSchema
from repro.graph.validation import validate_query
from repro.matching.match import Match


@dataclass
class QueryOutcome:
    """Final exact results plus the full per-phase cost breakdown."""

    matches: list[Match]
    metrics: QueryMetrics


@dataclass
class BatchOutcome:
    """A ``query_batch`` run: per-query outcomes + batch telemetry."""

    outcomes: list[QueryOutcome]
    metrics: BatchMetrics

    @property
    def matches(self) -> list[list[Match]]:
        """Per-query match lists, in submission order."""
        return [outcome.matches for outcome in self.outcomes]


class PrivacyPreservingSystem:
    """A fully wired owner/cloud/client deployment."""

    def __init__(
        self,
        owner: DataOwner,
        published: PublishedData,
        cloud: CloudServer,
        client: QueryClient,
        config: SystemConfig,
        channel: NetworkChannel,
        publish_metrics: PublishMetrics,
    ):
        self.owner = owner
        self.published = published
        self.cloud = cloud
        self.client = client
        self.config = config
        self.channel = channel
        self.publish_metrics = publish_metrics

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    @classmethod
    def setup(
        cls,
        graph: AttributedGraph,
        schema: GraphSchema,
        config: SystemConfig,
        sample_workload: list[AttributedGraph] | None = None,
        channel: NetworkChannel | None = None,
    ) -> "PrivacyPreservingSystem":
        """Publish ``graph`` under ``config`` and stand up cloud+client.

        The upload really travels through the protocol encoder/decoder
        so its byte size is measured and the cloud works from exactly
        what the wire carried.
        """
        channel = channel or NetworkChannel()
        owner = DataOwner(graph, schema, sample_workload)
        published = owner.publish(config)

        payload = encode_upload(published.upload_graph, published.transform.avt)
        upload_seconds = channel.transmit("upload", payload)
        cloud_graph, cloud_avt = decode_upload(payload)

        cloud = CloudServer(
            cloud_graph,
            cloud_avt,
            published.center_vertices,
            expand_in_cloud=published.expand_in_cloud,
            max_intermediate_results=config.max_intermediate_results,
            star_cache_size=config.star_cache_size,
            star_workers=config.star_workers,
        )
        client = QueryClient(graph, published.lct, published.transform.avt)

        metrics = published.metrics
        metrics.upload_bytes = len(payload)
        metrics.upload_network_seconds = upload_seconds
        metrics.index_bytes = cloud.index_size_bytes()
        metrics.index_seconds = cloud.index_build_seconds()

        return cls(owner, published, cloud, client, config, channel, metrics)

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def query(self, query: AttributedGraph, limit: int | None = None) -> QueryOutcome:
        """Answer ``query`` exactly, through the privacy pipeline.

        ``limit`` caps the number of returned matches (the client stops
        filtering early); the cloud-side work is unchanged.
        """
        validate_query(query)
        metrics = QueryMetrics(
            method=self.config.method.name,
            k=self.config.k,
            query_edges=query.edge_count,
        )

        # client: anonymize and send
        anonymized = self.client.prepare_query(query)
        query_payload = encode_query(anonymized)
        metrics.query_bytes = len(query_payload)
        query_network = self.channel.transmit("query", query_payload)

        # cloud: decompose, star-match, join
        cloud_query = decode_query(query_payload)
        answer = self.cloud.answer(cloud_query)
        metrics.decomposition_seconds = answer.decomposition_seconds
        metrics.star_matching_seconds = answer.star_stats.seconds
        metrics.join_seconds = answer.join_stats.seconds
        metrics.rs_size = answer.rs_size
        metrics.rin_size = len(answer.matches)
        cloud_seconds = answer.total_seconds

        matches, expanded = answer.matches, answer.expanded
        if self.config.expansion_site == "cloud" and not expanded:
            # Section 4.2.2: the expansion step may run in the cloud to
            # spare the client, at higher communication cost.
            cloud_expand_start = time.perf_counter()
            expansion = expand_rin(matches, self.cloud.avt)
            matches, expanded = expansion.matches, True
            cloud_seconds += time.perf_counter() - cloud_expand_start
        metrics.cloud_seconds = cloud_seconds

        # wire: ship the answer
        order = sorted(query.vertex_ids())
        answer_payload = encode_answer(matches, order, expanded)
        metrics.answer_bytes = len(answer_payload)
        answer_network = self.channel.transmit("answer", answer_payload)
        metrics.network_seconds = query_network + answer_network

        # client: expand (if needed) + filter
        received, already_expanded = decode_answer(answer_payload)
        outcome = self.client.process_answer(
            query, received, already_expanded, limit=limit
        )
        metrics.expansion_seconds = outcome.expansion_seconds
        metrics.filter_seconds = outcome.filter_seconds
        metrics.client_seconds = outcome.seconds
        metrics.candidate_count = outcome.candidate_count
        metrics.result_count = len(outcome.matches)

        return QueryOutcome(matches=outcome.matches, metrics=metrics)

    def query_batch(
        self,
        queries: list[AttributedGraph],
        max_workers: int | None = None,
        backend: str = "thread",
        limit: int | None = None,
    ) -> BatchOutcome:
        """Answer a workload of queries through a bounded worker pool.

        Every query runs the full pipeline of :meth:`query` —
        anonymize, encode, decompose, star-match, join, decode, expand,
        filter — on one of ``max_workers`` workers (default: one per
        core).  The cloud's VBV/LBV index is shared read-only and the
        star cache is shared through its lock, so repeated star shapes
        across the batch are matched once.  Outcomes come back **in
        submission order** with match sets bit-identical to a serial
        loop of :meth:`query` calls.

        ``backend`` is ``"thread"`` (default; shares the cache),
        ``"process"`` (fork-based, for CPU-bound batches on multi-core
        hosts; cache/channel updates stay in the children), or
        ``"serial"`` (the plain loop — the baseline
        ``benchmarks/bench_parallel_engine.py`` measures against).
        """
        validate_backend(backend)
        queries = list(queries)
        worker_count = effective_workers(max_workers, len(queries))
        cache_shared = backend != "process"
        hits_before, misses_before = self.cloud.star_cache.counters()

        run_one = functools.partial(self.query, limit=limit)
        started = time.perf_counter()
        outcomes = map_batch(run_one, queries, max_workers, backend)
        wall_seconds = time.perf_counter() - started

        hits_after, misses_after = self.cloud.star_cache.counters()
        metrics = BatchMetrics(
            backend=backend,
            worker_count=1 if backend == "serial" else worker_count,
            wall_seconds=wall_seconds,
            per_query=[outcome.metrics for outcome in outcomes],
            cache_hits=hits_after - hits_before,
            cache_misses=misses_after - misses_before,
            cache_shared=cache_shared,
        )
        return BatchOutcome(outcomes=outcomes, metrics=metrics)
