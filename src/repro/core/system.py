"""End-to-end facade: data owner + simulated wire + cloud + client.

:class:`PrivacyPreservingSystem` wires the whole paper pipeline
together.  Every phase the evaluation reports — cloud query time, star
matching time, |RS|, |Rin|, network bytes/time, client expansion/filter
time, the end-to-end total — is a *span* on the system's
:class:`~repro.obs.Observability` scope; the
:class:`~repro.obs.views.QueryMetrics` record on each outcome is a view
computed from that trace, not a hand-threaded ledger.

Usage::

    system = PrivacyPreservingSystem.setup(graph, schema, SystemConfig(k=3))
    outcome = system.query(query_graph)
    outcome.matches        # exactly R(Q, G)
    outcome.metrics        # per-phase timings and sizes (from the trace)
    outcome.trace          # the spans themselves

Each query runs on its own recording tracer (``obs.for_query()``), so
concurrent batch queries never interleave spans and every trace is
self-contained and picklable (the ``process`` batch backend ships them
back from forked children).  Pass ``obs=Observability.disabled()`` to
:meth:`~PrivacyPreservingSystem.setup` for a no-op hot path — metrics
and traces then read empty.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from typing import Any

from repro.client.expansion import expand_rin, expand_rin_table
from repro.cloud.parallel import effective_workers, map_batch
from repro.cloud.server import CloudServer
from repro.cloud.sharding import ShardedCloud
from repro.compat import warn_renamed
from repro.core.config import SystemConfig
from repro.core.data_owner import DataOwner, PublishedData
from repro.core.options import DEFAULT_OPTIONS, QueryOptions
from repro.core.protocol import (
    NetworkChannel,
    decode_answer,
    decode_answer_table,
    decode_query,
    decode_upload,
    encode_answer,
    encode_answer_table,
    encode_query,
    encode_upload,
)
from repro.core.query_client import QueryClient
from repro.exceptions import ConfigError
from repro.graph.attributed import AttributedGraph
from repro.graph.schema import GraphSchema
from repro.graph.validation import validate_query
from repro.matching.match import Match
from repro.obs import (
    BatchMetrics,
    EventLog,
    Observability,
    PublishMetrics,
    QueryMetrics,
    SlidingWindow,
    names,
)
from repro.obs.explain import ExplainReport
from repro.obs.tracing import Trace


@dataclass
class QueryOutcome:
    """Final exact results plus the full per-phase cost breakdown.

    ``metrics`` is derived from ``trace`` (see
    :meth:`~repro.obs.views.QueryMetrics.from_trace`); both are
    ``None``-safe and round-trip through :meth:`to_dict` /
    :meth:`from_dict`.
    """

    matches: list[Match]
    metrics: QueryMetrics
    trace: Trace | None = field(default=None)
    #: id of the per-query scope the query ran on; also stamped onto
    #: every span of ``trace`` and onto the structured events derived
    #: from it ("" when the system ran with observability disabled).
    query_id: str = ""
    #: per-query EXPLAIN view over ``trace``; populated only when the
    #: call ran with ``QueryOptions(explain=True)``.
    explain: ExplainReport | None = field(default=None)

    def to_dict(self) -> dict[str, Any]:
        return {
            "matches": [sorted(match.items()) for match in self.matches],
            "metrics": self.metrics.to_dict(),
            "trace": self.trace.to_dict() if self.trace is not None else None,
            "query_id": self.query_id,
            "explain": (
                self.explain.to_dict() if self.explain is not None else None
            ),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "QueryOutcome":
        trace = data.get("trace")
        explain = data.get("explain")
        return cls(
            matches=[
                {int(q): int(v) for q, v in match} for match in data["matches"]
            ],
            metrics=QueryMetrics.from_dict(data["metrics"]),
            trace=Trace.from_dict(trace) if trace is not None else None,
            query_id=data.get("query_id", ""),
            explain=(
                ExplainReport.from_dict(explain)
                if explain is not None
                else None
            ),
        )


@dataclass
class BatchOutcome:
    """A ``query_batch`` run: per-query outcomes + batch telemetry.

    ``trace`` carries the batch-level ``batch`` span (backend, worker
    count, wall time); the per-query traces live on the individual
    outcomes.
    """

    outcomes: list[QueryOutcome]
    metrics: BatchMetrics
    trace: Trace | None = field(default=None)

    @property
    def matches(self) -> list[list[Match]]:
        """Per-query match lists, in submission order."""
        return [outcome.matches for outcome in self.outcomes]

    def to_dict(self) -> dict[str, Any]:
        return {
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
            "metrics": self.metrics.to_dict(),
            "trace": self.trace.to_dict() if self.trace is not None else None,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "BatchOutcome":
        trace = data.get("trace")
        return cls(
            outcomes=[
                QueryOutcome.from_dict(entry) for entry in data["outcomes"]
            ],
            metrics=BatchMetrics.from_dict(data["metrics"]),
            trace=Trace.from_dict(trace) if trace is not None else None,
        )


class PrivacyPreservingSystem:
    """A fully wired owner/cloud/client deployment."""

    def __init__(
        self,
        owner: DataOwner,
        published: PublishedData,
        cloud: CloudServer | ShardedCloud,
        client: QueryClient,
        config: SystemConfig,
        channel: NetworkChannel,
        publish_metrics: PublishMetrics,
        obs: Observability | None = None,
    ) -> None:
        self.owner = owner
        self.published = published
        self.cloud = cloud
        self.client = client
        self.config = config
        self.channel = channel
        self.publish_metrics = publish_metrics
        self.obs = obs if obs is not None else Observability()
        # -- serving telemetry (config-driven, off by default) ----------
        if (
            config.event_log_path is not None
            and self.obs.enabled
            and not self.obs.events.enabled
        ):
            self.obs.events = EventLog(
                config.event_log_path,
                level=config.event_log_level,
                sample_rate=config.event_sample_rate,
            )
        # sliding window behind the `query_seconds_window_*` pull gauges
        # (p50/p95/p99/rate/count on /metrics); null-obs systems skip the
        # registration so the disabled hot path stays flat.
        self.query_window = SlidingWindow(
            capacity=config.slo_window_size,
            window_seconds=config.slo_window_seconds,
        )
        if self.obs.enabled:
            self.query_window.register(
                self.obs.metrics,
                names.W_QUERY_WINDOW,
                help="End-to-end query seconds over the SLO window.",
            )
        if self.obs.events.enabled and published.trace is not None:
            # one "publish" record so the event log is self-describing:
            # every later query event refers back to this deployment.
            self.obs.events.emit(
                names.PUBLISH,
                method=config.method.name,
                k=config.k,
                theta=config.theta,
                spans=len(published.trace),
            )

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    @classmethod
    def setup(
        cls,
        graph: AttributedGraph,
        schema: GraphSchema,
        config: SystemConfig,
        sample_workload: list[AttributedGraph] | None = None,
        channel: NetworkChannel | None = None,
        obs: Observability | None = None,
    ) -> "PrivacyPreservingSystem":
        """Publish ``graph`` under ``config`` and stand up cloud+client.

        The upload really travels through the protocol encoder/decoder
        so its byte size is measured and the cloud works from exactly
        what the wire carried.  The whole run is traced into one
        publish-side trace (``publish`` + upload/index spans), exposed
        as ``system.published.trace`` / ``system.publish_metrics``.
        """
        obs = obs if obs is not None else Observability()
        scope = obs.for_query()
        tracer = scope.tracer
        channel = channel or NetworkChannel()
        # components default to measure-only scopes that share the
        # system registry: standalone calls on them stay cheap, while
        # system-driven calls receive the per-query recording scope.
        component_obs = Observability(record=False, registry=obs.metrics)

        owner = DataOwner(graph, schema, sample_workload, obs=component_obs)
        published = owner.publish(config, obs=scope)

        with tracer.span(names.ENCODE_UPLOAD) as span:
            payload = encode_upload(
                published.upload_graph, published.transform.avt
            )
            span.set(bytes=len(payload))
        channel.transmit("upload", payload, obs=scope)
        cloud_graph, cloud_avt = decode_upload(payload)

        with tracer.span(names.CLOUD_INDEX_BUILD) as span:
            cloud: CloudServer | ShardedCloud
            if config.shards > 1:
                # sharded deployment: Go partitioned over N shard
                # servers behind a scatter-gather coordinator; answers
                # stay bit-identical to the single-server pipeline.
                cloud = ShardedCloud(
                    cloud_graph,
                    cloud_avt,
                    published.center_vertices,
                    shards=config.shards,
                    expand_in_cloud=published.expand_in_cloud,
                    max_intermediate_results=config.max_intermediate_results,
                    star_cache_size=config.star_cache_size,
                    backend=config.shard_backend,
                    partition_seed=config.seed,
                    obs=component_obs,
                )
            else:
                cloud = CloudServer(
                    cloud_graph,
                    cloud_avt,
                    published.center_vertices,
                    expand_in_cloud=published.expand_in_cloud,
                    max_intermediate_results=config.max_intermediate_results,
                    star_cache_size=config.star_cache_size,
                    star_workers=config.star_workers,
                    obs=component_obs,
                )
            span.set(
                index_bytes=cloud.index_size_bytes(),
                build_seconds=cloud.index_build_seconds(),
            )
        client = QueryClient(
            graph, published.lct, published.transform.avt, obs=component_obs
        )

        trace = tracer.take_trace() if tracer.recording else None
        published.trace = trace
        published.metrics = PublishMetrics.from_trace(trace)

        return cls(
            owner,
            published,
            cloud,
            client,
            config,
            channel,
            published.metrics,
            obs=obs,
        )

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def submit(
        self,
        queries: list[AttributedGraph],
        *,
        options: QueryOptions | None = None,
        obs: Observability | None = None,
    ) -> BatchOutcome:
        """The single query entry point: answer ``queries`` under ``options``.

        Every way into the system — :meth:`query`, :meth:`query_batch`,
        the serving gateway — routes through here; the wire, trace and
        cache plumbing lives in this one method.  A single-element
        workload runs inline (no batch span, exactly the per-query
        trace shape of :meth:`query`); larger workloads fan out over
        the ``options.backend`` worker pool with a ``batch`` span and
        event wrapping the run.  Outcomes come back in submission
        order, bit-identical to a serial loop.

        ``obs`` overrides the system scope; ``options.trace=False``
        forces the disabled scope regardless (raw-throughput serving).
        """
        options = options if options is not None else DEFAULT_OPTIONS
        if options.shards is not None:
            deployed = max(1, self.config.shards)
            if options.shards != deployed:
                raise ConfigError(
                    f"options.shards={options.shards} does not match the "
                    f"deployed topology of {deployed} shard(s)"
                )
        if not options.trace:
            base = Observability.disabled()
        else:
            base = obs if obs is not None else self.obs

        queries = list(queries)
        hits_before, misses_before = self.cloud.star_cache.counters()

        if len(queries) == 1:
            started = time.perf_counter()
            outcome = self._run_one(queries[0], options=options, obs=base)
            wall_seconds = time.perf_counter() - started
            outcomes = [outcome]
            worker_count = 1
            cache_shared = True
            trace = None
        else:
            worker_count = effective_workers(options.workers, len(queries))
            cache_shared = options.backend != "process"
            scope = base.for_query()
            run_one = functools.partial(
                self._run_one, options=options, obs=base
            )
            with scope.tracer.span(names.BATCH) as span:
                started = time.perf_counter()
                outcomes = map_batch(
                    run_one, queries, options.workers, options.backend
                )
                wall_seconds = time.perf_counter() - started
                span.set(
                    backend=options.backend,
                    workers=1 if options.backend == "serial" else worker_count,
                    queries=len(queries),
                    wall_seconds=wall_seconds,
                )
            trace = (
                scope.tracer.take_trace() if scope.tracer.recording else None
            )
            if scope.events.enabled:
                scope.events.emit(
                    names.BATCH,
                    backend=options.backend,
                    workers=1 if options.backend == "serial" else worker_count,
                    queries=len(queries),
                    seconds=wall_seconds,
                )

        hits_after, misses_after = self.cloud.star_cache.counters()
        metrics = BatchMetrics(
            backend=options.backend,
            worker_count=(
                1
                if len(queries) == 1 or options.backend == "serial"
                else worker_count
            ),
            wall_seconds=wall_seconds,
            per_query=[outcome.metrics for outcome in outcomes],
            cache_hits=hits_after - hits_before,
            cache_misses=misses_after - misses_before,
            cache_shared=cache_shared,
        )
        return BatchOutcome(outcomes=outcomes, metrics=metrics, trace=trace)

    def query(
        self,
        query: AttributedGraph,
        limit: int | None = None,
        obs: Observability | None = None,
        *,
        options: QueryOptions | None = None,
    ) -> QueryOutcome:
        """Answer ``query`` exactly, through the privacy pipeline.

        A thin delegate of :meth:`submit` for the common one-query
        case.  Pass tuning knobs via ``options``; the old ``limit``
        keyword still works but is deprecated in favor of
        ``QueryOptions(max_results=...)``.

        The query runs on a fresh per-query recording scope forked from
        ``obs`` (default: the system scope) — its spans become
        ``outcome.trace`` and the registry aggregates accumulate on the
        shared :class:`~repro.obs.MetricsRegistry`.
        """
        if limit is not None:
            if options is not None:
                raise ConfigError(
                    "pass QueryOptions or the legacy limit keyword, not both"
                )
            warn_renamed(
                "PrivacyPreservingSystem.query(limit=...)",
                "QueryOptions(max_results=...)",
            )
            options = DEFAULT_OPTIONS.evolve(max_results=limit)
        return self.submit([query], options=options, obs=obs).outcomes[0]

    def _run_one(
        self,
        query: AttributedGraph,
        *,
        options: QueryOptions,
        obs: Observability | None = None,
    ) -> QueryOutcome:
        """One query through the full pipeline (the :meth:`submit` core)."""
        validate_query(query)
        base = obs if obs is not None else self.obs
        scope = base.for_query()
        tracer = scope.tracer

        with tracer.span(names.QUERY) as root:
            root.set(
                method=self.config.method.name,
                k=self.config.k,
                query_edges=query.edge_count,
            )

            # client: anonymize and send
            anonymized = self.client.prepare_query(query, obs=scope)
            with tracer.span(names.ENCODE_QUERY) as span:
                query_payload = encode_query(anonymized)
                span.set(bytes=len(query_payload))
            self.channel.transmit("query", query_payload, obs=scope)

            # cloud: decompose, star-match, join
            with tracer.span(names.DECODE_QUERY):
                cloud_query = decode_query(query_payload)
            if options.star_workers is not None and isinstance(
                self.cloud, CloudServer
            ):
                # per-call intra-query parallelism override; sharded
                # deployments keep their per-shard configuration.
                answer = self.cloud.answer(
                    cloud_query, obs=scope, star_workers=options.star_workers
                )
            else:
                answer = self.cloud.answer(cloud_query, obs=scope)

            order = sorted(query.vertex_ids())
            table, expanded = answer.table, answer.expanded
            if options.wire == "dict":
                # forced legacy framing: the dict fallback below reads
                # answer.matches (a lazy view over the table).
                table = None
            if table is not None:
                # columnar serving path: the result set stays tabular
                # from the cloud join to the client filter; dicts are
                # only materialized for the final (small) exact results.
                if self.config.expansion_site == "cloud" and not expanded:
                    # Section 4.2.2: the expansion step may run in the
                    # cloud to spare the client, at higher communication
                    # cost.
                    with tracer.span(
                        names.CLOUD_EXPAND, rin_size=len(table)
                    ) as span:
                        expansion = expand_rin_table(table, self.cloud.avt)
                        table, expanded = expansion.table, True
                        span.set(candidates=len(table))

                # wire: ship the answer
                with tracer.span(names.ENCODE_ANSWER) as span:
                    answer_payload = encode_answer_table(
                        table, order, expanded
                    )
                    span.set(bytes=len(answer_payload))
                self.channel.transmit("answer", answer_payload, obs=scope)

                with tracer.span(names.DECODE_ANSWER):
                    received: Any
                    received, already_expanded = decode_answer_table(
                        answer_payload
                    )
            else:
                # dict-based fallback (e.g. the direct-engine ablation)
                matches, expanded = answer.matches, expanded
                if self.config.expansion_site == "cloud" and not expanded:
                    with tracer.span(
                        names.CLOUD_EXPAND, rin_size=len(matches)
                    ) as span:
                        dict_expansion = expand_rin(matches, self.cloud.avt)
                        matches, expanded = dict_expansion.matches, True
                        span.set(candidates=len(matches))

                with tracer.span(names.ENCODE_ANSWER) as span:
                    answer_payload = encode_answer(matches, order, expanded)
                    span.set(bytes=len(answer_payload))
                self.channel.transmit("answer", answer_payload, obs=scope)

                with tracer.span(names.DECODE_ANSWER):
                    received, already_expanded = decode_answer(answer_payload)

            # client: expand (if needed) + filter
            outcome = self.client.process_answer(
                query,
                received,
                already_expanded,
                limit=options.max_results,
                obs=scope,
            )

        scope.metrics.counter(
            names.M_QUERIES, help="Queries answered end to end."
        ).inc()
        scope.metrics.histogram(
            names.M_QUERY_SECONDS,
            help="End-to-end wall seconds per query (excl. simulated wire).",
        ).observe(root.duration)
        if scope.enabled:
            self.query_window.observe(root.duration)

        trace = tracer.take_trace() if tracer.recording else None
        if scope.events.enabled and trace is not None:
            scope.events.emit_query(
                trace,
                scope.query_id,
                method=self.config.method.name,
                matches=len(outcome.matches),
            )
        return QueryOutcome(
            matches=outcome.matches,
            metrics=QueryMetrics.from_trace(trace),
            trace=trace,
            query_id=scope.query_id,
            explain=(
                ExplainReport.from_trace(trace, query_id=scope.query_id)
                if options.explain
                else None
            ),
        )

    def query_batch(
        self,
        queries: list[AttributedGraph],
        max_workers: int | None = None,
        backend: str | None = None,
        limit: int | None = None,
        obs: Observability | None = None,
        *,
        options: QueryOptions | None = None,
    ) -> BatchOutcome:
        """Answer a workload of queries through a bounded worker pool.

        A thin delegate of :meth:`submit`: every query runs the full
        pipeline — anonymize, encode, decompose, star-match, join,
        decode, expand, filter — on one of ``options.workers`` workers
        (default: one per core).  The cloud's VBV/LBV index is shared
        read-only and the star cache is shared through its lock, so
        repeated star shapes across the batch are matched once.
        Outcomes come back **in submission order** with match sets
        bit-identical to a serial loop of :meth:`query` calls.

        ``QueryOptions.backend`` is ``"thread"`` (default; shares the
        cache), ``"process"`` (fork-based, for CPU-bound batches on
        multi-core hosts; cache/channel/registry updates stay in the
        children — per-query *traces* still come back, pickled inside
        each outcome), or ``"serial"`` (the plain loop — the baseline
        ``benchmarks/bench_parallel_engine.py`` measures against).

        The legacy ``max_workers``/``backend``/``limit`` keywords still
        work but are deprecated in favor of ``options``.

        ``obs`` overrides the system scope for the whole batch; pass
        ``Observability.disabled()`` (or ``QueryOptions(trace=False)``)
        to serve the batch with tracing fully off.
        """
        legacy: dict[str, Any] = {}
        if max_workers is not None:
            warn_renamed(
                "PrivacyPreservingSystem.query_batch(max_workers=...)",
                "QueryOptions(workers=...)",
            )
            legacy["workers"] = max_workers
        if backend is not None:
            warn_renamed(
                "PrivacyPreservingSystem.query_batch(backend=...)",
                "QueryOptions(backend=...)",
            )
            legacy["backend"] = backend
        if limit is not None:
            warn_renamed(
                "PrivacyPreservingSystem.query_batch(limit=...)",
                "QueryOptions(max_results=...)",
            )
            legacy["max_results"] = limit
        if legacy:
            if options is not None:
                raise ConfigError(
                    "pass QueryOptions or the legacy keywords, not both"
                )
            options = DEFAULT_OPTIONS.evolve(**legacy)
        return self.submit(queries, options=options, obs=obs)
