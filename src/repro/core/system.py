"""End-to-end facade: data owner + simulated wire + cloud + client.

:class:`PrivacyPreservingSystem` wires the whole paper pipeline
together and measures every phase the evaluation reports: cloud query
time, star matching time, |RS|, |Rin|, network bytes/time, client
expansion/filter time, and the end-to-end total.

Usage::

    system = PrivacyPreservingSystem.setup(graph, schema, SystemConfig(k=3))
    outcome = system.query(query_graph)
    outcome.matches        # exactly R(Q, G)
    outcome.metrics        # per-phase timings and sizes
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.client.expansion import expand_rin
from repro.cloud.server import CloudServer
from repro.core.config import SystemConfig
from repro.core.data_owner import DataOwner, PublishedData
from repro.core.metrics import PublishMetrics, QueryMetrics
from repro.core.protocol import (
    NetworkChannel,
    decode_answer,
    decode_query,
    decode_upload,
    encode_answer,
    encode_query,
    encode_upload,
)
from repro.core.query_client import QueryClient
from repro.graph.attributed import AttributedGraph
from repro.graph.schema import GraphSchema
from repro.graph.validation import validate_query
from repro.matching.match import Match


@dataclass
class QueryOutcome:
    """Final exact results plus the full per-phase cost breakdown."""

    matches: list[Match]
    metrics: QueryMetrics


class PrivacyPreservingSystem:
    """A fully wired owner/cloud/client deployment."""

    def __init__(
        self,
        owner: DataOwner,
        published: PublishedData,
        cloud: CloudServer,
        client: QueryClient,
        config: SystemConfig,
        channel: NetworkChannel,
        publish_metrics: PublishMetrics,
    ):
        self.owner = owner
        self.published = published
        self.cloud = cloud
        self.client = client
        self.config = config
        self.channel = channel
        self.publish_metrics = publish_metrics

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    @classmethod
    def setup(
        cls,
        graph: AttributedGraph,
        schema: GraphSchema,
        config: SystemConfig,
        sample_workload: list[AttributedGraph] | None = None,
        channel: NetworkChannel | None = None,
    ) -> "PrivacyPreservingSystem":
        """Publish ``graph`` under ``config`` and stand up cloud+client.

        The upload really travels through the protocol encoder/decoder
        so its byte size is measured and the cloud works from exactly
        what the wire carried.
        """
        channel = channel or NetworkChannel()
        owner = DataOwner(graph, schema, sample_workload)
        published = owner.publish(config)

        payload = encode_upload(published.upload_graph, published.transform.avt)
        upload_seconds = channel.transmit("upload", payload)
        cloud_graph, cloud_avt = decode_upload(payload)

        cloud = CloudServer(
            cloud_graph,
            cloud_avt,
            published.center_vertices,
            expand_in_cloud=published.expand_in_cloud,
            max_intermediate_results=config.max_intermediate_results,
            star_cache_size=config.star_cache_size,
        )
        client = QueryClient(graph, published.lct, published.transform.avt)

        metrics = published.metrics
        metrics.upload_bytes = len(payload)
        metrics.upload_network_seconds = upload_seconds
        metrics.index_bytes = cloud.index_size_bytes()
        metrics.index_seconds = cloud.index_build_seconds()

        return cls(owner, published, cloud, client, config, channel, metrics)

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def query(self, query: AttributedGraph, limit: int | None = None) -> QueryOutcome:
        """Answer ``query`` exactly, through the privacy pipeline.

        ``limit`` caps the number of returned matches (the client stops
        filtering early); the cloud-side work is unchanged.
        """
        validate_query(query)
        metrics = QueryMetrics(
            method=self.config.method.name,
            k=self.config.k,
            query_edges=query.edge_count,
        )

        # client: anonymize and send
        anonymized = self.client.prepare_query(query)
        query_payload = encode_query(anonymized)
        metrics.query_bytes = len(query_payload)
        query_network = self.channel.transmit("query", query_payload)

        # cloud: decompose, star-match, join
        cloud_query = decode_query(query_payload)
        answer = self.cloud.answer(cloud_query)
        metrics.decomposition_seconds = answer.decomposition_seconds
        metrics.star_matching_seconds = answer.star_stats.seconds
        metrics.join_seconds = answer.join_stats.seconds
        metrics.rs_size = answer.rs_size
        metrics.rin_size = len(answer.matches)
        cloud_seconds = answer.total_seconds

        matches, expanded = answer.matches, answer.expanded
        if self.config.expansion_site == "cloud" and not expanded:
            # Section 4.2.2: the expansion step may run in the cloud to
            # spare the client, at higher communication cost.
            cloud_expand_start = time.perf_counter()
            expansion = expand_rin(matches, self.cloud.avt)
            matches, expanded = expansion.matches, True
            cloud_seconds += time.perf_counter() - cloud_expand_start
        metrics.cloud_seconds = cloud_seconds

        # wire: ship the answer
        order = sorted(query.vertex_ids())
        answer_payload = encode_answer(matches, order, expanded)
        metrics.answer_bytes = len(answer_payload)
        answer_network = self.channel.transmit("answer", answer_payload)
        metrics.network_seconds = query_network + answer_network

        # client: expand (if needed) + filter
        received, already_expanded = decode_answer(answer_payload)
        outcome = self.client.process_answer(
            query, received, already_expanded, limit=limit
        )
        metrics.expansion_seconds = outcome.expansion_seconds
        metrics.filter_seconds = outcome.filter_seconds
        metrics.client_seconds = outcome.seconds
        metrics.candidate_count = outcome.candidate_count
        metrics.result_count = len(outcome.matches)

        return QueryOutcome(matches=outcome.matches, metrics=metrics)
