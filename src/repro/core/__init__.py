"""End-to-end orchestration: owner, cloud, client, protocol, metrics.

The observability layer itself lives in :mod:`repro.obs`; the pieces a
deployment typically touches — :class:`~repro.obs.Observability`, the
metric views, :func:`~repro.obs.exporters.format_percent` — are
re-exported here (and from the top-level ``repro`` package) so
``from repro import Tracer, MetricsRegistry`` works.
"""

from repro.core.config import (
    DEFAULT_THETA,
    METHOD_NAMES,
    MethodConfig,
    SystemConfig,
)
from repro.core.data_owner import DataOwner, PublishedData
from repro.core.metrics import (
    AggregatedMetrics,
    BatchMetrics,
    PublishMetrics,
    QueryMetrics,
    format_percent,
)
from repro.obs import (
    MetricsRegistry,
    Observability,
    Trace,
    Tracer,
)
from repro.core.protocol import (
    NetworkChannel,
    TransferRecord,
    decode_answer,
    decode_answer_batch,
    decode_query,
    decode_query_batch,
    decode_upload,
    encode_answer,
    encode_answer_batch,
    encode_query,
    encode_query_batch,
    encode_upload,
)
from repro.core.options import DEFAULT_OPTIONS, QueryOptions
from repro.core.query_client import ClientOutcome, QueryClient
from repro.core.system import BatchOutcome, PrivacyPreservingSystem, QueryOutcome

__all__ = [
    "SystemConfig",
    "MethodConfig",
    "METHOD_NAMES",
    "DEFAULT_THETA",
    "QueryOptions",
    "DEFAULT_OPTIONS",
    "DataOwner",
    "PublishedData",
    "QueryClient",
    "ClientOutcome",
    "PrivacyPreservingSystem",
    "QueryOutcome",
    "BatchOutcome",
    "PublishMetrics",
    "QueryMetrics",
    "AggregatedMetrics",
    "BatchMetrics",
    "format_percent",
    "Observability",
    "Tracer",
    "Trace",
    "MetricsRegistry",
    "NetworkChannel",
    "TransferRecord",
    "encode_upload",
    "decode_upload",
    "encode_query",
    "decode_query",
    "encode_answer",
    "decode_answer",
    "encode_query_batch",
    "decode_query_batch",
    "encode_answer_batch",
    "decode_answer_batch",
]
