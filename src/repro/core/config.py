"""Configuration of the end-to-end system.

The paper's evaluation compares four method configurations:

========  =======================  ==================
name      label grouping           uploaded graph
========  =======================  ==================
``EFF``   cost-model (Section 5)   ``Go``
``RAN``   random                   ``Go``
``FSIM``  frequency-similar        ``Go``
``BAS``   cost-model (same as EFF) full ``Gk``
========  =======================  ==================

:class:`SystemConfig` is **keyword-only** and validates every field at
construction (``ConfigError`` — a :class:`~repro.exceptions.ReproError`
subclass — instead of silently accepting bad values).  ``method``
accepts either a :class:`MethodConfig` or one of the four names.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.anonymize import STRATEGIES, GroupingStrategy
from repro.exceptions import ConfigError

DEFAULT_THETA = 2  # the paper's default: two labels per label group


@dataclass(frozen=True)
class MethodConfig:
    """One of the paper's compared methods."""

    name: str
    strategy: GroupingStrategy
    upload_full_gk: bool

    @classmethod
    def from_name(cls, name: str) -> "MethodConfig":
        key = str(name).upper()
        if key == "BAS":
            return cls(name="BAS", strategy=STRATEGIES["EFF"], upload_full_gk=True)
        if key in STRATEGIES:
            return cls(name=key, strategy=STRATEGIES[key], upload_full_gk=False)
        raise ConfigError(
            f"unknown method {name!r}; expected one of EFF, RAN, FSIM, BAS"
        )


METHOD_NAMES = ("EFF", "RAN", "FSIM", "BAS")


@dataclass(kw_only=True)
class SystemConfig:
    """Full configuration of one publish-and-query experiment.

    All fields are keyword-only: ``SystemConfig(k=3, method="BAS")``.
    Validation happens in ``__post_init__`` and raises
    :class:`~repro.exceptions.ConfigError` on any out-of-range value.
    """

    k: int = 2
    theta: int = DEFAULT_THETA
    method: MethodConfig | str = field(
        default_factory=lambda: MethodConfig.from_name("EFF")
    )
    seed: int = 0
    # where Rin is expanded to R(Qo, Gk): "client" (default, minimizes
    # communication) or "cloud" (minimizes client CPU) — Section 4.2.2
    # discusses both placements.  Ignored by BAS (already expanded).
    expansion_site: str = "client"
    allow_small_label_groups: bool = True
    # per-query cloud resource quota: a star-match or join intermediate
    # exceeding it raises ResultBudgetExceeded instead of exhausting
    # memory.  None = unlimited (the paper's setting).
    max_intermediate_results: int | None = None
    # pair similarly-labeled vertices into AVT rows so the symmetric
    # row-union widens label groups less (lower delta(k), smaller
    # search space).  Off by default = the paper's pure-BFS alignment.
    label_aware_alignment: bool = False
    # LRU cache of star match sets in the cloud, keyed by the star's
    # constraint signature; entries are reused across queries sharing
    # star shapes.  0 (default) disables caching.  The cache is
    # internally locked, so it is safe to share across the worker pool
    # of `query_batch`.
    star_cache_size: int = 0
    # width of the cloud's per-query star-matching pool: independent
    # stars of one decomposition are matched concurrently.  0/1
    # (default) keeps the paper's serial loop; results are bit-identical
    # either way.
    star_workers: int = 0
    # number of cloud shards: 1 (default) deploys the paper's single
    # CloudServer; N > 1 deploys a ShardedCloud that partitions Go over
    # N shard servers and scatter-gathers each query.  Answers are
    # bit-identical at every shard count.
    shards: int = 1
    # scatter backend of the sharded cloud ("serial", "thread" or
    # "process"); ignored when shards == 1.
    shard_backend: str = "thread"
    # -- serving telemetry (repro.obs.events / repro.obs.windows) -------
    # JSONL event-log destination.  None (default) disables structured
    # event logging entirely; a path makes PrivacyPreservingSystem
    # attach an EventLog emitting one event per traced phase boundary.
    event_log_path: str | None = None
    # "info" records phase boundaries; "debug" additionally records
    # per-star detail (one event per star per query — high volume).
    event_log_level: str = "info"
    # fraction of queries whose events are written, decided
    # deterministically per query_id.  0.0 writes nothing and costs a
    # single predicate call per query (NullTracer-grade).
    event_sample_rate: float = 1.0
    # sliding-window SLO views (p50/p95/p99 + rate on /metrics):
    # ring capacity and optional time bound in seconds (None = purely
    # count-bounded).
    slo_window_size: int = 1024
    slo_window_seconds: float | None = None

    def __post_init__(self) -> None:
        if isinstance(self.method, str):
            # convenience: SystemConfig(method="BAS"); unknown names
            # raise ConfigError from from_name
            self.method = MethodConfig.from_name(self.method)
        elif not isinstance(self.method, MethodConfig):
            raise ConfigError(
                f"method must be a MethodConfig or a method name, "
                f"got {type(self.method).__name__}"
            )
        if not isinstance(self.k, int) or isinstance(self.k, bool):
            raise ConfigError(f"k must be an int, got {self.k!r}")
        if self.k < 2:
            raise ConfigError("k must be >= 2 for any privacy")
        if not isinstance(self.theta, int) or isinstance(self.theta, bool):
            raise ConfigError(f"theta must be an int, got {self.theta!r}")
        if self.theta < 1:
            raise ConfigError("theta must be >= 1")
        if self.expansion_site not in ("client", "cloud"):
            raise ConfigError("expansion_site must be 'client' or 'cloud'")
        if self.max_intermediate_results is not None and (
            self.max_intermediate_results < 0
        ):
            # 0 is legal: "no intermediate results allowed" (every
            # non-empty star/join trips the budget) — the bench harness
            # uses it to exercise the skip path.
            raise ConfigError("max_intermediate_results must be >= 0 or None")
        if self.star_cache_size < 0:
            raise ConfigError("star_cache_size must be >= 0")
        if self.star_workers < 0:
            raise ConfigError("star_workers must be >= 0")
        if not isinstance(self.shards, int) or isinstance(self.shards, bool):
            raise ConfigError(f"shards must be an int, got {self.shards!r}")
        if self.shards < 1:
            raise ConfigError("shards must be >= 1")
        # validated against a literal so importing repro.core.config
        # does not pull the whole cloud package; must stay in sync with
        # repro.cloud.parallel.BACKENDS (pinned by tests).
        if self.shard_backend not in ("serial", "thread", "process"):
            raise ConfigError(
                "shard_backend must be 'serial', 'thread' or 'process', "
                f"got {self.shard_backend!r}"
            )
        if self.event_log_level not in ("debug", "info"):
            raise ConfigError(
                f"event_log_level must be 'debug' or 'info', "
                f"got {self.event_log_level!r}"
            )
        if not 0.0 <= float(self.event_sample_rate) <= 1.0:
            raise ConfigError("event_sample_rate must be in [0.0, 1.0]")
        if not isinstance(self.slo_window_size, int) or isinstance(
            self.slo_window_size, bool
        ):
            raise ConfigError(
                f"slo_window_size must be an int, got {self.slo_window_size!r}"
            )
        if self.slo_window_size < 1:
            raise ConfigError("slo_window_size must be >= 1")
        if self.slo_window_seconds is not None and not (
            self.slo_window_seconds > 0
        ):
            raise ConfigError("slo_window_seconds must be positive or None")
