"""Configuration of the end-to-end system.

The paper's evaluation compares four method configurations:

========  =======================  ==================
name      label grouping           uploaded graph
========  =======================  ==================
``EFF``   cost-model (Section 5)   ``Go``
``RAN``   random                   ``Go``
``FSIM``  frequency-similar        ``Go``
``BAS``   cost-model (same as EFF) full ``Gk``
========  =======================  ==================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.anonymize import STRATEGIES, GroupingStrategy
from repro.exceptions import ReproError

DEFAULT_THETA = 2  # the paper's default: two labels per label group


@dataclass(frozen=True)
class MethodConfig:
    """One of the paper's compared methods."""

    name: str
    strategy: GroupingStrategy
    upload_full_gk: bool

    @classmethod
    def from_name(cls, name: str) -> "MethodConfig":
        key = name.upper()
        if key == "BAS":
            return cls(name="BAS", strategy=STRATEGIES["EFF"], upload_full_gk=True)
        if key in STRATEGIES:
            return cls(name=key, strategy=STRATEGIES[key], upload_full_gk=False)
        raise ReproError(
            f"unknown method {name!r}; expected one of EFF, RAN, FSIM, BAS"
        )


METHOD_NAMES = ("EFF", "RAN", "FSIM", "BAS")


@dataclass
class SystemConfig:
    """Full configuration of one publish-and-query experiment."""

    k: int = 2
    theta: int = DEFAULT_THETA
    method: MethodConfig = field(
        default_factory=lambda: MethodConfig.from_name("EFF")
    )
    seed: int = 0
    # where Rin is expanded to R(Qo, Gk): "client" (default, minimizes
    # communication) or "cloud" (minimizes client CPU) — Section 4.2.2
    # discusses both placements.  Ignored by BAS (already expanded).
    expansion_site: str = "client"
    allow_small_label_groups: bool = True
    # per-query cloud resource quota: a star-match or join intermediate
    # exceeding it raises ResultBudgetExceeded instead of exhausting
    # memory.  None = unlimited (the paper's setting).
    max_intermediate_results: int | None = None
    # pair similarly-labeled vertices into AVT rows so the symmetric
    # row-union widens label groups less (lower delta(k), smaller
    # search space).  Off by default = the paper's pure-BFS alignment.
    label_aware_alignment: bool = False
    # LRU cache of star match sets in the cloud, keyed by the star's
    # constraint signature; entries are reused across queries sharing
    # star shapes.  0 (default) disables caching.  The cache is
    # internally locked, so it is safe to share across the worker pool
    # of `query_batch`.
    star_cache_size: int = 0
    # width of the cloud's per-query star-matching pool: independent
    # stars of one decomposition are matched concurrently.  0/1
    # (default) keeps the paper's serial loop; results are bit-identical
    # either way.
    star_workers: int = 0

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ReproError("k must be >= 2 for any privacy")
        if self.theta < 1:
            raise ReproError("theta must be >= 1")
        if self.expansion_site not in ("client", "cloud"):
            raise ReproError("expansion_site must be 'client' or 'cloud'")
        if self.star_workers < 0:
            raise ReproError("star_workers must be >= 0")
