"""The query client: anonymize queries, post-process cloud answers.

The client is trusted by the data owner: it holds the original graph
``G``, the private LCT and the AVT.  Its per-query work (Section 4.2.2)
is linear in the number of candidate matches: expand ``Rin`` through
the automorphic functions (unless the cloud already did) and filter
false positives against ``G``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.anonymize.lct import LabelCorrespondenceTable
from repro.anonymize.query_anonymizer import anonymize_query
from repro.client.expansion import expand_rin
from repro.client.filtering import ClientFilter
from repro.graph.attributed import AttributedGraph
from repro.kauto.avt import AlignmentVertexTable
from repro.matching.match import Match


@dataclass
class ClientOutcome:
    """Final results of one query plus the client-side timings."""

    matches: list[Match]
    expansion_seconds: float
    filter_seconds: float
    candidate_count: int

    @property
    def seconds(self) -> float:
        return self.expansion_seconds + self.filter_seconds


class QueryClient:
    """A client authorized to query ``G`` through the cloud."""

    def __init__(
        self,
        original_graph: AttributedGraph,
        lct: LabelCorrespondenceTable,
        avt: AlignmentVertexTable,
    ):
        self.graph = original_graph
        self.lct = lct
        self.avt = avt

    def prepare_query(self, query: AttributedGraph) -> AttributedGraph:
        """``Q -> Qo``: generalize the query's labels through the LCT."""
        return anonymize_query(query, self.lct)

    def process_answer(
        self,
        query: AttributedGraph,
        matches: list[Match],
        already_expanded: bool,
        limit: int | None = None,
    ) -> ClientOutcome:
        """Algorithm 3: expand ``Rin`` (if needed) and filter against G.

        ``limit`` returns at most that many exact matches (any subset
        of R(Q, G); useful for "find me a few examples" queries).
        """
        if already_expanded:
            candidates = matches
            expansion_seconds = 0.0
        else:
            expansion = expand_rin(matches, self.avt)
            candidates = expansion.matches
            expansion_seconds = expansion.seconds
        filter_result = ClientFilter(self.graph, query).filter(candidates, limit=limit)
        return ClientOutcome(
            matches=filter_result.matches,
            expansion_seconds=expansion_seconds,
            filter_seconds=filter_result.seconds,
            candidate_count=len(candidates),
        )
