"""The query client: anonymize queries, post-process cloud answers.

The client is trusted by the data owner: it holds the original graph
``G``, the private LCT and the AVT.  Its per-query work (Section 4.2.2)
is linear in the number of candidate matches: expand ``Rin`` through
the automorphic functions (unless the cloud already did) and filter
false positives against ``G``.

Each phase emits a span (``client.anonymize`` / ``client.expand`` /
``client.filter``) on the :class:`~repro.obs.Observability` scope
passed in; the :class:`ClientOutcome` timing fields are those spans'
durations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.anonymize.lct import LabelCorrespondenceTable
from repro.anonymize.query_anonymizer import anonymize_query
from repro.client.expansion import expand_rin, expand_rin_table
from repro.client.filtering import ClientFilter
from repro.compat import warn_renamed
from repro.graph.attributed import AttributedGraph
from repro.kauto.avt import AlignmentVertexTable
from repro.matching.match import Match
from repro.matching.table import MatchTable
from repro.obs import Observability, names
from repro.obs.audit import register_live_false_positive_ratio


@dataclass(init=False)
class ClientOutcome:
    """Final results of one query plus the client-side timings.

    ``client_seconds`` (expansion + filtering) replaces the old
    ``seconds`` property, which still works but emits a
    :class:`DeprecationWarning` — the new name says *whose* seconds
    these are, matching ``CloudAnswer.cloud_seconds``.
    """

    matches: list[Match]
    expansion_seconds: float
    filter_seconds: float
    candidate_count: int

    def __init__(
        self,
        matches: list[Match],
        expansion_seconds: float = 0.0,
        filter_seconds: float = 0.0,
        candidate_count: int = 0,
    ) -> None:
        self.matches = matches
        self.expansion_seconds = expansion_seconds
        self.filter_seconds = filter_seconds
        self.candidate_count = candidate_count

    @property
    def client_seconds(self) -> float:
        """Total client-side wall seconds (expansion + filtering)."""
        return self.expansion_seconds + self.filter_seconds

    @property
    def seconds(self) -> float:
        """Deprecated alias of :attr:`client_seconds`."""
        warn_renamed("ClientOutcome.seconds", "ClientOutcome.client_seconds")
        return self.client_seconds


class QueryClient:
    """A client authorized to query ``G`` through the cloud.

    ``obs`` is the client's default observability scope (measure-only
    unless overridden); :class:`~repro.core.system.
    PrivacyPreservingSystem` passes a per-query recording scope to
    :meth:`prepare_query` / :meth:`process_answer` instead.
    """

    def __init__(
        self,
        original_graph: AttributedGraph,
        lct: LabelCorrespondenceTable,
        avt: AlignmentVertexTable,
        obs: Observability | None = None,
    ) -> None:
        self.graph = original_graph
        self.lct = lct
        self.avt = avt
        self.obs = obs if obs is not None else Observability.measuring()
        # export the Algorithm-3 filter effectiveness as a live pull
        # gauge: false_positives / candidates over everything this
        # client has filtered (shows up on /metrics as
        # `privacy_audit_false_positive_ratio_live`).
        register_live_false_positive_ratio(self.obs.metrics)

    def prepare_query(
        self, query: AttributedGraph, obs: Observability | None = None
    ) -> AttributedGraph:
        """``Q -> Qo``: generalize the query's labels through the LCT."""
        if obs is None:
            obs = self.obs
        with obs.tracer.span(names.CLIENT_ANONYMIZE) as span:
            anonymized = anonymize_query(query, self.lct)
            span.set(
                query_vertices=query.vertex_count, query_edges=query.edge_count
            )
        return anonymized

    def process_answer(
        self,
        query: AttributedGraph,
        matches: "list[Match] | MatchTable",
        already_expanded: bool,
        limit: int | None = None,
        obs: Observability | None = None,
    ) -> ClientOutcome:
        """Algorithm 3: expand ``Rin`` (if needed) and filter against G.

        ``matches`` may be the dict-form list or a columnar
        :class:`~repro.matching.table.MatchTable` (what the system's
        serving path decodes off the wire); the columnar form runs the
        tabular expansion/filter kernels and converts only the final
        exact results back to dicts.  Outcomes are identical either
        way.

        ``limit`` returns at most that many exact matches (any subset
        of R(Q, G); useful for "find me a few examples" queries).
        """
        if obs is None:
            obs = self.obs
        tracer = obs.tracer
        candidates: "list[Match] | MatchTable"
        if already_expanded:
            candidates = matches
            expansion_seconds = 0.0
        else:
            with tracer.span(names.CLIENT_EXPAND, rin_size=len(matches)) as span:
                if isinstance(matches, MatchTable):
                    candidates = expand_rin_table(matches, self.avt).table
                else:
                    candidates = expand_rin(matches, self.avt).matches
                span.set(candidates=len(candidates))
            expansion_seconds = span.duration
        with tracer.span(names.CLIENT_FILTER) as span:
            client_filter = ClientFilter(self.graph, query)
            if isinstance(candidates, MatchTable):
                exact = client_filter.filter_table(
                    candidates, limit=limit
                ).table.to_matches()
            else:
                exact = client_filter.filter(candidates, limit=limit).matches
            span.set(
                candidates=len(candidates),
                results=len(exact),
                dropped=len(candidates) - len(exact),
            )
        outcome = ClientOutcome(
            matches=exact,
            expansion_seconds=expansion_seconds,
            filter_seconds=span.duration,
            candidate_count=len(candidates),
        )
        metrics = obs.metrics
        metrics.counter(
            names.M_CANDIDATES,
            help="Candidate matches the client inspected across all queries.",
        ).inc(len(candidates))
        metrics.counter(
            names.M_FALSE_POSITIVES,
            help="Candidates rejected by the client-side filter.",
        ).inc(len(candidates) - len(exact))
        metrics.counter(
            names.M_MATCHES,
            help="Exact matches returned to clients across all queries.",
        ).inc(len(exact))
        metrics.histogram(
            names.M_CLIENT_SECONDS,
            help="Client-side wall seconds per query.",
        ).observe(outcome.client_seconds)
        return outcome
