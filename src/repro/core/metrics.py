"""Metric records for publish-time and query-time experiments.

Field names mirror the quantities the paper reports so the benchmark
harness can print paper-shaped tables directly (see
:mod:`repro.bench.reporting`).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PublishMetrics:
    """One data-owner publish run (Figures 10, 11, 12, 13)."""

    method: str = ""
    k: int = 0
    theta: int = 0
    # timings (seconds)
    lct_seconds: float = 0.0
    gk_seconds: float = 0.0
    go_seconds: float = 0.0
    upload_network_seconds: float = 0.0
    index_seconds: float = 0.0
    # sizes
    original_vertices: int = 0
    original_edges: int = 0
    gk_vertices: int = 0
    gk_edges: int = 0
    uploaded_vertices: int = 0
    uploaded_edges: int = 0
    noise_vertices: int = 0
    noise_edges: int = 0
    upload_bytes: int = 0
    index_bytes: int = 0

    @property
    def generation_seconds(self) -> float:
        """Time to generate ``Gk`` incl. label generalization (Fig 10)."""
        return self.lct_seconds + self.gk_seconds


@dataclass
class QueryMetrics:
    """One end-to-end query (Figures 14-22, 31-34)."""

    method: str = ""
    k: int = 0
    query_edges: int = 0
    # cloud side
    cloud_seconds: float = 0.0
    decomposition_seconds: float = 0.0
    star_matching_seconds: float = 0.0
    join_seconds: float = 0.0
    rs_size: int = 0
    rin_size: int = 0
    # network
    query_bytes: int = 0
    answer_bytes: int = 0
    network_seconds: float = 0.0
    # client side
    client_seconds: float = 0.0
    expansion_seconds: float = 0.0
    filter_seconds: float = 0.0
    candidate_count: int = 0
    result_count: int = 0

    @property
    def total_seconds(self) -> float:
        """End-to-end: cloud + network + client (Figure 22)."""
        return self.cloud_seconds + self.network_seconds + self.client_seconds


@dataclass
class BatchMetrics:
    """One ``query_batch`` run: per-query records + batch aggregates.

    ``wall_seconds`` is the real elapsed time of the whole batch — with
    a worker pool it is *less* than the sum of per-query times, and
    ``throughput_qps`` / ``speedup_vs(serial_wall)`` quantify by how
    much.  Cache counters are deltas over the batch, measured on the
    shared (locked) star cache, i.e. the hit rate *under contention*;
    with the process backend the children own the cache copies, so the
    parent-side delta reads zero and the field is reported as ``None``.
    """

    backend: str = "thread"
    worker_count: int = 1
    wall_seconds: float = 0.0
    per_query: list[QueryMetrics] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    cache_shared: bool = True

    @property
    def query_count(self) -> int:
        return len(self.per_query)

    @property
    def throughput_qps(self) -> float:
        """Completed queries per second of wall time."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.query_count / self.wall_seconds

    @property
    def cache_hit_rate(self) -> float | None:
        """Batch-wide hit rate on the shared cache (None if not shared)."""
        if not self.cache_shared:
            return None
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def mean_query_seconds(self) -> float:
        if not self.per_query:
            return 0.0
        return sum(q.total_seconds for q in self.per_query) / len(self.per_query)

    @property
    def cloud_seconds_total(self) -> float:
        return sum(q.cloud_seconds for q in self.per_query)

    def speedup_vs(self, serial_wall_seconds: float) -> float:
        """How much faster than a serial loop that took ``serial_wall_seconds``."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return serial_wall_seconds / self.wall_seconds

    def aggregated(self) -> "AggregatedMetrics":
        """The batch as an :class:`AggregatedMetrics` (mean-based views)."""
        aggregate = AggregatedMetrics()
        for run in self.per_query:
            aggregate.add(run)
        return aggregate


@dataclass
class AggregatedMetrics:
    """Mean of several :class:`QueryMetrics` (the paper averages 100 queries)."""

    runs: list[QueryMetrics] = field(default_factory=list)
    # queries skipped because they tripped the cloud's result budget
    skipped: int = 0

    def add(self, metrics: QueryMetrics) -> None:
        self.runs.append(metrics)

    def _mean(self, attr: str) -> float:
        if not self.runs:
            return 0.0
        return sum(getattr(run, attr) for run in self.runs) / len(self.runs)

    @property
    def cloud_seconds(self) -> float:
        return self._mean("cloud_seconds")

    @property
    def star_matching_seconds(self) -> float:
        return self._mean("star_matching_seconds")

    @property
    def join_seconds(self) -> float:
        return self._mean("join_seconds")

    @property
    def client_seconds(self) -> float:
        return self._mean("client_seconds")

    @property
    def network_seconds(self) -> float:
        return self._mean("network_seconds")

    @property
    def total_seconds(self) -> float:
        return self._mean("total_seconds")

    @property
    def rs_size(self) -> float:
        return self._mean("rs_size")

    @property
    def rin_size(self) -> float:
        return self._mean("rin_size")

    @property
    def answer_bytes(self) -> float:
        return self._mean("answer_bytes")

    @property
    def result_count(self) -> float:
        return self._mean("result_count")
