"""Historical home of the metric records — now aliases into ``repro.obs``.

The four dataclasses moved to :mod:`repro.obs.views`, where they are
computed as views over the observability layer's spans and counters
instead of being hand-threaded through the call paths.  This module
stays importable forever (no deprecation warning: the names did not
change, only the implementation's home), so ``from repro.core.metrics
import QueryMetrics`` keeps working verbatim.
"""

from __future__ import annotations

from repro.obs.views import (
    AggregatedMetrics,
    BatchMetrics,
    PublishMetrics,
    QueryMetrics,
    format_percent,
)

__all__ = [
    "PublishMetrics",
    "QueryMetrics",
    "BatchMetrics",
    "AggregatedMetrics",
    "format_percent",
]
