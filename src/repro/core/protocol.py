"""Client/cloud protocol with byte-accurate network accounting.

The paper reports communication overhead (Figure 33: network
transmission time) as a first-class cost.  Since this reproduction runs
client and cloud in one process, the wire is simulated: every message
is actually serialized to JSON bytes, and a :class:`NetworkChannel`
converts byte counts into transmission time with a configurable
bandwidth/latency model (defaults approximate the paper's LAN-to-Azure
setting: results of a few KiB transmit in single-digit milliseconds).
"""

from __future__ import annotations

import json
import struct
import threading
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import GraphError, ProtocolError
from repro.graph.attributed import AttributedGraph
from repro.graph.io import graph_from_dict, graph_to_dict
from repro.kauto.avt import AlignmentVertexTable
from repro.matching.match import Match, matches_to_rows, rows_to_matches
from repro.matching.star import Star
from repro.matching.table import MatchTable
from repro.obs import Observability, names
from repro.obs.tracing import Trace

DEFAULT_BANDWIDTH_BYTES_PER_SEC = 1_000_000  # ~1 MB/s effective throughput
DEFAULT_LATENCY_SECONDS = 0.001

#: Upper bound on a serialized remote trace riding back on an answer
#: frame; a gateway drops the trace (never the answer) past this.
MAX_TRACE_PAYLOAD = 4 * 1024 * 1024

#: The unified malformed-payload envelope: everything a hostile or
#: truncated message can raise out of ``json.loads`` + the field
#: accessors + the graph/AVT/table constructors.  Every ``decode_*``
#: traps exactly this tuple and re-raises :class:`ProtocolError`, so a
#: bad shard reply (or any other frame) can never surface as a raw
#: ``TypeError``/``AttributeError`` in the engine.
_DECODE_ERRORS = (KeyError, ValueError, TypeError, AttributeError, GraphError)


@dataclass
class TransferRecord:
    """One message on the simulated wire."""

    direction: str  # "upload", "query", "answer"
    payload_bytes: int
    seconds: float


@dataclass
class NetworkChannel:
    """Byte counter + linear latency/bandwidth cost model.

    :meth:`transmit` optionally reports into an
    :class:`~repro.obs.Observability` scope: one ``network.<direction>``
    span per message (attributes ``bytes`` and ``simulated_seconds`` —
    the *cost-model* time, distinct from the span's negligible wall
    duration) and a ``network_bytes_total{direction=...}`` counter.
    """

    bandwidth_bytes_per_sec: float = DEFAULT_BANDWIDTH_BYTES_PER_SEC
    latency_seconds: float = DEFAULT_LATENCY_SECONDS
    transfers: list[TransferRecord] = field(default_factory=list)  #: guarded by _lock
    # R3 (lock discipline): query_batch workers transmit concurrently,
    # and shard scatter/gather adds one message per shard per query; an
    # unlocked append racing reset()/total_bytes() mid-batch produced
    # torn accounting.  All transfers-ledger access goes through _lock.
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )
    # scope() bookkeeping: the parent this child merges into on close,
    # and whether the merge already happened (close is idempotent).
    _parent: "NetworkChannel | None" = field(
        default=None, repr=False, compare=False
    )
    _closed: bool = field(default=False, repr=False, compare=False)  #: guarded by _lock

    def transmit(
        self, direction: str, payload: bytes, obs: Observability | None = None
    ) -> float:
        """Record a message; returns the simulated transmission time."""
        seconds = self.latency_seconds + len(payload) / self.bandwidth_bytes_per_sec
        with self._lock:
            self.transfers.append(TransferRecord(direction, len(payload), seconds))
        if obs is not None:
            # R2: span names come from the canonical taxonomy, never
            # from runtime data (the direction is validated en route).
            span_name = names.NETWORK_SPANS[direction]
            with obs.tracer.span(span_name) as span:
                span.set(bytes=len(payload), simulated_seconds=seconds)
            obs.metrics.counter(
                names.M_NETWORK_BYTES,
                help="Bytes on the simulated wire, by message direction.",
            ).inc(len(payload), direction=direction)
        return seconds

    def total_bytes(self, direction: str | None = None) -> int:
        with self._lock:
            return sum(
                t.payload_bytes
                for t in self.transfers
                if direction is None or t.direction == direction
            )

    def total_seconds(self, direction: str | None = None) -> float:
        with self._lock:
            return sum(
                t.seconds
                for t in self.transfers
                if direction is None or t.direction == direction
            )

    def reset(self) -> None:
        with self._lock:
            self.transfers.clear()

    # -- per-connection scoping -----------------------------------------
    def scope(self) -> "NetworkChannel":
        """An isolated child channel that merges into this one on close.

        Concurrent gateway connections each transmit on their own child
        so per-connection accounting never interleaves in one shared
        ``transfers`` list; :meth:`close` folds the child's records
        into the parent exactly once, keeping the parent's lifetime
        totals complete.  Children share the parent's cost model.
        """
        return NetworkChannel(
            bandwidth_bytes_per_sec=self.bandwidth_bytes_per_sec,
            latency_seconds=self.latency_seconds,
            _parent=self,
        )

    def _absorb(self, records: list[TransferRecord]) -> None:
        """Fold a closed child's transfer records into this ledger."""
        with self._lock:
            self.transfers.extend(records)

    def close(self) -> None:
        """Merge this scope's transfers into its parent (idempotent).

        A no-op for root channels and for already-closed scopes; the
        child stays readable after close (its own ledger is kept), it
        just stops being mergeable twice.
        """
        with self._lock:
            if self._parent is None or self._closed:
                return
            self._closed = True
            records = list(self.transfers)
        self._parent._absorb(records)

    def __enter__(self) -> "NetworkChannel":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# message encodings
# ----------------------------------------------------------------------
def encode_upload(graph: AttributedGraph, avt: AlignmentVertexTable) -> bytes:
    """The data owner's one-time upload: published graph + AVT."""
    return json.dumps(
        {"graph": graph_to_dict(graph), "avt": avt.to_dict()},
        sort_keys=True,
    ).encode("utf-8")


def decode_upload(payload: bytes) -> tuple[AttributedGraph, AlignmentVertexTable]:
    try:
        data = json.loads(payload.decode("utf-8"))
        return graph_from_dict(data["graph"]), AlignmentVertexTable.from_dict(
            data["avt"]
        )
    except _DECODE_ERRORS as exc:
        raise ProtocolError(f"malformed upload message: {exc}") from exc


def encode_query(query: AttributedGraph) -> bytes:
    """The anonymized query ``Qo``."""
    return json.dumps(graph_to_dict(query), sort_keys=True).encode("utf-8")


def decode_query(payload: bytes) -> AttributedGraph:
    try:
        return graph_from_dict(json.loads(payload.decode("utf-8")))
    except _DECODE_ERRORS as exc:
        raise ProtocolError(f"malformed query message: {exc}") from exc


def encode_answer(
    matches: list[Match],
    query_order: list[int],
    expanded: bool,
) -> bytes:
    """The cloud's answer: ``Rin`` rows (or full candidates for BAS)."""
    return json.dumps(
        {
            "order": query_order,
            "rows": matches_to_rows(matches, query_order),
            "expanded": expanded,
        },
        separators=(",", ":"),
    ).encode("utf-8")


def decode_answer(payload: bytes) -> tuple[list[Match], bool]:
    try:
        data = json.loads(payload.decode("utf-8"))
        matches = rows_to_matches(data["rows"], data["order"])
        return matches, bool(data["expanded"])
    except _DECODE_ERRORS as exc:
        raise ProtocolError(f"malformed answer message: {exc}") from exc


def encode_answer_table(
    table: MatchTable,
    query_order: list[int],
    expanded: bool,
) -> bytes:
    """Columnar :func:`encode_answer`: frame a result table directly.

    The payload is **byte-identical** to
    ``encode_answer(table.to_matches(), query_order, expanded)`` — the
    rows are already tabular, so the dict detour (and its per-match
    key lookups) is skipped; the columns are just re-ordered to
    ``query_order``.
    """
    return json.dumps(
        {
            "order": query_order,
            "rows": table.project_rows(query_order),
            "expanded": expanded,
        },
        separators=(",", ":"),
    ).encode("utf-8")


def decode_answer_table(payload: bytes) -> tuple[MatchTable, bool]:
    """Columnar :func:`decode_answer`: the rows stay tabular.

    The table's schema is the message's ``order``; width-mismatched
    rows are a :class:`ProtocolError` (the dict decoder silently
    truncated them — tabular framing is stricter by construction).
    """
    try:
        data = json.loads(payload.decode("utf-8"))
        table = MatchTable.from_rows(data["order"], data["rows"])
        return table, bool(data["expanded"])
    except _DECODE_ERRORS as exc:
        raise ProtocolError(f"malformed answer message: {exc}") from exc


def roundtrip_answer_size(matches: list[Match], query_order: list[int]) -> int:
    """Byte size of an answer without keeping the encoding around."""
    return len(encode_answer(matches, query_order, expanded=False))


# ----------------------------------------------------------------------
# batched messages (one wire round-trip for a whole workload)
# ----------------------------------------------------------------------
def encode_query_batch(queries: list[AttributedGraph]) -> bytes:
    """A multi-query payload: the client ships a workload in one message.

    The batch engine (``query_batch``) answers its elements
    concurrently; framing them together saves per-message latency on
    the simulated wire and keeps the batch atomic for accounting.
    """
    return json.dumps(
        {"queries": [graph_to_dict(query) for query in queries]},
        sort_keys=True,
    ).encode("utf-8")


def decode_query_batch(payload: bytes) -> list[AttributedGraph]:
    try:
        data = json.loads(payload.decode("utf-8"))
        queries = data["queries"]
        if not isinstance(queries, list):
            raise ValueError("'queries' must be a list")
        return [graph_from_dict(entry) for entry in queries]
    except _DECODE_ERRORS as exc:
        raise ProtocolError(f"malformed query batch message: {exc}") from exc


def encode_answer_batch(
    answers: list[tuple[list[Match], list[int], bool]],
) -> bytes:
    """Batched answers: one ``(matches, query_order, expanded)`` per query."""
    return json.dumps(
        {
            "answers": [
                {
                    "order": order,
                    "rows": matches_to_rows(matches, order),
                    "expanded": expanded,
                }
                for matches, order, expanded in answers
            ]
        },
        separators=(",", ":"),
    ).encode("utf-8")


def decode_answer_batch(payload: bytes) -> list[tuple[list[Match], bool]]:
    try:
        data = json.loads(payload.decode("utf-8"))
        answers = data["answers"]
        if not isinstance(answers, list):
            raise ValueError("'answers' must be a list")
        return [
            (rows_to_matches(entry["rows"], entry["order"]), bool(entry["expanded"]))
            for entry in answers
        ]
    except _DECODE_ERRORS as exc:
        raise ProtocolError(f"malformed answer batch message: {exc}") from exc


# ----------------------------------------------------------------------
# trace context (cross-process span propagation)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceContext:
    """The compact trace context carried across process boundaries.

    A request frame optionally embeds one so the remote side (gateway,
    shard server, fork child) can stamp its spans with the caller's
    ``query_id`` and record which caller span logically encloses its
    work.  ``parent_span_id`` is only meaningful within the *caller's*
    id space — remote tracers never adopt it as a literal parent id
    (their own counters would collide with it); stitching happens on
    the caller via :meth:`repro.obs.tracing.Tracer.absorb`.
    """

    query_id: str
    parent_span_id: int = 0
    sampled: bool = True

    def to_doc(self) -> dict[str, Any]:
        """The wire document: short keys, deterministic order."""
        return {
            "p": self.parent_span_id,
            "q": self.query_id,
            "s": 1 if self.sampled else 0,
        }

    @classmethod
    def from_doc(cls, doc: dict[str, Any]) -> "TraceContext":
        query_id = doc["q"]
        if not isinstance(query_id, str):
            raise ValueError("'q' must be a string")
        parent_span_id = doc["p"]
        if isinstance(parent_span_id, bool) or not isinstance(
            parent_span_id, int
        ):
            raise ValueError("'p' must be an integer")
        if parent_span_id < 0:
            raise ValueError("'p' must be >= 0")
        sampled = doc.get("s", 1)
        if sampled not in (0, 1, True, False):
            raise ValueError("'s' must be 0 or 1")
        return cls(
            query_id=query_id,
            parent_span_id=parent_span_id,
            sampled=bool(sampled),
        )


def encode_trace_context(context: TraceContext) -> bytes:
    """Serialize a :class:`TraceContext` as a standalone payload."""
    return json.dumps(context.to_doc(), sort_keys=True).encode("utf-8")


def decode_trace_context(payload: bytes) -> TraceContext:
    try:
        return TraceContext.from_doc(json.loads(payload.decode("utf-8")))
    except _DECODE_ERRORS as exc:
        raise ProtocolError(f"malformed trace context message: {exc}") from exc


def _context_from_field(data: dict[str, Any]) -> TraceContext | None:
    """Decode the optional embedded ``ctx`` field of a request frame.

    Raises the raw field errors (the caller's envelope wraps them), so
    a corrupted context fails the whole frame instead of silently
    degrading to an untraced request.
    """
    doc = data.get("ctx")
    if doc is None:
        return None
    return TraceContext.from_doc(doc)


def _trace_from_field(data: dict[str, Any]) -> Trace | None:
    """Decode the optional embedded ``trace`` field of an answer frame."""
    doc = data.get("trace")
    if doc is None:
        return None
    return Trace.from_dict(doc)


# ----------------------------------------------------------------------
# shard messages (coordinator <-> shard scatter/gather)
# ----------------------------------------------------------------------
def encode_shard_request(
    query: AttributedGraph,
    stars: list[Star],
    *,
    context: TraceContext | None = None,
) -> bytes:
    """A scatter frame: the anonymized query plus its decomposition.

    The coordinator decomposes once and ships the same star plan to
    every shard; each shard matches all stars against its local
    centers, so the frame carries no shard-specific state.  ``context``
    optionally propagates the caller's trace context (the ``ctx`` key
    is absent when ``None``, keeping untraced frames byte-identical to
    the pre-context encoding).
    """
    doc: dict[str, Any] = {
        "query": graph_to_dict(query),
        "stars": [
            {"center": star.center, "leaves": list(star.leaves)}
            for star in stars
        ],
    }
    if context is not None:
        doc["ctx"] = context.to_doc()
    return json.dumps(doc, sort_keys=True).encode("utf-8")


def decode_shard_request(
    payload: bytes,
) -> tuple[AttributedGraph, list[Star], TraceContext | None]:
    try:
        data = json.loads(payload.decode("utf-8"))
        entries = data["stars"]
        if not isinstance(entries, list):
            raise ValueError("'stars' must be a list")
        stars = [
            Star(
                center=int(entry["center"]),
                leaves=tuple(int(leaf) for leaf in entry["leaves"]),
            )
            for entry in entries
        ]
        return graph_from_dict(data["query"]), stars, _context_from_field(data)
    except _DECODE_ERRORS as exc:
        raise ProtocolError(f"malformed shard request message: {exc}") from exc


def encode_shard_tables(tables: dict[int, MatchTable]) -> bytes:
    """A gather frame: one shard's star tables, keyed by star center.

    Each table ships with its positional schema so the coordinator can
    merge per-shard rows without re-deriving column order; rows stay
    tabular end to end (the shard payload is PR 5's columnar wire
    format, one frame per shard).
    """
    return json.dumps(
        {
            "tables": [
                {
                    "center": center,
                    "schema": list(table.schema),
                    "rows": table.rows,
                }
                for center, table in tables.items()
            ]
        },
        separators=(",", ":"),
    ).encode("utf-8")


def decode_shard_tables(payload: bytes) -> dict[int, MatchTable]:
    try:
        data = json.loads(payload.decode("utf-8"))
        entries = data["tables"]
        if not isinstance(entries, list):
            raise ValueError("'tables' must be a list")
        out: dict[int, MatchTable] = {}
        for entry in entries:
            table = MatchTable.from_rows(entry["schema"], entry["rows"])
            out[int(entry["center"])] = table
        return out
    except _DECODE_ERRORS as exc:
        raise ProtocolError(f"malformed shard tables message: {exc}") from exc


# ----------------------------------------------------------------------
# gateway framing (length-prefixed binary envelope)
# ----------------------------------------------------------------------
# The serving gateway (repro.gateway) multiplexes many requests over
# one TCP connection, so messages get a self-delimiting envelope:
#
#     +-------+------+-----------------+----------------+
#     | magic | kind | payload length  | payload bytes  |
#     | 4s    | B    | I (big-endian)  | length bytes   |
#     +-------+------+-----------------+----------------+
#
# The payload of every kind is one of the JSON codecs below; the
# envelope itself stays binary so a reader can frame without parsing.

FRAME_MAGIC = b"RPG1"
FRAME_HEADER = struct.Struct(">4sBI")
#: Frame kind -> wire code.  ``hello`` opens a connection (client
#: identity + auth token), ``request`` carries anonymized queries,
#: ``answer``/``reject`` are the two terminal responses per request,
#: and ``bye`` closes the connection cleanly.
FRAME_KINDS = {"hello": 1, "request": 2, "answer": 3, "reject": 4, "bye": 5}
FRAME_CODES = {code: kind for kind, code in FRAME_KINDS.items()}
#: Upper bound on a single frame payload; a hostile length prefix must
#: not make the reader allocate unbounded buffers.
MAX_FRAME_PAYLOAD = 64 * 1024 * 1024


def encode_frame(kind: str, payload: bytes) -> bytes:
    """Wrap ``payload`` in the length-prefixed gateway envelope."""
    try:
        code = FRAME_KINDS[kind]
    except KeyError:
        raise ProtocolError(f"unknown gateway frame kind: {kind!r}") from None
    if len(payload) > MAX_FRAME_PAYLOAD:
        raise ProtocolError(
            f"gateway frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_PAYLOAD}-byte cap"
        )
    return FRAME_HEADER.pack(FRAME_MAGIC, code, len(payload)) + payload


def decode_frame_header(header: bytes) -> tuple[str, int]:
    """Parse an envelope header into ``(kind, payload_length)``."""
    try:
        if len(header) != FRAME_HEADER.size:
            raise ValueError(
                f"frame header must be {FRAME_HEADER.size} bytes, "
                f"got {len(header)}"
            )
        magic, code, length = FRAME_HEADER.unpack(header)
        if magic != FRAME_MAGIC:
            raise ValueError(f"bad frame magic: {magic!r}")
        if code not in FRAME_CODES:
            raise ValueError(f"unknown frame kind code: {code}")
        if length > MAX_FRAME_PAYLOAD:
            raise ValueError(
                f"frame payload length {length} exceeds the "
                f"{MAX_FRAME_PAYLOAD}-byte cap"
            )
        return FRAME_CODES[code], length
    except _DECODE_ERRORS as exc:
        raise ProtocolError(f"malformed gateway frame header: {exc}") from exc


def decode_frame(data: bytes) -> tuple[str, bytes, bytes]:
    """Split one complete frame off ``data``: ``(kind, payload, rest)``.

    The sans-I/O counterpart of the gateway's stream reader, used by
    tests and the sync client; raises :class:`ProtocolError` when the
    buffer holds less than one whole frame.
    """
    kind, length = decode_frame_header(data[: FRAME_HEADER.size])
    end = FRAME_HEADER.size + length
    if len(data) < end:
        raise ProtocolError(
            f"malformed gateway frame: truncated payload "
            f"({len(data) - FRAME_HEADER.size} of {length} bytes)"
        )
    return kind, data[FRAME_HEADER.size : end], data[end:]


# ----------------------------------------------------------------------
# gateway frame payloads
# ----------------------------------------------------------------------
def encode_gateway_hello(client_id: str, token: str = "") -> bytes:
    """The connection opener: who is calling and with what credential."""
    return json.dumps(
        {"client_id": client_id, "token": token}, sort_keys=True
    ).encode("utf-8")


def decode_gateway_hello(payload: bytes) -> tuple[str, str]:
    try:
        data = json.loads(payload.decode("utf-8"))
        client_id = data["client_id"]
        if not isinstance(client_id, str) or not client_id:
            raise ValueError("'client_id' must be a non-empty string")
        token = data.get("token", "")
        if not isinstance(token, str):
            raise ValueError("'token' must be a string")
        return client_id, token
    except _DECODE_ERRORS as exc:
        raise ProtocolError(f"malformed gateway hello message: {exc}") from exc


def encode_gateway_request(
    request_id: str,
    queries: list[AttributedGraph],
    *,
    context: TraceContext | None = None,
) -> bytes:
    """One request: anonymized queries answered as a unit.

    ``context`` optionally propagates the client's trace context (the
    ``ctx`` key is absent when ``None``, so requests from pre-context
    clients stay byte-identical).
    """
    doc: dict[str, Any] = {
        "id": request_id,
        "queries": [graph_to_dict(query) for query in queries],
    }
    if context is not None:
        doc["ctx"] = context.to_doc()
    return json.dumps(doc, sort_keys=True).encode("utf-8")


def decode_gateway_request(
    payload: bytes,
) -> tuple[str, list[AttributedGraph], TraceContext | None]:
    try:
        data = json.loads(payload.decode("utf-8"))
        request_id = data["id"]
        if not isinstance(request_id, str) or not request_id:
            raise ValueError("'id' must be a non-empty string")
        queries = data["queries"]
        if not isinstance(queries, list) or not queries:
            raise ValueError("'queries' must be a non-empty list")
        return (
            request_id,
            [graph_from_dict(entry) for entry in queries],
            _context_from_field(data),
        )
    except _DECODE_ERRORS as exc:
        raise ProtocolError(f"malformed gateway request message: {exc}") from exc


def encode_gateway_answer(
    request_id: str,
    answers: list[tuple[MatchTable, list[int], bool]],
    *,
    trace: Trace | None = None,
) -> bytes:
    """Answers for one request, one table per query.

    Each entry has exactly the :func:`encode_answer_table` document
    shape (``order``/``rows``/``expanded``), so a gateway answer is
    byte-for-byte the in-process wire encoding wrapped in a request
    envelope — the bit-identity tests compare at this layer.  ``trace``
    optionally carries the gateway-side trace back to the client (the
    key is absent when ``None``, so untraced answers keep the exact
    pre-trace bytes).
    """
    doc: dict[str, Any] = {
        "id": request_id,
        "answers": [
            {
                "order": order,
                "rows": table.project_rows(order),
                "expanded": expanded,
            }
            for table, order, expanded in answers
        ],
    }
    if trace is not None:
        doc["trace"] = trace.to_dict()
    return json.dumps(doc, separators=(",", ":")).encode("utf-8")


def decode_gateway_answer(
    payload: bytes,
) -> tuple[str, list[tuple[MatchTable, bool]], Trace | None]:
    try:
        data = json.loads(payload.decode("utf-8"))
        request_id = data["id"]
        if not isinstance(request_id, str):
            raise ValueError("'id' must be a string")
        answers = data["answers"]
        if not isinstance(answers, list):
            raise ValueError("'answers' must be a list")
        decoded = [
            (
                MatchTable.from_rows(entry["order"], entry["rows"]),
                bool(entry["expanded"]),
            )
            for entry in answers
        ]
        return request_id, decoded, _trace_from_field(data)
    except _DECODE_ERRORS as exc:
        raise ProtocolError(f"malformed gateway answer message: {exc}") from exc


def encode_gateway_reject(request_id: str, code: str, message: str) -> bytes:
    """A typed refusal: load shedding or policy, never a silent drop."""
    return json.dumps(
        {"id": request_id, "code": code, "message": message},
        sort_keys=True,
    ).encode("utf-8")


def decode_gateway_reject(payload: bytes) -> tuple[str, str, str]:
    try:
        data = json.loads(payload.decode("utf-8"))
        request_id = data["id"]
        if not isinstance(request_id, str):
            raise ValueError("'id' must be a string")
        code = data["code"]
        if not isinstance(code, str) or not code:
            raise ValueError("'code' must be a non-empty string")
        message = data["message"]
        if not isinstance(message, str):
            raise ValueError("'message' must be a string")
        return request_id, code, message
    except _DECODE_ERRORS as exc:
        raise ProtocolError(f"malformed gateway reject message: {exc}") from exc
