"""Client/cloud protocol with byte-accurate network accounting.

The paper reports communication overhead (Figure 33: network
transmission time) as a first-class cost.  Since this reproduction runs
client and cloud in one process, the wire is simulated: every message
is actually serialized to JSON bytes, and a :class:`NetworkChannel`
converts byte counts into transmission time with a configurable
bandwidth/latency model (defaults approximate the paper's LAN-to-Azure
setting: results of a few KiB transmit in single-digit milliseconds).
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field

from repro.exceptions import GraphError, ProtocolError
from repro.graph.attributed import AttributedGraph
from repro.graph.io import graph_from_dict, graph_to_dict
from repro.kauto.avt import AlignmentVertexTable
from repro.matching.match import Match, matches_to_rows, rows_to_matches
from repro.matching.star import Star
from repro.matching.table import MatchTable
from repro.obs import Observability, names

DEFAULT_BANDWIDTH_BYTES_PER_SEC = 1_000_000  # ~1 MB/s effective throughput
DEFAULT_LATENCY_SECONDS = 0.001

#: The unified malformed-payload envelope: everything a hostile or
#: truncated message can raise out of ``json.loads`` + the field
#: accessors + the graph/AVT/table constructors.  Every ``decode_*``
#: traps exactly this tuple and re-raises :class:`ProtocolError`, so a
#: bad shard reply (or any other frame) can never surface as a raw
#: ``TypeError``/``AttributeError`` in the engine.
_DECODE_ERRORS = (KeyError, ValueError, TypeError, AttributeError, GraphError)


@dataclass
class TransferRecord:
    """One message on the simulated wire."""

    direction: str  # "upload", "query", "answer"
    payload_bytes: int
    seconds: float


@dataclass
class NetworkChannel:
    """Byte counter + linear latency/bandwidth cost model.

    :meth:`transmit` optionally reports into an
    :class:`~repro.obs.Observability` scope: one ``network.<direction>``
    span per message (attributes ``bytes`` and ``simulated_seconds`` —
    the *cost-model* time, distinct from the span's negligible wall
    duration) and a ``network_bytes_total{direction=...}`` counter.
    """

    bandwidth_bytes_per_sec: float = DEFAULT_BANDWIDTH_BYTES_PER_SEC
    latency_seconds: float = DEFAULT_LATENCY_SECONDS
    transfers: list[TransferRecord] = field(default_factory=list)  #: guarded by _lock
    # R3 (lock discipline): query_batch workers transmit concurrently,
    # and shard scatter/gather adds one message per shard per query; an
    # unlocked append racing reset()/total_bytes() mid-batch produced
    # torn accounting.  All transfers-ledger access goes through _lock.
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def transmit(
        self, direction: str, payload: bytes, obs: Observability | None = None
    ) -> float:
        """Record a message; returns the simulated transmission time."""
        seconds = self.latency_seconds + len(payload) / self.bandwidth_bytes_per_sec
        with self._lock:
            self.transfers.append(TransferRecord(direction, len(payload), seconds))
        if obs is not None:
            # R2: span names come from the canonical taxonomy, never
            # from runtime data (the direction is validated en route).
            span_name = names.NETWORK_SPANS[direction]
            with obs.tracer.span(span_name) as span:
                span.set(bytes=len(payload), simulated_seconds=seconds)
            obs.metrics.counter(
                names.M_NETWORK_BYTES,
                help="Bytes on the simulated wire, by message direction.",
            ).inc(len(payload), direction=direction)
        return seconds

    def total_bytes(self, direction: str | None = None) -> int:
        with self._lock:
            return sum(
                t.payload_bytes
                for t in self.transfers
                if direction is None or t.direction == direction
            )

    def total_seconds(self, direction: str | None = None) -> float:
        with self._lock:
            return sum(
                t.seconds
                for t in self.transfers
                if direction is None or t.direction == direction
            )

    def reset(self) -> None:
        with self._lock:
            self.transfers.clear()


# ----------------------------------------------------------------------
# message encodings
# ----------------------------------------------------------------------
def encode_upload(graph: AttributedGraph, avt: AlignmentVertexTable) -> bytes:
    """The data owner's one-time upload: published graph + AVT."""
    return json.dumps(
        {"graph": graph_to_dict(graph), "avt": avt.to_dict()},
        sort_keys=True,
    ).encode("utf-8")


def decode_upload(payload: bytes) -> tuple[AttributedGraph, AlignmentVertexTable]:
    try:
        data = json.loads(payload.decode("utf-8"))
        return graph_from_dict(data["graph"]), AlignmentVertexTable.from_dict(
            data["avt"]
        )
    except _DECODE_ERRORS as exc:
        raise ProtocolError(f"malformed upload message: {exc}") from exc


def encode_query(query: AttributedGraph) -> bytes:
    """The anonymized query ``Qo``."""
    return json.dumps(graph_to_dict(query), sort_keys=True).encode("utf-8")


def decode_query(payload: bytes) -> AttributedGraph:
    try:
        return graph_from_dict(json.loads(payload.decode("utf-8")))
    except _DECODE_ERRORS as exc:
        raise ProtocolError(f"malformed query message: {exc}") from exc


def encode_answer(
    matches: list[Match],
    query_order: list[int],
    expanded: bool,
) -> bytes:
    """The cloud's answer: ``Rin`` rows (or full candidates for BAS)."""
    return json.dumps(
        {
            "order": query_order,
            "rows": matches_to_rows(matches, query_order),
            "expanded": expanded,
        },
        separators=(",", ":"),
    ).encode("utf-8")


def decode_answer(payload: bytes) -> tuple[list[Match], bool]:
    try:
        data = json.loads(payload.decode("utf-8"))
        matches = rows_to_matches(data["rows"], data["order"])
        return matches, bool(data["expanded"])
    except _DECODE_ERRORS as exc:
        raise ProtocolError(f"malformed answer message: {exc}") from exc


def encode_answer_table(
    table: MatchTable,
    query_order: list[int],
    expanded: bool,
) -> bytes:
    """Columnar :func:`encode_answer`: frame a result table directly.

    The payload is **byte-identical** to
    ``encode_answer(table.to_matches(), query_order, expanded)`` — the
    rows are already tabular, so the dict detour (and its per-match
    key lookups) is skipped; the columns are just re-ordered to
    ``query_order``.
    """
    return json.dumps(
        {
            "order": query_order,
            "rows": table.project_rows(query_order),
            "expanded": expanded,
        },
        separators=(",", ":"),
    ).encode("utf-8")


def decode_answer_table(payload: bytes) -> tuple[MatchTable, bool]:
    """Columnar :func:`decode_answer`: the rows stay tabular.

    The table's schema is the message's ``order``; width-mismatched
    rows are a :class:`ProtocolError` (the dict decoder silently
    truncated them — tabular framing is stricter by construction).
    """
    try:
        data = json.loads(payload.decode("utf-8"))
        table = MatchTable.from_rows(data["order"], data["rows"])
        return table, bool(data["expanded"])
    except _DECODE_ERRORS as exc:
        raise ProtocolError(f"malformed answer message: {exc}") from exc


def roundtrip_answer_size(matches: list[Match], query_order: list[int]) -> int:
    """Byte size of an answer without keeping the encoding around."""
    return len(encode_answer(matches, query_order, expanded=False))


# ----------------------------------------------------------------------
# batched messages (one wire round-trip for a whole workload)
# ----------------------------------------------------------------------
def encode_query_batch(queries: list[AttributedGraph]) -> bytes:
    """A multi-query payload: the client ships a workload in one message.

    The batch engine (``query_batch``) answers its elements
    concurrently; framing them together saves per-message latency on
    the simulated wire and keeps the batch atomic for accounting.
    """
    return json.dumps(
        {"queries": [graph_to_dict(query) for query in queries]},
        sort_keys=True,
    ).encode("utf-8")


def decode_query_batch(payload: bytes) -> list[AttributedGraph]:
    try:
        data = json.loads(payload.decode("utf-8"))
        queries = data["queries"]
        if not isinstance(queries, list):
            raise ValueError("'queries' must be a list")
        return [graph_from_dict(entry) for entry in queries]
    except _DECODE_ERRORS as exc:
        raise ProtocolError(f"malformed query batch message: {exc}") from exc


def encode_answer_batch(
    answers: list[tuple[list[Match], list[int], bool]],
) -> bytes:
    """Batched answers: one ``(matches, query_order, expanded)`` per query."""
    return json.dumps(
        {
            "answers": [
                {
                    "order": order,
                    "rows": matches_to_rows(matches, order),
                    "expanded": expanded,
                }
                for matches, order, expanded in answers
            ]
        },
        separators=(",", ":"),
    ).encode("utf-8")


def decode_answer_batch(payload: bytes) -> list[tuple[list[Match], bool]]:
    try:
        data = json.loads(payload.decode("utf-8"))
        answers = data["answers"]
        if not isinstance(answers, list):
            raise ValueError("'answers' must be a list")
        return [
            (rows_to_matches(entry["rows"], entry["order"]), bool(entry["expanded"]))
            for entry in answers
        ]
    except _DECODE_ERRORS as exc:
        raise ProtocolError(f"malformed answer batch message: {exc}") from exc


# ----------------------------------------------------------------------
# shard messages (coordinator <-> shard scatter/gather)
# ----------------------------------------------------------------------
def encode_shard_request(query: AttributedGraph, stars: list[Star]) -> bytes:
    """A scatter frame: the anonymized query plus its decomposition.

    The coordinator decomposes once and ships the same star plan to
    every shard; each shard matches all stars against its local
    centers, so the frame carries no shard-specific state.
    """
    return json.dumps(
        {
            "query": graph_to_dict(query),
            "stars": [
                {"center": star.center, "leaves": list(star.leaves)}
                for star in stars
            ],
        },
        sort_keys=True,
    ).encode("utf-8")


def decode_shard_request(payload: bytes) -> tuple[AttributedGraph, list[Star]]:
    try:
        data = json.loads(payload.decode("utf-8"))
        entries = data["stars"]
        if not isinstance(entries, list):
            raise ValueError("'stars' must be a list")
        stars = [
            Star(
                center=int(entry["center"]),
                leaves=tuple(int(leaf) for leaf in entry["leaves"]),
            )
            for entry in entries
        ]
        return graph_from_dict(data["query"]), stars
    except _DECODE_ERRORS as exc:
        raise ProtocolError(f"malformed shard request message: {exc}") from exc


def encode_shard_tables(tables: dict[int, MatchTable]) -> bytes:
    """A gather frame: one shard's star tables, keyed by star center.

    Each table ships with its positional schema so the coordinator can
    merge per-shard rows without re-deriving column order; rows stay
    tabular end to end (the shard payload is PR 5's columnar wire
    format, one frame per shard).
    """
    return json.dumps(
        {
            "tables": [
                {
                    "center": center,
                    "schema": list(table.schema),
                    "rows": table.rows,
                }
                for center, table in tables.items()
            ]
        },
        separators=(",", ":"),
    ).encode("utf-8")


def decode_shard_tables(payload: bytes) -> dict[int, MatchTable]:
    try:
        data = json.loads(payload.decode("utf-8"))
        entries = data["tables"]
        if not isinstance(entries, list):
            raise ValueError("'tables' must be a list")
        out: dict[int, MatchTable] = {}
        for entry in entries:
            table = MatchTable.from_rows(entry["schema"], entry["rows"])
            out[int(entry["center"])] = table
        return out
    except _DECODE_ERRORS as exc:
        raise ProtocolError(f"malformed shard tables message: {exc}") from exc
