"""Client/cloud protocol with byte-accurate network accounting.

The paper reports communication overhead (Figure 33: network
transmission time) as a first-class cost.  Since this reproduction runs
client and cloud in one process, the wire is simulated: every message
is actually serialized to JSON bytes, and a :class:`NetworkChannel`
converts byte counts into transmission time with a configurable
bandwidth/latency model (defaults approximate the paper's LAN-to-Azure
setting: results of a few KiB transmit in single-digit milliseconds).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.exceptions import ProtocolError
from repro.graph.attributed import AttributedGraph
from repro.graph.io import graph_from_dict, graph_to_dict
from repro.kauto.avt import AlignmentVertexTable
from repro.matching.match import Match, matches_to_rows, rows_to_matches
from repro.matching.table import MatchTable
from repro.obs import Observability, names

DEFAULT_BANDWIDTH_BYTES_PER_SEC = 1_000_000  # ~1 MB/s effective throughput
DEFAULT_LATENCY_SECONDS = 0.001


@dataclass
class TransferRecord:
    """One message on the simulated wire."""

    direction: str  # "upload", "query", "answer"
    payload_bytes: int
    seconds: float


@dataclass
class NetworkChannel:
    """Byte counter + linear latency/bandwidth cost model.

    :meth:`transmit` optionally reports into an
    :class:`~repro.obs.Observability` scope: one ``network.<direction>``
    span per message (attributes ``bytes`` and ``simulated_seconds`` —
    the *cost-model* time, distinct from the span's negligible wall
    duration) and a ``network_bytes_total{direction=...}`` counter.
    """

    bandwidth_bytes_per_sec: float = DEFAULT_BANDWIDTH_BYTES_PER_SEC
    latency_seconds: float = DEFAULT_LATENCY_SECONDS
    transfers: list[TransferRecord] = field(default_factory=list)

    def transmit(
        self, direction: str, payload: bytes, obs: Observability | None = None
    ) -> float:
        """Record a message; returns the simulated transmission time."""
        seconds = self.latency_seconds + len(payload) / self.bandwidth_bytes_per_sec
        self.transfers.append(TransferRecord(direction, len(payload), seconds))
        if obs is not None:
            # R2: span names come from the canonical taxonomy, never
            # from runtime data (the direction is validated en route).
            span_name = names.NETWORK_SPANS[direction]
            with obs.tracer.span(span_name) as span:
                span.set(bytes=len(payload), simulated_seconds=seconds)
            obs.metrics.counter(
                names.M_NETWORK_BYTES,
                help="Bytes on the simulated wire, by message direction.",
            ).inc(len(payload), direction=direction)
        return seconds

    def total_bytes(self, direction: str | None = None) -> int:
        return sum(
            t.payload_bytes
            for t in self.transfers
            if direction is None or t.direction == direction
        )

    def total_seconds(self, direction: str | None = None) -> float:
        return sum(
            t.seconds
            for t in self.transfers
            if direction is None or t.direction == direction
        )

    def reset(self) -> None:
        self.transfers.clear()


# ----------------------------------------------------------------------
# message encodings
# ----------------------------------------------------------------------
def encode_upload(graph: AttributedGraph, avt: AlignmentVertexTable) -> bytes:
    """The data owner's one-time upload: published graph + AVT."""
    return json.dumps(
        {"graph": graph_to_dict(graph), "avt": avt.to_dict()},
        sort_keys=True,
    ).encode("utf-8")


def decode_upload(payload: bytes) -> tuple[AttributedGraph, AlignmentVertexTable]:
    try:
        data = json.loads(payload.decode("utf-8"))
        return graph_from_dict(data["graph"]), AlignmentVertexTable.from_dict(
            data["avt"]
        )
    except (KeyError, ValueError) as exc:
        raise ProtocolError(f"malformed upload message: {exc}") from exc


def encode_query(query: AttributedGraph) -> bytes:
    """The anonymized query ``Qo``."""
    return json.dumps(graph_to_dict(query), sort_keys=True).encode("utf-8")


def decode_query(payload: bytes) -> AttributedGraph:
    try:
        return graph_from_dict(json.loads(payload.decode("utf-8")))
    except (KeyError, ValueError) as exc:
        raise ProtocolError(f"malformed query message: {exc}") from exc


def encode_answer(
    matches: list[Match],
    query_order: list[int],
    expanded: bool,
) -> bytes:
    """The cloud's answer: ``Rin`` rows (or full candidates for BAS)."""
    return json.dumps(
        {
            "order": query_order,
            "rows": matches_to_rows(matches, query_order),
            "expanded": expanded,
        },
        separators=(",", ":"),
    ).encode("utf-8")


def decode_answer(payload: bytes) -> tuple[list[Match], bool]:
    try:
        data = json.loads(payload.decode("utf-8"))
        matches = rows_to_matches(data["rows"], data["order"])
        return matches, bool(data["expanded"])
    except (KeyError, ValueError) as exc:
        raise ProtocolError(f"malformed answer message: {exc}") from exc


def encode_answer_table(
    table: MatchTable,
    query_order: list[int],
    expanded: bool,
) -> bytes:
    """Columnar :func:`encode_answer`: frame a result table directly.

    The payload is **byte-identical** to
    ``encode_answer(table.to_matches(), query_order, expanded)`` — the
    rows are already tabular, so the dict detour (and its per-match
    key lookups) is skipped; the columns are just re-ordered to
    ``query_order``.
    """
    return json.dumps(
        {
            "order": query_order,
            "rows": table.project_rows(query_order),
            "expanded": expanded,
        },
        separators=(",", ":"),
    ).encode("utf-8")


def decode_answer_table(payload: bytes) -> tuple[MatchTable, bool]:
    """Columnar :func:`decode_answer`: the rows stay tabular.

    The table's schema is the message's ``order``; width-mismatched
    rows are a :class:`ProtocolError` (the dict decoder silently
    truncated them — tabular framing is stricter by construction).
    """
    try:
        data = json.loads(payload.decode("utf-8"))
        table = MatchTable.from_rows(data["order"], data["rows"])
        return table, bool(data["expanded"])
    except (KeyError, ValueError, TypeError) as exc:
        raise ProtocolError(f"malformed answer message: {exc}") from exc


def roundtrip_answer_size(matches: list[Match], query_order: list[int]) -> int:
    """Byte size of an answer without keeping the encoding around."""
    return len(encode_answer(matches, query_order, expanded=False))


# ----------------------------------------------------------------------
# batched messages (one wire round-trip for a whole workload)
# ----------------------------------------------------------------------
def encode_query_batch(queries: list[AttributedGraph]) -> bytes:
    """A multi-query payload: the client ships a workload in one message.

    The batch engine (``query_batch``) answers its elements
    concurrently; framing them together saves per-message latency on
    the simulated wire and keeps the batch atomic for accounting.
    """
    return json.dumps(
        {"queries": [graph_to_dict(query) for query in queries]},
        sort_keys=True,
    ).encode("utf-8")


def decode_query_batch(payload: bytes) -> list[AttributedGraph]:
    try:
        data = json.loads(payload.decode("utf-8"))
        queries = data["queries"]
        if not isinstance(queries, list):
            raise ValueError("'queries' must be a list")
        return [graph_from_dict(entry) for entry in queries]
    except (KeyError, ValueError, AttributeError) as exc:
        raise ProtocolError(f"malformed query batch message: {exc}") from exc


def encode_answer_batch(
    answers: list[tuple[list[Match], list[int], bool]],
) -> bytes:
    """Batched answers: one ``(matches, query_order, expanded)`` per query."""
    return json.dumps(
        {
            "answers": [
                {
                    "order": order,
                    "rows": matches_to_rows(matches, order),
                    "expanded": expanded,
                }
                for matches, order, expanded in answers
            ]
        },
        separators=(",", ":"),
    ).encode("utf-8")


def decode_answer_batch(payload: bytes) -> list[tuple[list[Match], bool]]:
    try:
        data = json.loads(payload.decode("utf-8"))
        answers = data["answers"]
        if not isinstance(answers, list):
            raise ValueError("'answers' must be a list")
        return [
            (rows_to_matches(entry["rows"], entry["order"]), bool(entry["expanded"]))
            for entry in answers
        ]
    except (KeyError, ValueError, TypeError, AttributeError) as exc:
        raise ProtocolError(f"malformed answer batch message: {exc}") from exc
