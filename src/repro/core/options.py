"""Per-call query options: one keyword-only dataclass instead of kwarg soup.

Before the API consolidation, tuning knobs for a query run were threaded
through ``PrivacyPreservingSystem.query``/``query_batch`` as a growing
pile of positional/keyword arguments (``limit``, ``max_workers``,
``backend``, ...) that the CLI and benchmarks had to mirror argument by
argument.  :class:`QueryOptions` gathers them into a single frozen,
keyword-only value that travels from the caller through
``PrivacyPreservingSystem.submit`` and the gateway without the
intermediate layers knowing each field.

The legacy keywords still work on ``query``/``query_batch`` but emit a
:class:`DeprecationWarning` via :mod:`repro.compat`; the library itself
always passes ``QueryOptions`` (R5: no internal shim use).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.cloud.parallel import validate_backend
from repro.exceptions import ConfigError

#: Wire modes for the answer leg: ``"table"`` frames the columnar
#: :class:`~repro.matching.table.MatchTable` directly (the default,
#: byte-identical to the dict encoding), ``"dict"`` forces the legacy
#: per-match document path.
WIRE_MODES = ("table", "dict")


@dataclass(frozen=True, kw_only=True)
class QueryOptions:
    """Everything tunable about one ``submit`` call.

    Parameters
    ----------
    backend:
        Batch execution backend (``"serial"``, ``"thread"``,
        ``"process"``); single-query submits degenerate to serial
        regardless.
    workers:
        Batch worker cap (``None`` = backend default).
    star_workers:
        Per-call override for the cloud's intra-query star-matching
        parallelism (``None`` = the deployed engine's configuration).
    wire:
        Answer framing mode, one of :data:`WIRE_MODES`.
    trace:
        ``False`` disables span/metric recording for this call even
        when the system has observability attached.
    explain:
        ``True`` derives an :class:`~repro.obs.explain.ExplainReport`
        from each query's trace and attaches it to the outcome.
        Explain needs the spans, so ``explain=True`` with
        ``trace=False`` is a configuration error.
    max_results:
        Cap on returned matches per query (``None`` = unlimited);
        replaces the old ``limit`` keyword.
    shards:
        Expected shard count; validated against the deployed topology
        so a caller scripted for a 4-shard deployment fails loudly on
        a mismatched single-server system.  ``None`` skips the check.
    """

    backend: str = "thread"
    workers: int | None = None
    star_workers: int | None = None
    wire: str = "table"
    trace: bool = True
    explain: bool = False
    max_results: int | None = None
    shards: int | None = None

    def __post_init__(self) -> None:
        validate_backend(self.backend)
        if self.explain and not self.trace:
            raise ConfigError(
                "explain=True requires trace=True (the report is derived "
                "from the query's spans)"
            )
        if self.wire not in WIRE_MODES:
            raise ConfigError(
                f"wire must be one of {WIRE_MODES}, got {self.wire!r}"
            )
        if self.workers is not None and self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.star_workers is not None and self.star_workers < 1:
            raise ConfigError(
                f"star_workers must be >= 1, got {self.star_workers}"
            )
        if self.max_results is not None and self.max_results < 0:
            raise ConfigError(
                f"max_results must be >= 0, got {self.max_results}"
            )
        if self.shards is not None and self.shards < 1:
            raise ConfigError(f"shards must be >= 1, got {self.shards}")

    def evolve(self, **changes: Any) -> "QueryOptions":
        """A copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)


#: The all-defaults options value; ``submit(queries)`` uses this.
DEFAULT_OPTIONS = QueryOptions()
