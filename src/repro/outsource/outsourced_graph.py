"""The outsourced graph ``Go`` (Definition 5) and its inverse.

``Go`` is the subgraph of ``Gk`` the cloud actually receives:

* vertices — block ``B1`` of ``Gk`` plus the one-hop neighbours of
  ``B1`` (the set ``N1``);
* edges — every ``Gk`` edge with at least one endpoint in ``B1``
  (edges inside ``B1`` and edges between ``B1`` and ``N1``; edges
  between two ``N1`` vertices are *not* shipped).

Because the automorphic functions act transitively on blocks, every
``Gk`` edge has a counterpart incident to ``B1``, so ``Gk`` is exactly
recoverable from ``Go`` + AVT (:func:`recover_gk`) — the property that
lets the cloud answer queries over ``Gk`` while storing roughly a
``1/k`` fraction of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.attributed import AttributedGraph
from repro.kauto.avt import AlignmentVertexTable


@dataclass
class OutsourcedGraph:
    """``Go`` plus the block bookkeeping the cloud engine needs."""

    graph: AttributedGraph
    block_vertices: list[int]
    neighbor_vertices: list[int] = field(default_factory=list)

    @property
    def block_set(self) -> set[int]:
        return set(self.block_vertices)

    @property
    def vertex_count(self) -> int:
        return self.graph.vertex_count

    @property
    def edge_count(self) -> int:
        return self.graph.edge_count


def build_outsourced_graph(
    gk: AttributedGraph,
    avt: AlignmentVertexTable,
) -> OutsourcedGraph:
    """Extract ``Go`` from ``Gk`` per Definition 5."""
    block = avt.first_block()
    block_set = set(block)
    neighbor_set: set[int] = set()
    for vid in block:
        neighbor_set |= gk.neighbors(vid)
    neighbor_set -= block_set

    go = AttributedGraph(f"{gk.name}-outsourced")
    for vid in block:
        data = gk.vertex(vid)
        go.add_vertex(vid, data.vertex_type, data.labels)
    for vid in sorted(neighbor_set):
        data = gk.vertex(vid)
        go.add_vertex(vid, data.vertex_type, data.labels)
    for vid in block:
        for nbr in gk.neighbors(vid):
            if not go.has_edge(vid, nbr):
                go.add_edge(vid, nbr)
    return OutsourcedGraph(
        graph=go,
        block_vertices=list(block),
        neighbor_vertices=sorted(neighbor_set),
    )


def recover_gk(outsourced: OutsourcedGraph, avt: AlignmentVertexTable) -> AttributedGraph:
    """Rebuild the full ``Gk`` from ``Go`` and the automorphic functions.

    Every vertex of ``Gk`` is ``F_m`` of some ``B1`` vertex; every edge
    of ``Gk`` is ``F_m`` of some ``Go`` edge.  Labels and types follow
    the row (symmetric vertices share them).
    """
    go = outsourced.graph
    gk = AttributedGraph(go.name.replace("-outsourced", "") or "recovered")
    for row in avt.rows():
        anchor = go.vertex(row[0])
        for vid in row:
            gk.add_vertex(vid, anchor.vertex_type, anchor.labels)
    for m in range(avt.k):
        f_m = avt.function(m)
        for u, v in go.edges():
            fu, fv = f_m(u), f_m(v)
            if not gk.has_edge(fu, fv):
                gk.add_edge(fu, fv)
    return gk


def compression_ratio(outsourced: OutsourcedGraph, gk: AttributedGraph) -> float:
    """``|E(Go)| / |E(Gk)|`` — the space saving headline (Figure 12)."""
    if gk.edge_count == 0:
        return 1.0
    return outsourced.edge_count / gk.edge_count
