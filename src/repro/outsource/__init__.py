"""Outsourced graph construction (Definition 5) and maintenance."""

from repro.outsource.delta import GoDelta, apply_go_delta
from repro.outsource.outsourced_graph import (
    OutsourcedGraph,
    build_outsourced_graph,
    compression_ratio,
    recover_gk,
)

__all__ = [
    "OutsourcedGraph",
    "build_outsourced_graph",
    "recover_gk",
    "compression_ratio",
    "GoDelta",
    "apply_go_delta",
]
