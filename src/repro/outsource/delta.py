"""Incremental maintenance of the outsourced graph ``Go``.

Re-uploading ``Go`` after every update wastes bandwidth proportional to
the whole graph; a :class:`GoDelta` carries only what changed in the
cloud's view — the ``Gk`` edge changes incident to block ``B1``, plus
any vertices those changes introduce (new symmetric rows, or existing
vertices entering ``N1`` for the first time).

Produced by :meth:`repro.kauto.dynamic.DynamicRelease.go_delta` from an
:class:`UpdateLog`; consumed by :func:`apply_go_delta` (which a cloud
server would run on its stored copy before re-indexing).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.exceptions import ProtocolError
from repro.outsource.outsourced_graph import OutsourcedGraph


@dataclass
class GoDelta:
    """A minimal cloud-side update: vertex payloads + edge changes."""

    # (vertex id, type, {attr: [group ids]}); includes both new block
    # rows and vertices entering N1
    added_vertices: list[tuple[int, str, dict]] = field(default_factory=list)
    # new B1 members among added_vertices (fresh symmetric rows)
    added_block_vertices: list[int] = field(default_factory=list)
    added_edges: list[tuple[int, int]] = field(default_factory=list)
    removed_edges: list[tuple[int, int]] = field(default_factory=list)
    # AVT rows appended by vertex insertions (the cloud must extend its
    # copy of the automorphic functions)
    added_avt_rows: list[list[int]] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not (
            self.added_vertices
            or self.added_edges
            or self.removed_edges
            or self.added_avt_rows
        )

    def to_payload(self) -> bytes:
        return json.dumps(
            {
                "vertices": [
                    [vid, vertex_type, labels]
                    for vid, vertex_type, labels in self.added_vertices
                ],
                "block": list(self.added_block_vertices),
                "add": [list(edge) for edge in self.added_edges],
                "remove": [list(edge) for edge in self.removed_edges],
                "rows": [list(row) for row in self.added_avt_rows],
            },
            separators=(",", ":"),
        ).encode("utf-8")

    @classmethod
    def from_payload(cls, payload: bytes) -> "GoDelta":
        try:
            data = json.loads(payload.decode("utf-8"))
            return cls(
                added_vertices=[
                    (int(v[0]), v[1], v[2]) for v in data["vertices"]
                ],
                added_block_vertices=[int(v) for v in data["block"]],
                added_edges=[tuple(e) for e in data["add"]],
                removed_edges=[tuple(e) for e in data["remove"]],
                added_avt_rows=[list(row) for row in data["rows"]],
            )
        except (KeyError, ValueError, IndexError) as exc:
            raise ProtocolError(f"malformed Go delta: {exc}") from exc

    def payload_bytes(self) -> int:
        return len(self.to_payload())


def apply_go_delta(outsourced: OutsourcedGraph, delta: GoDelta) -> None:
    """Apply a delta to the cloud's stored ``Go`` in place.

    The caller (the cloud server) should rebuild its VBV/LBV index
    afterwards.  Edge additions referencing vertices absent from the
    delta and from the stored graph are protocol errors.
    """
    graph = outsourced.graph
    for vid, vertex_type, labels in delta.added_vertices:
        if vid not in graph:
            graph.add_vertex(vid, vertex_type, labels)
    for vid in delta.added_block_vertices:
        if vid not in graph:
            raise ProtocolError(f"new block vertex {vid} missing from delta")
        if vid not in outsourced.block_set:
            outsourced.block_vertices.append(vid)
    for u, v in delta.added_edges:
        if u not in graph or v not in graph:
            raise ProtocolError(f"delta edge ({u}, {v}) references unknown vertex")
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)
    for u, v in delta.removed_edges:
        if graph.has_edge(u, v):
            graph.remove_edge(u, v)