"""Pluggable request/response middleware for the serving gateway.

A :class:`Middleware` sees every request before the gateway admits it
(:meth:`Middleware.on_request`) and every response on the way out
(:meth:`Middleware.on_response`).  ``on_request`` may raise
:class:`~repro.exceptions.GatewayRejected` to short-circuit the chain:
later middlewares never see the request, the caller receives a typed
reject frame, and the ``on_response`` hooks of the middlewares that
*did* run still fire (in reverse order) so auditing stays complete.

Stock middlewares cover the serving concerns the related cloud-service
papers call out: per-client auth tokens, token-bucket rate limiting,
JSONL audit logging through :class:`repro.obs.events.EventLog`, and a
per-client privacy budget capping how many anonymized queries one
client may issue against the outsourced graph.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.exceptions import GatewayRejected
from repro.graph.attributed import AttributedGraph
from repro.obs import names
from repro.obs.events import EventLog


@dataclass
class GatewayRequest:
    """One request frame as the middleware chain sees it."""

    client_id: str
    request_id: str
    queries: list[AttributedGraph]
    token: str = ""


@dataclass
class GatewayResponse:
    """The outcome the ``on_response`` hooks observe."""

    status: str  # "ok" or the reject code
    answers: int = 0
    message: str = ""

    @classmethod
    def ok(cls, answers: int) -> "GatewayResponse":
        return cls(status="ok", answers=answers)

    @classmethod
    def from_rejection(cls, rejection: GatewayRejected) -> "GatewayResponse":
        return cls(status=rejection.code, message=rejection.reason)


class Middleware:
    """Base middleware: override either hook; both default to no-ops."""

    def on_request(self, request: GatewayRequest) -> None:
        """Inspect/veto ``request``; raise ``GatewayRejected`` to refuse."""

    def on_response(
        self, request: GatewayRequest, response: GatewayResponse
    ) -> None:
        """Observe the response (runs in reverse registration order)."""


class MiddlewareChain:
    """An ordered middleware stack with short-circuit semantics."""

    def __init__(self, middlewares: Iterable[Middleware] = ()) -> None:
        self.middlewares: tuple[Middleware, ...] = tuple(middlewares)

    def before(
        self, request: GatewayRequest
    ) -> tuple[list[Middleware], GatewayRejected | None]:
        """Run ``on_request`` hooks in order until one refuses.

        Returns the middlewares that accepted (they are owed an
        ``on_response`` call) and the rejection, if any.  The refusing
        middleware is *not* in the entered list — its own ``on_request``
        never completed.
        """
        entered: list[Middleware] = []
        for middleware in self.middlewares:
            try:
                middleware.on_request(request)
            except GatewayRejected as rejection:
                return entered, rejection
            entered.append(middleware)
        return entered, None

    def after(
        self,
        entered: Sequence[Middleware],
        request: GatewayRequest,
        response: GatewayResponse,
    ) -> None:
        """Run ``on_response`` hooks of ``entered``, innermost first."""
        for middleware in reversed(entered):
            middleware.on_response(request, response)

    def process(
        self,
        request: GatewayRequest,
        handler: Callable[[GatewayRequest], GatewayResponse],
    ) -> GatewayResponse:
        """Synchronous convenience: before -> handler -> after.

        Used by the tests (and any in-process embedding); the async
        gateway composes :meth:`before`/:meth:`after` itself around the
        admission and dispatch steps.  A rejection — from a middleware
        or from ``handler`` — still reaches the ``on_response`` hooks
        before re-raising.
        """
        entered, rejection = self.before(request)
        if rejection is None:
            try:
                response = handler(request)
            except GatewayRejected as exc:
                rejection = exc
        if rejection is not None:
            self.after(
                entered, request, GatewayResponse.from_rejection(rejection)
            )
            raise rejection
        self.after(entered, request, response)
        return response


# ----------------------------------------------------------------------
# stock middlewares
# ----------------------------------------------------------------------
class AuthTokenMiddleware(Middleware):
    """Refuse requests whose token does not match the expected one.

    ``token`` is a single shared secret; ``tokens`` maps client ids to
    per-client secrets (and implicitly restricts the client roster).
    Pass exactly one of the two.
    """

    def __init__(
        self,
        token: str | None = None,
        tokens: dict[str, str] | None = None,
    ) -> None:
        if (token is None) == (tokens is None):
            raise ValueError("pass exactly one of token= or tokens=")
        self._token = token
        self._tokens = tokens

    def on_request(self, request: GatewayRequest) -> None:
        if self._token is not None:
            expected: str | None = self._token
        else:
            assert self._tokens is not None
            expected = self._tokens.get(request.client_id)
        if expected is None or request.token != expected:
            raise GatewayRejected(
                "unauthorized",
                f"invalid token for client {request.client_id!r}",
                request.request_id,
            )


class RateLimitMiddleware(Middleware):
    """Per-client token bucket: ``rate`` requests/second, ``burst`` deep."""

    def __init__(
        self,
        rate: float,
        burst: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._buckets: dict[str, tuple[float, float]] = {}  #: guarded by _lock
        self._lock = threading.Lock()

    def on_request(self, request: GatewayRequest) -> None:
        now = self._clock()
        with self._lock:
            level, last = self._buckets.get(
                request.client_id, (float(self.burst), now)
            )
            level = min(float(self.burst), level + (now - last) * self.rate)
            if level < 1.0:
                self._buckets[request.client_id] = (level, now)
                raise GatewayRejected(
                    "rate_limited",
                    f"client {request.client_id!r} exceeded "
                    f"{self.rate:g} requests/second",
                    request.request_id,
                )
            self._buckets[request.client_id] = (level - 1.0, now)


class AuditLogMiddleware(Middleware):
    """Emit one JSONL audit record per finished request.

    Records land in a :class:`repro.obs.events.EventLog` under the
    canonical ``gateway.request`` event name: client, request id,
    query count and final status — the audit trail the honest-but-
    curious deployment model wants on the serving path.
    """

    def __init__(self, events: EventLog) -> None:
        self.events = events

    def on_response(
        self, request: GatewayRequest, response: GatewayResponse
    ) -> None:
        self.events.emit(
            names.GATEWAY_REQUEST,
            query_id=request.request_id,
            client_id=request.client_id,
            queries=len(request.queries),
            status=response.status,
            answers=response.answers,
        )


@dataclass
class _Budget:
    remaining: int


class PrivacyBudgetMiddleware(Middleware):
    """Cap how many queries each client may issue over a deployment.

    Privacy leakage against the outsourced graph compounds with every
    anonymized query a client sends; this middleware enforces a hard
    per-client budget (each request consumes one unit per query it
    carries) and refuses with ``budget_exhausted`` once spent.
    """

    def __init__(self, budget: int) -> None:
        if budget < 1:
            raise ValueError("budget must be >= 1")
        self.budget = budget
        self._spent: dict[str, int] = {}  #: guarded by _lock
        self._lock = threading.Lock()

    def on_request(self, request: GatewayRequest) -> None:
        cost = len(request.queries)
        with self._lock:
            spent = self._spent.get(request.client_id, 0)
            if spent + cost > self.budget:
                raise GatewayRejected(
                    "budget_exhausted",
                    f"client {request.client_id!r} spent {spent} of a "
                    f"{self.budget}-query privacy budget",
                    request.request_id,
                )
            self._spent[request.client_id] = spent + cost

    def remaining(self, client_id: str) -> int:
        with self._lock:
            return self.budget - self._spent.get(client_id, 0)


__all__ = [
    "GatewayRequest",
    "GatewayResponse",
    "Middleware",
    "MiddlewareChain",
    "AuthTokenMiddleware",
    "RateLimitMiddleware",
    "AuditLogMiddleware",
    "PrivacyBudgetMiddleware",
]
