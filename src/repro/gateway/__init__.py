"""Serving gateway: the paper's cloud as an actual network service.

The deployment story of the paper (and of the follow-up cloud-service
systems in PAPERS.md) is many clients issuing anonymized queries
against one outsourced graph.  This package provides that front end:

- :class:`QueryGateway` — an asyncio server speaking the
  length-prefixed frames of :mod:`repro.core.protocol`, dispatching
  into a deployed :class:`~repro.cloud.server.CloudServer` /
  :class:`~repro.cloud.sharding.ShardedCloud` through a bounded worker
  pool, with admission control, SLO-driven load shedding and
  duplicate-query coalescing.
- :class:`Middleware` / :class:`MiddlewareChain` — pluggable
  request/response hooks, with stock auth-token, rate-limit,
  audit-log and privacy-budget middlewares.
- :class:`GatewayClient` / :class:`SyncGatewayClient` — the matching
  clients; answers decode to the same columnar
  :class:`~repro.matching.table.MatchTable` frames the in-process
  pipeline produces, byte-identical end to end.
"""

from repro.gateway.admission import (
    AdmissionController,
    AdmissionPolicy,
    QueryCoalescer,
    coalesce_key,
    query_signature,
)
from repro.gateway.client import GatewayClient, SyncGatewayClient, TracedSubmit
from repro.gateway.middleware import (
    AuditLogMiddleware,
    AuthTokenMiddleware,
    GatewayRequest,
    GatewayResponse,
    Middleware,
    MiddlewareChain,
    PrivacyBudgetMiddleware,
    RateLimitMiddleware,
)
from repro.gateway.server import SHED_CODES, QueryGateway

__all__ = [
    "QueryGateway",
    "GatewayClient",
    "SyncGatewayClient",
    "TracedSubmit",
    "Middleware",
    "MiddlewareChain",
    "GatewayRequest",
    "GatewayResponse",
    "AuthTokenMiddleware",
    "RateLimitMiddleware",
    "AuditLogMiddleware",
    "PrivacyBudgetMiddleware",
    "AdmissionPolicy",
    "AdmissionController",
    "QueryCoalescer",
    "coalesce_key",
    "query_signature",
    "SHED_CODES",
]
