"""Gateway clients: async :class:`GatewayClient` + a sync wrapper.

The async client multiplexes requests over one connection: a
background reader task routes ``answer``/``reject`` frames to awaiting
futures by request id, so callers can have many requests in flight.
Rejects surface as :class:`~repro.exceptions.GatewayRejected` (typed
code + reason); transport failures as
:class:`~repro.exceptions.GatewayError` — both on the awaiting caller,
never swallowed.

:class:`SyncGatewayClient` runs a private event loop on a background
thread and exposes the same surface with blocking calls, so scripts
and the ``repro call`` CLI command can use the gateway without any
asyncio plumbing.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from dataclasses import dataclass
from typing import Awaitable, Sequence, TypeVar

from repro.core.protocol import (
    FRAME_HEADER,
    TraceContext,
    decode_frame_header,
    decode_gateway_answer,
    decode_gateway_reject,
    encode_frame,
    encode_gateway_hello,
    encode_gateway_request,
)
from repro.exceptions import GatewayError, GatewayRejected, ProtocolError
from repro.graph.attributed import AttributedGraph
from repro.matching.table import MatchTable
from repro.obs import names
from repro.obs.events import new_query_id
from repro.obs.tracing import Trace, Tracer

T = TypeVar("T")

#: One decoded answer: the result table and its expanded flag.
Answer = tuple[MatchTable, bool]


@dataclass
class TracedSubmit:
    """A traced round trip: the answers plus the stitched trace.

    ``trace`` holds the client's ``client.submit`` root span with the
    gateway's whole remote trace (request/dispatch/cloud/shard/fork
    spans) re-rooted under it — one tree, fresh local span ids, every
    span stamped with ``query_id``.  ``None`` only when the gateway
    dropped the trace (size cap) or predates trace propagation.
    """

    answers: list[Answer]
    trace: Trace | None
    query_id: str


class GatewayClient:
    """Async client for one gateway connection.

    Usage::

        async with GatewayClient(host, port, client_id="alice") as client:
            table, expanded = await client.query(anonymized)
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        client_id: str = "client",
        token: str = "",
    ) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.token = token
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task[None] | None = None
        self._pending: dict[
            str, asyncio.Future[tuple[list[Answer], Trace | None, int]]
        ] = {}
        self._ids = itertools.count(1)
        self._write_lock = asyncio.Lock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def connect(self) -> "GatewayClient":
        """Open the connection and run the hello handshake."""
        if self._writer is not None:
            raise GatewayError("client already connected")
        try:
            reader, writer = await asyncio.open_connection(
                self.host, self.port
            )
        except OSError as exc:
            raise GatewayError(f"cannot reach gateway: {exc}") from exc
        self._reader, self._writer = reader, writer
        writer.write(
            encode_frame(
                "hello", encode_gateway_hello(self.client_id, self.token)
            )
        )
        await writer.drain()
        kind, payload = await self._read_frame(reader)
        if kind == "reject":
            _, code, message = decode_gateway_reject(payload)
            await self._teardown()
            raise GatewayRejected(code, message)
        if kind != "hello":
            await self._teardown()
            raise GatewayError(f"expected hello ack, got {kind!r} frame")
        self._reader_task = asyncio.create_task(self._read_loop(reader))
        return self

    async def close(self) -> None:
        """Send ``bye`` and tear the connection down (idempotent)."""
        writer = self._writer
        if writer is not None:
            try:
                async with self._write_lock:
                    writer.write(encode_frame("bye", b""))
                    await writer.drain()
            except (ConnectionError, OSError):
                pass
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        await self._teardown()

    async def _teardown(self) -> None:
        writer = self._writer
        self._reader = None
        self._writer = None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._fail_pending(GatewayError("connection closed"))

    async def __aenter__(self) -> "GatewayClient":
        return await self.connect()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # requests
    # ------------------------------------------------------------------
    async def _submit_raw(
        self,
        queries: Sequence[AttributedGraph],
        context: TraceContext | None,
    ) -> tuple[list[Answer], Trace | None, dict[str, int]]:
        writer = self._writer
        if writer is None:
            raise GatewayError("client is not connected")
        request_id = f"{self.client_id}-{next(self._ids)}"
        loop = asyncio.get_running_loop()
        future: asyncio.Future[tuple[list[Answer], Trace | None, int]] = (
            loop.create_future()
        )
        self._pending[request_id] = future
        try:
            payload = encode_gateway_request(
                request_id, list(queries), context=context
            )
            async with self._write_lock:
                writer.write(encode_frame("request", payload))
                await writer.drain()
        except (ConnectionError, OSError) as exc:
            self._pending.pop(request_id, None)
            raise GatewayError(f"request write failed: {exc}") from exc
        answers, remote, answer_bytes = await future
        return answers, remote, {
            "query": len(payload),
            "answer": answer_bytes,
        }

    async def submit(
        self, queries: Sequence[AttributedGraph]
    ) -> list[Answer]:
        """Send one request frame; await its answers (or typed reject).

        No trace context is attached, so the request bytes (and the
        gateway's answer bytes) are identical to a pre-context client.
        """
        answers, _, _ = await self._submit_raw(queries, None)
        return answers

    async def submit_traced(
        self, queries: Sequence[AttributedGraph]
    ) -> TracedSubmit:
        """A traced :meth:`submit`: propagate context, stitch the trace.

        Opens a ``client.submit`` root span, ships its id and a fresh
        ``query_id`` inside the request frame, and absorbs the remote
        trace the gateway returns under that root — every remote span
        gets a fresh local id, so the result is one collision-free tree
        chaining client -> gateway -> cloud -> shards -> fork children.
        """
        tracer = Tracer(query_id=new_query_id())
        remote: Trace | None = None
        with tracer.span(names.CLIENT_SUBMIT) as root:
            root.set(queries=len(queries))
            context = TraceContext(
                query_id=tracer.query_id,
                parent_span_id=root.span_id,
                sampled=True,
            )
            answers, remote, sizes = await self._submit_raw(queries, context)
            if remote is not None:
                tracer.absorb(remote, parent=root)
            root.set(remote_spans=len(remote) if remote is not None else 0)
            # the gateway serializes its trace *before* transmitting the
            # answer frame, so the answer-direction bytes can only be
            # accounted on this side of the wire
            with tracer.span(
                names.NETWORK_GATEWAY_ANSWER, parent=root
            ) as wire:
                wire.set(bytes=sizes["answer"])
        return TracedSubmit(
            answers=answers,
            trace=tracer.take_trace(),
            query_id=tracer.query_id,
        )

    async def query(self, query: AttributedGraph) -> Answer:
        """Single-query convenience over :meth:`submit`."""
        answers = await self.submit([query])
        if len(answers) != 1:
            raise GatewayError(
                f"expected 1 answer, gateway sent {len(answers)}"
            )
        return answers[0]

    # ------------------------------------------------------------------
    # frame plumbing
    # ------------------------------------------------------------------
    async def _read_frame(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, bytes]:
        header = await reader.readexactly(FRAME_HEADER.size)
        kind, length = decode_frame_header(header)
        payload = await reader.readexactly(length) if length else b""
        return kind, payload

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                kind, payload = await self._read_frame(reader)
                if kind == "answer":
                    request_id, answers, remote_trace = decode_gateway_answer(
                        payload
                    )
                    future = self._pending.pop(request_id, None)
                    if future is not None and not future.done():
                        future.set_result(
                            (answers, remote_trace, len(payload))
                        )
                elif kind == "reject":
                    request_id, code, message = decode_gateway_reject(payload)
                    future = self._pending.pop(request_id, None)
                    if future is not None and not future.done():
                        future.set_exception(
                            GatewayRejected(code, message, request_id)
                        )
                # any other frame kind from the server is ignored
        except asyncio.CancelledError:
            raise
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            self._fail_pending(GatewayError("gateway closed the connection"))
        except ProtocolError as exc:
            self._fail_pending(
                GatewayError(f"malformed frame from gateway: {exc}")
            )

    def _fail_pending(self, error: GatewayError) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(error)


class SyncGatewayClient:
    """Blocking facade over :class:`GatewayClient`.

    Owns a private event loop on a daemon thread; every method submits
    the corresponding coroutine and blocks on its result.  Use as a
    context manager::

        with SyncGatewayClient(host, port, client_id="cli") as client:
            table, expanded = client.query(anonymized)
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        client_id: str = "client",
        token: str = "",
        timeout: float | None = 60.0,
    ) -> None:
        self.timeout = timeout
        self._client = GatewayClient(
            host, port, client_id=client_id, token=token
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    def _run(self, coroutine: Awaitable[T]) -> T:
        loop = self._loop
        if loop is None:
            raise GatewayError("client is not connected")
        future = asyncio.run_coroutine_threadsafe(coroutine, loop)  # type: ignore[arg-type]
        return future.result(self.timeout)

    def connect(self) -> "SyncGatewayClient":
        if self._thread is not None:
            raise GatewayError("client already connected")
        loop = asyncio.new_event_loop()
        self._loop = loop
        self._thread = threading.Thread(
            target=loop.run_forever, name="repro-gateway-client", daemon=True
        )
        self._thread.start()
        try:
            self._run(self._client.connect())
        except BaseException:
            self._stop_loop()
            raise
        return self

    def close(self) -> None:
        if self._loop is None:
            return
        try:
            self._run(self._client.close())
        finally:
            self._stop_loop()

    def _stop_loop(self) -> None:
        loop, thread = self._loop, self._thread
        self._loop = None
        self._thread = None
        if loop is not None:
            loop.call_soon_threadsafe(loop.stop)
        if thread is not None:
            thread.join(timeout=10)
        if loop is not None and not loop.is_running():
            loop.close()

    def submit(self, queries: Sequence[AttributedGraph]) -> list[Answer]:
        return self._run(self._client.submit(queries))

    def submit_traced(
        self, queries: Sequence[AttributedGraph]
    ) -> TracedSubmit:
        return self._run(self._client.submit_traced(queries))

    def query(self, query: AttributedGraph) -> Answer:
        return self._run(self._client.query(query))

    def __enter__(self) -> "SyncGatewayClient":
        return self.connect()

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = ["GatewayClient", "SyncGatewayClient", "Answer", "TracedSubmit"]
