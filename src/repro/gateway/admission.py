"""Admission control and duplicate-query coalescing for the gateway.

The gateway never queues unboundedly and never collapses under load:
an :class:`AdmissionController` enforces a global concurrency budget
and a per-client in-flight cap, and — when wired to a live
:class:`~repro.obs.windows.SlidingWindow` through
:meth:`~repro.obs.windows.SlidingWindow.shed_probe` — sheds new work
the moment the admitted-traffic tail latency breaches the SLO.  Every
refusal is a typed :class:`~repro.exceptions.GatewayRejected` that the
server turns into a reject frame; admitted requests are unaffected.

The :class:`QueryCoalescer` deduplicates identical in-flight work: two
concurrent requests carrying structurally identical query workloads
share one cloud computation (the same canonical vertex-constraint
codec the :class:`~repro.cloud.cache.StarMatchCache` keys on), so a
thundering herd of one hot query costs one star-matching pass.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.cloud.cache import vertex_constraint
from repro.exceptions import GatewayRejected
from repro.graph.attributed import AttributedGraph


@dataclass(frozen=True, kw_only=True)
class AdmissionPolicy:
    """Knobs for :class:`AdmissionController`.

    ``slo_seconds`` is the p-quantile latency bound on *admitted*
    requests; ``None`` disables latency shedding (the concurrency caps
    still apply).  ``min_window_count`` keeps a cold window from
    shedding before it has a statistically meaningful tail.
    """

    max_inflight: int = 64
    max_client_inflight: int = 16
    slo_seconds: float | None = None
    slo_quantile: float = 0.99
    min_window_count: int = 32

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.max_client_inflight < 1:
            raise ValueError("max_client_inflight must be >= 1")
        if self.slo_seconds is not None and self.slo_seconds <= 0:
            raise ValueError("slo_seconds must be positive or None")
        if not 0.0 < self.slo_quantile <= 1.0:
            raise ValueError("slo_quantile must be in (0, 1]")
        if self.min_window_count < 1:
            raise ValueError("min_window_count must be >= 1")


class AdmissionController:
    """Bounded admission: concurrency caps + SLO-driven load shedding.

    ``shed_probe`` is a zero-argument callable (typically
    ``window.shed_probe(policy.slo_seconds, ...)``) evaluated on every
    admission attempt; ``True`` refuses with code ``"overloaded"``.
    :meth:`admit` either raises :class:`GatewayRejected` or reserves a
    slot the caller must give back via :meth:`release` (the gateway
    wraps the pair in ``try/finally``).
    """

    def __init__(
        self,
        policy: AdmissionPolicy | None = None,
        shed_probe: Callable[[], bool] | None = None,
    ) -> None:
        self.policy = policy if policy is not None else AdmissionPolicy()
        self.shed_probe = shed_probe
        self._inflight = 0  #: guarded by _lock
        self._per_client: dict[str, int] = {}  #: guarded by _lock
        self._lock = threading.Lock()

    def admit(self, client_id: str, request_id: str = "") -> None:
        """Reserve one slot for ``client_id`` or raise ``GatewayRejected``."""
        if self.shed_probe is not None and self.shed_probe():
            raise GatewayRejected(
                "overloaded",
                f"tail latency over the p{int(self.policy.slo_quantile * 100)}"
                " SLO; shedding new work",
                request_id,
            )
        with self._lock:
            if self._inflight >= self.policy.max_inflight:
                raise GatewayRejected(
                    "overloaded",
                    f"global concurrency budget of "
                    f"{self.policy.max_inflight} requests is full",
                    request_id,
                )
            mine = self._per_client.get(client_id, 0)
            if mine >= self.policy.max_client_inflight:
                raise GatewayRejected(
                    "queue_full",
                    f"client {client_id!r} already has {mine} requests "
                    "in flight",
                    request_id,
                )
            self._inflight += 1
            self._per_client[client_id] = mine + 1

    def release(self, client_id: str) -> None:
        """Give back a slot reserved by :meth:`admit`."""
        with self._lock:
            self._inflight = max(0, self._inflight - 1)
            mine = self._per_client.get(client_id, 0)
            if mine <= 1:
                self._per_client.pop(client_id, None)
            else:
                self._per_client[client_id] = mine - 1

    def inflight(self, client_id: str | None = None) -> int:
        with self._lock:
            if client_id is None:
                return self._inflight
            return self._per_client.get(client_id, 0)


# ----------------------------------------------------------------------
# duplicate-query coalescing
# ----------------------------------------------------------------------
def query_signature(query: AttributedGraph) -> tuple:
    """Canonical structural signature of one anonymized query.

    Built from the same per-vertex constraint codec the star cache
    keys on (:func:`repro.cloud.cache.vertex_constraint`) plus the
    edge set, so two requests coalesce exactly when the cloud would
    compute identical answers for them.
    """
    vertices = tuple(
        (vid, vertex_constraint(query.vertex(vid)))
        for vid in sorted(query.vertex_ids())
    )
    edges = tuple(sorted(tuple(sorted(edge)) for edge in query.edges()))
    return (vertices, edges)


def coalesce_key(queries: Sequence[AttributedGraph]) -> tuple:
    """The in-flight dedup key for a whole request workload."""
    return tuple(query_signature(query) for query in queries)


class QueryCoalescer:
    """Share one in-flight computation among identical requests.

    The first requester of a key becomes the *leader* (it computes and
    must call :meth:`complete`); concurrent requesters of the same key
    are *followers* and await the leader's future.  Keys are retired on
    completion, so a later identical request computes afresh — the
    coalescer is a thundering-herd guard, not a result cache.
    """

    def __init__(self) -> None:
        self._inflight: dict[tuple, Future[Any]] = {}  #: guarded by _lock
        self._lock = threading.Lock()

    def lease(self, key: tuple) -> tuple[bool, Future[Any]]:
        """Return ``(leader, future)`` for ``key``."""
        with self._lock:
            existing = self._inflight.get(key)
            if existing is not None:
                return False, existing
            future: Future[Any] = Future()
            self._inflight[key] = future
            return True, future

    def complete(self, key: tuple) -> None:
        """Retire ``key`` (leader-only, after resolving its future)."""
        with self._lock:
            self._inflight.pop(key, None)

    def inflight_count(self) -> int:
        with self._lock:
            return len(self._inflight)


__all__ = [
    "AdmissionPolicy",
    "AdmissionController",
    "QueryCoalescer",
    "query_signature",
    "coalesce_key",
]
