"""The asyncio serving gateway: frames in, admitted work out.

:class:`QueryGateway` listens on a TCP socket (``asyncio.start_server``
on a dedicated background thread), speaks the length-prefixed frame
envelope of :mod:`repro.core.protocol`, and dispatches anonymized
queries into a :class:`~repro.cloud.server.CloudServer` or
:class:`~repro.cloud.sharding.ShardedCloud` through a bounded thread
pool.  Per request it runs, in order:

1. the middleware chain's ``on_request`` hooks (auth, rate limit,
   privacy budget — any may refuse),
2. admission control (global + per-client concurrency caps, SLO-driven
   load shedding off the live ``gateway_seconds_window`` gauges),
3. duplicate-query coalescing (identical in-flight workloads share one
   cloud computation),
4. the cloud computation itself on a pool worker, then the answer
   frame; every refusal ships as a typed reject frame instead — the
   gateway degrades by shedding, never by collapsing.

Each connection transmits on its own
:meth:`~repro.core.protocol.NetworkChannel.scope` child channel, so
concurrent sessions get isolated byte accounting that still rolls up
into the deployment's channel totals on disconnect.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Sequence

from repro.cloud.parallel import DEFAULT_MAX_WORKERS
from repro.cloud.server import CloudServer
from repro.cloud.sharding import ShardedCloud
from repro.core.protocol import (
    FRAME_HEADER,
    MAX_TRACE_PAYLOAD,
    NetworkChannel,
    TraceContext,
    decode_frame_header,
    decode_gateway_hello,
    decode_gateway_request,
    encode_frame,
    encode_gateway_answer,
    encode_gateway_hello,
    encode_gateway_reject,
)
from repro.exceptions import GatewayError, GatewayRejected, ProtocolError
from repro.gateway.admission import (
    AdmissionController,
    AdmissionPolicy,
    QueryCoalescer,
    coalesce_key,
)
from repro.gateway.middleware import (
    GatewayRequest,
    GatewayResponse,
    Middleware,
    MiddlewareChain,
)
from repro.graph.attributed import AttributedGraph
from repro.matching.table import MatchTable
from repro.obs import Observability, SlidingWindow, TraceRing, names
from repro.obs.tracing import NullSpan, Span, Trace

#: Reject codes counted as *load shedding* (``gateway_shed_total``);
#: other rejections (auth, rate limit, budget, bad frames) are policy.
SHED_CODES = ("overloaded", "queue_full")

#: One answer entry: the result table, its column order, and whether
#: the rows are already expanded through the AVT.
AnswerEntry = tuple[MatchTable, list[int], bool]


class _Connection:
    """Per-connection state: identity, write lock, scoped channel."""

    def __init__(
        self,
        client_id: str,
        token: str,
        channel: NetworkChannel,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.client_id = client_id
        self.token = token
        self.channel = channel
        self.writer = writer
        self.write_lock = asyncio.Lock()

    async def send(self, kind: str, payload: bytes) -> None:
        async with self.write_lock:
            self.writer.write(encode_frame(kind, payload))
            await self.writer.drain()


class QueryGateway:
    """An async query front end over a deployed cloud engine.

    Parameters
    ----------
    cloud:
        The deployed engine requests dispatch into (shared, read-mostly).
    host, port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    middlewares:
        The request/response chain, outermost first.
    policy:
        Admission knobs; ``policy.slo_seconds`` arms latency shedding
        off the gateway's own sliding window.
    workers:
        Dispatch pool size (bounds concurrent cloud computations).
    expansion_site:
        ``"cloud"`` expands ``Rin`` through the AVT before framing the
        answer (mirrors ``SystemConfig.expansion_site``); ``"client"``
        ships ``Rin`` as-is.
    channel:
        The deployment's byte-accounting channel; each connection
        transmits on a :meth:`~NetworkChannel.scope` child of it.
    obs:
        Observability root; every request runs on its own
        ``obs.for_query()`` scope.
    traces:
        Optional :class:`~repro.obs.TraceRing`; when given, each
        request's trace is retained under its query id so the
        telemetry server's ``/traces/<query_id>`` endpoint can serve
        gateway-handled queries too.
    """

    def __init__(
        self,
        cloud: CloudServer | ShardedCloud,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        middlewares: Iterable[Middleware] = (),
        policy: AdmissionPolicy | None = None,
        workers: int | None = None,
        expansion_site: str = "client",
        channel: NetworkChannel | None = None,
        obs: Observability | None = None,
        traces: TraceRing | None = None,
    ) -> None:
        if expansion_site not in ("client", "cloud"):
            raise GatewayError(
                f"expansion_site must be 'client' or 'cloud', "
                f"got {expansion_site!r}"
            )
        self.cloud = cloud
        self.host = host
        self.port = port
        self.expansion_site = expansion_site
        self.channel = channel if channel is not None else NetworkChannel()
        self.obs = obs if obs is not None else Observability()
        self.traces = traces
        self.middleware = MiddlewareChain(middlewares)
        self.policy = policy if policy is not None else AdmissionPolicy()
        self.window = SlidingWindow(capacity=1024)
        if self.obs.enabled:
            self.window.register(
                self.obs.metrics,
                names.W_GATEWAY_WINDOW,
                help="Admitted gateway request seconds over the SLO window.",
            )
        shed_probe = None
        if self.policy.slo_seconds is not None:
            shed_probe = self.window.shed_probe(
                self.policy.slo_seconds,
                quantile=self.policy.slo_quantile,
                min_count=self.policy.min_window_count,
            )
        self.admission = AdmissionController(self.policy, shed_probe)
        self.coalescer = QueryCoalescer()
        self._workers = workers if workers is not None else DEFAULT_MAX_WORKERS
        self._pool: ThreadPoolExecutor | None = None
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown: asyncio.Event | None = None
        self._started: threading.Event | None = None
        self._startup_error: BaseException | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "QueryGateway":
        """Bind and serve on a background thread; returns once listening."""
        if self._thread is not None:
            raise GatewayError("gateway already started")
        self._pool = ThreadPoolExecutor(
            max_workers=self._workers, thread_name_prefix="repro-gateway"
        )
        self._startup_error = None
        self._started = threading.Event()
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-gateway-loop", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            error = self._startup_error
            self.stop()
            raise GatewayError(f"gateway failed to start: {error}") from error
        return self

    def stop(self) -> None:
        """Shut the server down and join the loop thread (idempotent)."""
        loop, shutdown = self._loop, self._shutdown
        if loop is not None and shutdown is not None and loop.is_running():
            loop.call_soon_threadsafe(shutdown.set)
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._loop = None
        self._shutdown = None

    def __enter__(self) -> "QueryGateway":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _thread_main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        finally:
            asyncio.set_event_loop(None)
            loop.close()

    async def _main(self) -> None:
        assert self._started is not None
        self._shutdown = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._handle_connection, self.host, self.port
            )
        except OSError as exc:
            self._startup_error = exc
            self._started.set()
            return
        self.port = server.sockets[0].getsockname()[1]
        self._started.set()
        try:
            await self._shutdown.wait()
        finally:
            server.close()
            await server.wait_closed()
            current = asyncio.current_task()
            pending = [
                task for task in asyncio.all_tasks() if task is not current
            ]
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _read_frame(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, bytes]:
        header = await reader.readexactly(FRAME_HEADER.size)
        kind, length = decode_frame_header(header)
        payload = await reader.readexactly(length) if length else b""
        return kind, payload

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            # shutdown path: _main cancels live connection handlers;
            # finishing quietly (instead of ending *cancelled*) keeps
            # asyncio's stream bookkeeping from logging a spurious
            # error for every open connection.
            pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn_channel = self.channel.scope()
        tasks: set[asyncio.Task[None]] = set()
        try:
            conn = await self._handshake(reader, writer, conn_channel)
            if conn is None:
                return
            while True:
                try:
                    kind, payload = await self._read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                except ProtocolError as exc:
                    # broken framing: one typed reject, then hang up —
                    # the byte stream can no longer be trusted.
                    await conn.send(
                        "reject",
                        encode_gateway_reject("", "bad_request", str(exc)),
                    )
                    break
                if kind == "bye":
                    break
                if kind != "request":
                    await conn.send(
                        "reject",
                        encode_gateway_reject(
                            "", "bad_request", f"unexpected {kind} frame"
                        ),
                    )
                    continue
                try:
                    request_id, queries, context = decode_gateway_request(
                        payload
                    )
                except ProtocolError as exc:
                    await conn.send(
                        "reject",
                        encode_gateway_reject("", "bad_request", str(exc)),
                    )
                    continue
                task = asyncio.create_task(
                    self._serve_request(
                        conn, request_id, queries, payload, context
                    )
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            conn_channel.close()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handshake(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        conn_channel: NetworkChannel,
    ) -> _Connection | None:
        try:
            kind, payload = await self._read_frame(reader)
            if kind != "hello":
                raise ProtocolError(f"expected hello frame, got {kind!r}")
            client_id, token = decode_gateway_hello(payload)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        except ProtocolError as exc:
            writer.write(
                encode_frame(
                    "reject",
                    encode_gateway_reject("", "bad_request", str(exc)),
                )
            )
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            return None
        conn = _Connection(client_id, token, conn_channel, writer)
        await conn.send("hello", encode_gateway_hello("gateway"))
        return conn

    # ------------------------------------------------------------------
    # request serving
    # ------------------------------------------------------------------
    async def _serve_request(
        self,
        conn: _Connection,
        request_id: str,
        queries: list[AttributedGraph],
        payload: bytes,
        context: TraceContext | None = None,
    ) -> None:
        # a propagated context re-uses the client's query id so every
        # gateway/cloud/shard span of this request is correlatable with
        # the client's root span; pre-context clients get a fresh id.
        scope = self.obs.for_query(
            context.query_id if context is not None and context.query_id else None
        )
        tracer = scope.tracer
        request = GatewayRequest(
            client_id=conn.client_id,
            request_id=request_id,
            queries=queries,
            token=conn.token,
        )
        rejection: GatewayRejected | None = None
        answers: list[AnswerEntry] = []

        with tracer.span(names.GATEWAY_REQUEST) as root:
            root.set(
                client_id=conn.client_id,
                request_id=request_id,
                queries=len(queries),
            )
            if context is not None:
                # the caller's parent id is recorded as data, never
                # adopted as a literal parent_id — this tracer's own
                # ids live in a different space; the client re-roots
                # the returned trace via Tracer.absorb.
                root.set(ctx_parent=context.parent_span_id)
            conn.channel.transmit("gateway_query", payload, obs=scope)
            entered, rejection = self.middleware.before(request)
            admitted = False
            if rejection is None:
                try:
                    self.admission.admit(conn.client_id, request_id)
                    admitted = True
                except GatewayRejected as exc:
                    rejection = exc
            if rejection is None:
                try:
                    answers = await self._dispatch(queries, scope, root)
                except GatewayRejected as exc:
                    rejection = exc
                except Exception as exc:  # noqa: BLE001 - shed, never collapse
                    # R6: only the exception *type* crosses the wire.
                    # str(exc) can embed internal state (file paths,
                    # label values, config) the remote client must
                    # never see; the full text stays in local logs via
                    # the span/metrics pipeline.
                    rejection = GatewayRejected(
                        "internal", type(exc).__name__, request_id
                    )
                finally:
                    if admitted:
                        self.admission.release(conn.client_id)

            if rejection is None:
                response = GatewayResponse.ok(len(answers))
                return_trace = self._return_trace(context, scope, root)
                answer_payload = encode_gateway_answer(
                    request_id, answers, trace=return_trace
                )
                conn.channel.transmit(
                    "gateway_answer", answer_payload, obs=scope
                )
                await conn.send("answer", answer_payload)
            else:
                response = GatewayResponse.from_rejection(rejection)
                await conn.send(
                    "reject",
                    encode_gateway_reject(
                        request_id, rejection.code, rejection.reason
                    ),
                )
            try:
                self.middleware.after(entered, request, response)
            except Exception:  # noqa: BLE001 - audit must not kill the reply
                pass
            root.set(status=response.status)

        if self.traces is not None and tracer.recording:
            self.traces.push(
                tracer.take_trace(),
                query_id=scope.query_id,
                client_id=conn.client_id,
                status=response.status,
            )
        scope.metrics.counter(
            names.M_GATEWAY_REQUESTS,
            help="Gateway requests by final status.",
        ).inc(status=response.status)
        if rejection is not None and rejection.code in SHED_CODES:
            scope.metrics.counter(
                names.M_GATEWAY_SHED,
                help="Requests shed by admission control, by reason.",
            ).inc(reason=rejection.code)
        if rejection is None and scope.enabled:
            self.window.observe(root.duration)

    def _return_trace(
        self,
        context: TraceContext | None,
        scope: Observability,
        root: Span | NullSpan,
    ) -> "Trace | None":
        """The gateway-side trace to ship back, or ``None``.

        Only requests that propagated a sampled context get one.  The
        request root span is still open while the answer is encoded, so
        a snapshot of it (duration as of now) is appended; the client
        replaces nothing — it re-roots the whole remote trace under its
        own submit span.  The serialized size is capped (the trace is
        dropped, never the answer) and byte-accounted.
        """
        tracer = scope.tracer
        if context is None or not context.sampled or not tracer.recording:
            return None
        trace = tracer.trace()
        if isinstance(root, Span):
            trace.spans.append(tracer.snapshot(root))
        doc_bytes = len(
            json.dumps(trace.to_dict(), separators=(",", ":")).encode("utf-8")
        )
        if doc_bytes > MAX_TRACE_PAYLOAD:
            return None
        scope.metrics.counter(
            names.M_TRACE_BYTES,
            help="Serialized trace bytes returned on answer frames.",
        ).inc(doc_bytes, direction="gateway_answer")
        return trace

    async def _dispatch(
        self,
        queries: Sequence[AttributedGraph],
        scope: Observability,
        root: Span | NullSpan,
    ) -> list[AnswerEntry]:
        """Run the cloud computation on the pool, coalescing duplicates."""
        assert self._pool is not None
        key = coalesce_key(queries)
        leader, future = self.coalescer.lease(key)
        if not leader:
            scope.metrics.counter(
                names.M_GATEWAY_COALESCED,
                help="Requests that shared another request's computation.",
            ).inc()
            return await asyncio.wrap_future(future)

        tracer = scope.tracer

        def compute() -> list[AnswerEntry]:
            # explicit parent: the pool thread has no implicit span
            # stack, but everything the cloud opens below nests under
            # this dispatch span via the worker's own stack.
            with tracer.span(names.GATEWAY_DISPATCH, parent=root) as span:
                result = self._answer_all(queries, scope)
                span.set(
                    queries=len(queries),
                    rows=sum(len(table) for table, _, _ in result),
                )
            return result

        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(self._pool, compute)
        except BaseException as exc:
            future.set_exception(exc)
            self.coalescer.complete(key)
            raise
        future.set_result(result)
        self.coalescer.complete(key)
        return result

    def _answer_all(
        self, queries: Sequence[AttributedGraph], scope: Observability
    ) -> list[AnswerEntry]:
        """The bit-identical core: one cloud answer per query."""
        out: list[AnswerEntry] = []
        for query in queries:
            answer = self.cloud.answer(query, obs=scope)
            order = sorted(query.vertex_ids())
            table = answer.table
            if table is None:
                table = MatchTable.from_matches(answer.matches, order)
            expanded = answer.expanded
            if self.expansion_site == "cloud" and not expanded:
                # the same three-step kernel as the client's Rin
                # expansion (known rows -> AVT expansion -> dedupe),
                # via the AVT so the gateway layer never reaches into
                # repro.client (vectorized when the backend allows).
                table = self.cloud.avt.expand_known_table(table)
                expanded = True
            out.append((table, order, expanded))
        return out


__all__ = ["QueryGateway", "SHED_CODES"]
