"""A small Cypher-flavoured pattern language for query graphs.

The paper motivates subgraph matching with SPARQL and Neo4j's Cypher;
this module gives the library a comparable textual front-end so
examples and applications can state queries declaratively::

    (p1:person {occupation=engineer})-(c1:company {company_type=internet})
    (p1)-(s:school {located_in=illinois})
    (p2:person)-(s)
    (p2)-(c2:company {company_type=software})

Grammar (informal):

* a *pattern* is one or more lines (``\\n`` or ``;`` separated);
* each line is a chain ``(node)-(node)-...-(node)``; consecutive nodes
  are connected by an undirected query edge;
* a *node* is ``(name)``, ``(name:type)`` or
  ``(name:type {attr=value, attr=v1|v2})``;
* the first mention of a name must carry its type; later mentions may
  repeat or omit type/labels (repeated labels merge);
* ``|`` separates alternative... no — multiple *required* labels of the
  same attribute (Definition 2 requires all query labels present).

:func:`parse_pattern` returns an :class:`AttributedGraph` whose vertex
ids follow first-appearance order, plus a name -> id map.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.exceptions import QueryError
from repro.graph.attributed import AttributedGraph

_NODE_RE = re.compile(
    r"""
    \(\s*
    (?P<name>[A-Za-z_][A-Za-z0-9_]*)
    (?:\s*:\s*(?P<type>[A-Za-z_][A-Za-z0-9_.-]*))?
    (?:\s*\{(?P<labels>[^}]*)\})?
    \s*\)
    """,
    re.VERBOSE,
)


@dataclass
class ParsedPattern:
    """A parsed pattern: the query graph plus the name bindings."""

    graph: AttributedGraph
    bindings: dict[str, int] = field(default_factory=dict)

    def vertex_of(self, name: str) -> int:
        try:
            return self.bindings[name]
        except KeyError:
            raise QueryError(f"pattern has no node named {name!r}") from None


def _parse_labels(text: str, node_name: str) -> dict[str, set[str]]:
    labels: dict[str, set[str]] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise QueryError(
                f"node {node_name!r}: expected attr=value, got {part!r}"
            )
        attr, _, value = part.partition("=")
        attr = attr.strip()
        if not attr:
            raise QueryError(f"node {node_name!r}: empty attribute name")
        values = {v.strip() for v in value.split("|") if v.strip()}
        if not values:
            raise QueryError(f"node {node_name!r}: attribute {attr!r} has no value")
        labels.setdefault(attr, set()).update(values)
    return labels


def _parse_chain(line: str, line_number: int) -> list[tuple[str, str | None, dict]]:
    """Split one line into node specs, validating the chain structure."""
    nodes: list[tuple[str, str | None, dict]] = []
    position = 0
    first = True
    while position < len(line):
        if not first:
            dash = re.match(r"\s*-\s*", line[position:])
            if dash is None:
                raise QueryError(
                    f"line {line_number}: expected '-' between nodes near "
                    f"{line[position:position + 12]!r}"
                )
            position += dash.end()
        node_match = _NODE_RE.match(line, position)
        if node_match is None:
            raise QueryError(
                f"line {line_number}: expected a (node) near "
                f"{line[position:position + 12]!r}"
            )
        name = node_match.group("name")
        node_type = node_match.group("type")
        labels_text = node_match.group("labels") or ""
        nodes.append((name, node_type, _parse_labels(labels_text, name)))
        position = node_match.end()
        first = False
        if not line[position:].strip():
            break
    if not nodes:
        raise QueryError(f"line {line_number}: no nodes found")
    return nodes


def parse_pattern(text: str) -> ParsedPattern:
    """Parse ``text`` into a query graph (see module docstring)."""
    lines = [
        segment.strip()
        for raw_line in text.splitlines()
        for segment in raw_line.split(";")
        if segment.strip() and not segment.strip().startswith("#")
    ]
    if not lines:
        raise QueryError("empty pattern")

    graph = AttributedGraph("pattern")
    bindings: dict[str, int] = {}
    types: dict[str, str] = {}
    labels: dict[str, dict[str, set[str]]] = {}
    edges: set[tuple[int, int]] = set()

    def ensure_node(name: str, node_type: str | None, node_labels: dict) -> int:
        if name not in bindings:
            if node_type is None:
                raise QueryError(
                    f"node {name!r} is used before its type is declared"
                )
            bindings[name] = len(bindings)
            types[name] = node_type
            labels[name] = {a: set(v) for a, v in node_labels.items()}
        else:
            if node_type is not None and node_type != types[name]:
                raise QueryError(
                    f"node {name!r} declared with conflicting types "
                    f"{types[name]!r} and {node_type!r}"
                )
            for attr, values in node_labels.items():
                labels[name].setdefault(attr, set()).update(values)
        return bindings[name]

    for line_number, line in enumerate(lines, start=1):
        chain = _parse_chain(line, line_number)
        ids = [ensure_node(*node) for node in chain]
        for u, v in zip(ids, ids[1:]):
            if u == v:
                raise QueryError(
                    f"line {line_number}: a node cannot link to itself"
                )
            edges.add((min(u, v), max(u, v)))

    for name, vid in bindings.items():
        graph.add_vertex(vid, types[name], labels[name])
    for u, v in sorted(edges):
        graph.add_edge(u, v)
    if graph.vertex_count > 1 and not graph.is_connected():
        raise QueryError("pattern is disconnected; queries must be connected")
    return ParsedPattern(graph=graph, bindings=bindings)
