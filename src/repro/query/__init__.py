"""Declarative query front-end (pattern DSL)."""

from repro.query.dsl import ParsedPattern, parse_pattern

__all__ = ["parse_pattern", "ParsedPattern"]
