"""Verification of the k-automorphism property of a published graph.

These checks back the privacy claim (any structural attack identifies a
vertex with probability at most 1/k) and the correctness machinery
(Theorem 3 requires the automorphic functions to preserve vertex types
and label groups).  They are used by tests and can be run by a cautious
data owner before publishing.
"""

from __future__ import annotations

from repro.exceptions import VerificationError
from repro.graph.attributed import AttributedGraph
from repro.kauto.avt import AlignmentVertexTable


def verify_k_automorphism(gk: AttributedGraph, avt: AlignmentVertexTable) -> None:
    """Raise :class:`VerificationError` unless ``gk`` is k-automorphic.

    Checks, for the cyclic symmetry encoded by ``avt``:

    * the AVT covers exactly the vertices of ``gk`` and every block has
      the same size (Definition 3);
    * ``F_1`` is fixed-point free, hence so is every ``F_m`` (m != 0);
    * ``F_1`` is a graph automorphism (edge preserving bijection);
    * ``F_1`` preserves vertex types and label sets, so symmetric
      vertices are indistinguishable to the adversary.

    ``F_m = F_1^m`` holds structurally (rows are circular lists), so
    verifying the generator ``F_1`` verifies the whole group.
    """
    avt_vertices = set(avt.vertex_ids())
    graph_vertices = gk.vertex_id_set()
    if avt_vertices != graph_vertices:
        missing = graph_vertices - avt_vertices
        extra = avt_vertices - graph_vertices
        raise VerificationError(
            f"AVT does not cover Gk exactly (missing={sorted(missing)[:5]}, "
            f"extra={sorted(extra)[:5]})"
        )
    if gk.vertex_count != avt.k * avt.row_count:
        raise VerificationError("blocks do not evenly partition V(Gk)")

    for row in avt.rows():
        if len(set(row)) != avt.k:
            raise VerificationError(f"AVT row {row} repeats a vertex (fixed point)")
        types = {gk.vertex(v).vertex_type for v in row}
        if len(types) != 1:
            raise VerificationError(
                f"AVT row {row} mixes vertex types {sorted(types)}"
            )
        labels = {
            tuple(sorted((a, tuple(sorted(vs))) for a, vs in gk.vertex(v).labels.items()))
            for v in row
        }
        if len(labels) != 1:
            raise VerificationError(f"AVT row {row} has diverging label sets")

    f1 = avt.function(1)
    for u, v in gk.edges():
        if not gk.has_edge(f1(u), f1(v)):
            raise VerificationError(
                f"F1 is not an automorphism: edge ({u}, {v}) maps to a non-edge"
            )


def verify_blocks_isomorphic(gk: AttributedGraph, avt: AlignmentVertexTable) -> None:
    """Check every block's induced subgraph matches block B1 under F_m.

    Stronger but cheaper than a generic isomorphism search: the AVT
    prescribes the isomorphism, so it only needs to be checked.
    """
    b1 = avt.first_block()
    b1_graph = gk.induced_subgraph(b1)
    for m in range(1, avt.k):
        f_m = avt.function(m)
        for u, v in b1_graph.edges():
            if not gk.has_edge(f_m(u), f_m(v)):
                raise VerificationError(
                    f"block 0 edge ({u}, {v}) missing its image in block {m}"
                )
        block_m = gk.induced_subgraph(avt.block(m))
        if block_m.edge_count != b1_graph.edge_count:
            raise VerificationError(
                f"block {m} has {block_m.edge_count} intra edges, "
                f"block 0 has {b1_graph.edge_count}"
            )


def identification_probability(avt: AlignmentVertexTable) -> float:
    """Upper bound on re-identification probability: 1/k."""
    return 1.0 / avt.k
