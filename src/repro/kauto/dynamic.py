"""Incremental maintenance of a k-automorphic release.

The paper treats publication as one-shot; real deployments insert and
delete edges continuously, and re-running the full transform per update
would be prohibitive.  This module maintains the published ``Gk`` (and
its AVT) under updates to the original graph ``G`` while preserving the
k-automorphism invariant, using one observation:

    ``F_1`` stays an automorphism iff the edge set of ``Gk`` remains a
    union of orbits under the cyclic group {F_0..F_{k-1}}.

so every structural update is applied *orbit-wise*:

* **edge insertion** — add the whole orbit
  ``{(F_m(u), F_m(v)) : m}`` (the image edges become noise edges);
* **edge deletion** — deleting an original edge only removes its orbit
  if no *other* original edge lives in the same orbit; otherwise the
  deleted edge silently degrades into a noise edge (privacy must not
  shrink the published edge set below what symmetry requires);
* **vertex insertion** — a new vertex needs ``k-1`` symmetric twins:
  a fresh AVT row is appended with one noise vertex per other block,
  all sharing the new vertex's (generalized) label set.

After any sequence of updates, ``verify_k_automorphism`` still passes
and the standard pipeline (``Go`` extraction, cloud query, client
filter) remains exact — see ``tests/test_kauto_dynamic.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.anonymize.lct import LabelCorrespondenceTable
from repro.exceptions import GraphError
from repro.graph.attributed import AttributedGraph, LabelMap
from repro.kauto.avt import AlignmentVertexTable
from repro.kauto.builder import KAutomorphismResult


@dataclass
class UpdateLog:
    """What one update did to the published graph."""

    added_edges: list[tuple[int, int]] = field(default_factory=list)
    removed_edges: list[tuple[int, int]] = field(default_factory=list)
    added_vertices: list[int] = field(default_factory=list)


class DynamicRelease:
    """A live release: the original ``G`` plus its maintained ``Gk``.

    Wraps a :class:`KAutomorphismResult` (and the LCT used to
    generalize labels) and keeps ``original``, ``gk`` and the AVT
    mutually consistent under updates.  Extract a fresh ``Go`` with
    :meth:`refresh_outsourced` after a batch of updates.
    """

    def __init__(
        self,
        original: AttributedGraph,
        transform: KAutomorphismResult,
        lct: LabelCorrespondenceTable,
    ):
        self.original = original
        self.transform = transform
        self.lct = lct

    @property
    def gk(self) -> AttributedGraph:
        return self.transform.gk

    @property
    def avt(self) -> AlignmentVertexTable:
        return self.transform.avt

    @property
    def k(self) -> int:
        return self.transform.k

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def _edge_orbit(self, u: int, v: int) -> list[tuple[int, int]]:
        avt = self.avt
        orbit = {
            tuple(sorted((avt.apply(u, m), avt.apply(v, m)))) for m in range(self.k)
        }
        return sorted(orbit)  # type: ignore[arg-type]

    def insert_edge(self, u: int, v: int) -> UpdateLog:
        """Add edge (u, v) to ``G`` and its orbit to ``Gk``."""
        if u not in self.original or v not in self.original:
            raise GraphError(f"edge ({u}, {v}) references a vertex not in G")
        log = UpdateLog()
        if not self.original.has_edge(u, v):
            self.original.add_edge(u, v)
        for a, b in self._edge_orbit(u, v):
            if self.gk.add_edge(a, b):
                log.added_edges.append((a, b))
        return log

    def delete_edge(self, u: int, v: int) -> UpdateLog:
        """Remove edge (u, v) from ``G``; shrink ``Gk`` when symmetry allows.

        The orbit is removed from ``Gk`` only if none of its members is
        still an edge of the updated ``G`` — otherwise the deleted edge
        remains in ``Gk`` as a noise edge (published data never exposes
        the deletion, which also avoids leaking update patterns).
        """
        if not self.original.has_edge(u, v):
            raise GraphError(f"edge ({u}, {v}) is not in G")
        self.original.remove_edge(u, v)
        log = UpdateLog()
        orbit = self._edge_orbit(u, v)
        if any(self.original.has_edge(a, b) for a, b in orbit):
            return log  # another original edge pins the orbit
        for a, b in orbit:
            if self.gk.has_edge(a, b):
                self.gk.remove_edge(a, b)
                log.removed_edges.append((a, b))
        return log

    def allocate_vertex_id(self) -> int:
        """A fresh vertex id, guaranteed unused by both ``G`` and ``Gk``.

        ``Gk`` holds noise twins with ids the caller never chose, so
        picking "my max id + 1" on the original graph can collide; use
        this allocator when inserting vertices.
        """
        return max(self.gk.vertex_ids(), default=-1) + 1

    def insert_vertex(
        self,
        vertex_id: int,
        vertex_type: str,
        labels: LabelMap | None = None,
    ) -> UpdateLog:
        """Add a vertex to ``G`` plus a fresh symmetric row to ``Gk``.

        The new row holds the real vertex in block ``B1`` and ``k-1``
        noise twins in the other blocks, all carrying the generalized
        label groups of the new vertex.  ``vertex_id`` must be unused
        by the *published* graph too (noise twins occupy ids beyond
        ``G``'s) — :meth:`allocate_vertex_id` provides a safe one.
        """
        if vertex_id in self.original:
            raise GraphError(f"vertex {vertex_id} already exists in G")
        if vertex_id in self.gk:
            raise GraphError(
                f"vertex id {vertex_id} is taken by a published noise twin; "
                "use allocate_vertex_id()"
            )
        log = UpdateLog()
        self.original.add_vertex(vertex_id, vertex_type, labels)

        generalized = self.lct.generalize_label_map(
            vertex_type, self.original.vertex(vertex_id).labels
        )
        next_id = max(
            max(self.gk.vertex_ids(), default=-1),
            vertex_id,
        ) + 1
        row = [vertex_id]
        self.gk.add_vertex(vertex_id, vertex_type, generalized)
        log.added_vertices.append(vertex_id)
        for _ in range(self.k - 1):
            self.gk.add_vertex(next_id, vertex_type, generalized)
            row.append(next_id)
            log.added_vertices.append(next_id)
            self.transform.noise_vertex_ids.append(next_id)
            next_id += 1

        rows = [list(existing) for existing in self.avt.rows()]
        rows.append(row)
        self.transform.avt = AlignmentVertexTable(rows)
        return log

    # ------------------------------------------------------------------
    # derived artifacts
    # ------------------------------------------------------------------
    def refresh_outsourced(self):
        """Extract a fresh ``Go`` reflecting all updates so far."""
        from repro.outsource import build_outsourced_graph

        return build_outsourced_graph(self.gk, self.avt)

    def go_delta(self, log: UpdateLog):
        """The cloud-side delta one :class:`UpdateLog` induces on ``Go``.

        ``Go`` holds block ``B1`` + its 1-hop neighbours + edges
        incident to ``B1``; the delta carries exactly the log's edge
        changes incident to ``B1`` (with payloads for vertices newly
        entering ``Go``) and any appended AVT rows.  Ship it with
        :func:`repro.outsource.delta.apply_go_delta` instead of
        re-uploading the whole graph.
        """
        from repro.outsource.delta import GoDelta

        block = set(self.avt.first_block())
        delta = GoDelta()
        known_new: set[int] = set()

        def ensure_vertex(vid: int) -> None:
            if vid in known_new:
                return
            data = self.gk.vertex(vid)
            delta.added_vertices.append(
                (vid, data.vertex_type, {a: sorted(v) for a, v in data.labels.items()})
            )
            known_new.add(vid)

        # fresh symmetric rows: the B1 member (and only it) enters Go
        for vid in log.added_vertices:
            row, block_index = self.avt.position(vid)
            if block_index == 0:
                ensure_vertex(vid)
                delta.added_block_vertices.append(vid)
                delta.added_avt_rows.append(list(self.avt.row(row)))
                block.add(vid)

        for u, v in log.added_edges:
            if u in block or v in block:
                # B1 vertices are already stored cloud-side; only an
                # endpoint outside B1 may be entering N1 right now
                for endpoint in (u, v):
                    if endpoint not in block:
                        ensure_vertex(endpoint)
                delta.added_edges.append((u, v))
        for u, v in log.removed_edges:
            if u in block or v in block:
                delta.removed_edges.append((u, v))
        return delta

    def noise_edge_count(self) -> int:
        """Current |E(Gk)| - |E(G)| (deletions can raise this)."""
        return self.gk.edge_count - self.original.edge_count
