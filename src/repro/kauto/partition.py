"""Multilevel k-way graph partitioning (METIS substitute).

The paper partitions ``G`` into ``k`` blocks with METIS [11] before
building the k-automorphic graph; the number of noise edges the
transform must add grows with the number of *crossing* edges between
blocks, so cut quality directly controls the privacy overhead
(Figure 11).  This module implements the same multilevel scheme family
as METIS, from scratch:

1. **Coarsening** — repeated heavy-edge matching collapses matched
   vertex pairs into super-vertices, keeping vertex and edge weights.
2. **Initial partitioning** — greedy BFS region growing on the
   coarsest graph produces ``k`` weight-balanced parts.
3. **Uncoarsening + refinement** — at every level a boundary
   Kernighan–Lin/FM pass moves vertices to the part where they have the
   most edge weight, subject to a balance tolerance.

The result is a list of ``k`` disjoint vertex-id lists covering the
graph.  Blocks are *approximately* balanced; exact equalization (and
per-type equalization, needed by the type-aware alignment) is done by
the k-automorphism builder with noise vertices.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.exceptions import PartitionError
from repro.graph.attributed import AttributedGraph


@dataclass
class _Level:
    """One coarsening level: a weighted graph plus the projection map."""

    # adjacency with edge weights: u -> {v: weight}
    adj: dict[int, dict[int, int]]
    vertex_weight: dict[int, int]
    # coarse vertex -> vertices of the *finer* level it absorbed
    members: dict[int, list[int]] = field(default_factory=dict)

    @property
    def vertex_count(self) -> int:
        return len(self.vertex_weight)

    def total_weight(self) -> int:
        return sum(self.vertex_weight.values())


def _level_from_graph(graph: AttributedGraph) -> _Level:
    adj = {vid: {} for vid in graph.vertex_ids()}
    for u, v in graph.edges():
        adj[u][v] = 1
        adj[v][u] = 1
    weights = {vid: 1 for vid in graph.vertex_ids()}
    return _Level(adj=adj, vertex_weight=weights)


def _heavy_edge_matching(level: _Level, rng: random.Random) -> dict[int, int]:
    """Match each vertex with its heaviest unmatched neighbour.

    Returns a map vertex -> partner (symmetric); unmatched vertices map
    to themselves.
    """
    order = list(level.adj)
    rng.shuffle(order)
    partner: dict[int, int] = {}
    for u in order:
        if u in partner:
            continue
        best, best_w = None, -1
        for v, w in level.adj[u].items():
            if v not in partner and v != u and w > best_w:
                best, best_w = v, w
        if best is None:
            partner[u] = u
        else:
            partner[u] = best
            partner[best] = u
    return partner


def _coarsen(level: _Level, rng: random.Random) -> _Level | None:
    """One coarsening step; None if matching can no longer shrink much."""
    partner = _heavy_edge_matching(level, rng)
    # name coarse vertices 0..; map fine -> coarse
    coarse_of: dict[int, int] = {}
    members: dict[int, list[int]] = {}
    next_id = 0
    for u in level.adj:
        if u in coarse_of:
            continue
        v = partner[u]
        cid = next_id
        next_id += 1
        coarse_of[u] = cid
        group = [u]
        if v != u and v not in coarse_of:
            coarse_of[v] = cid
            group.append(v)
        members[cid] = group
    if next_id > 0.95 * level.vertex_count:
        return None  # matching stalled; stop coarsening

    coarse_adj: dict[int, dict[int, int]] = {cid: {} for cid in members}
    coarse_weight = {
        cid: sum(level.vertex_weight[u] for u in group)
        for cid, group in members.items()
    }
    for u, nbrs in level.adj.items():
        cu = coarse_of[u]
        for v, w in nbrs.items():
            cv = coarse_of[v]
            if cu == cv:
                continue
            coarse_adj[cu][cv] = coarse_adj[cu].get(cv, 0) + w
    # Each fine edge (u, v) contributes once to coarse_adj[cu][cv] (seen
    # from u) and once to the symmetric slot coarse_adj[cv][cu] (seen
    # from v), so the directional weights are already correct.
    return _Level(adj=coarse_adj, vertex_weight=coarse_weight, members=members)


def _initial_partition(level: _Level, k: int, rng: random.Random) -> dict[int, int]:
    """Greedy BFS region growing into ``k`` weight-balanced parts."""
    total = level.total_weight()
    target = total / k if k else 0
    unassigned = set(level.adj)
    assignment: dict[int, int] = {}
    for part in range(k - 1):
        if not unassigned:
            break
        # seed: highest-degree unassigned vertex for compact regions
        seed = max(unassigned, key=lambda v: len(level.adj[v]))
        weight = 0
        frontier = [seed]
        region: set[int] = set()
        while frontier and weight < target:
            u = frontier.pop()
            if u not in unassigned or u in region:
                continue
            region.add(u)
            weight += level.vertex_weight[u]
            nbrs = [v for v in level.adj[u] if v in unassigned and v not in region]
            rng.shuffle(nbrs)
            frontier.extend(nbrs)
            if not frontier:
                remaining = unassigned - region
                if remaining and weight < target:
                    frontier.append(next(iter(remaining)))
        for u in region:
            assignment[u] = part
        unassigned -= region
    for u in unassigned:
        assignment[u] = k - 1
    return assignment


def _refine(
    level: _Level,
    assignment: dict[int, int],
    k: int,
    passes: int,
    tolerance: float,
) -> None:
    """Greedy boundary FM refinement, in place."""
    part_weight = [0] * k
    for u, p in assignment.items():
        part_weight[p] += level.vertex_weight[u]
    total = sum(part_weight)
    max_weight = (1.0 + tolerance) * total / k if k else 0.0

    for _ in range(passes):
        moved = 0
        for u, nbrs in level.adj.items():
            current = assignment[u]
            # edge weight toward each part
            toward = [0] * k
            for v, w in nbrs.items():
                toward[assignment[v]] += w
            best_part, best_gain = current, 0
            for p in range(k):
                if p == current:
                    continue
                gain = toward[p] - toward[current]
                if gain > best_gain:
                    if part_weight[p] + level.vertex_weight[u] <= max_weight:
                        best_part, best_gain = p, gain
            if best_part != current:
                part_weight[current] -= level.vertex_weight[u]
                part_weight[best_part] += level.vertex_weight[u]
                assignment[u] = best_part
                moved += 1
        if moved == 0:
            break


def _weighted_cut(level: _Level, assignment: dict[int, int]) -> float:
    cut = 0.0
    for u, nbrs in level.adj.items():
        for v, w in nbrs.items():
            if u < v and assignment[u] != assignment[v]:
                cut += w
    return cut


def partition_graph(
    graph: AttributedGraph,
    k: int,
    seed: int = 0,
    balance_tolerance: float = 0.10,
    refinement_passes: int = 4,
    coarsen_to: int | None = None,
) -> list[list[int]]:
    """Partition ``graph`` into ``k`` blocks minimizing crossing edges.

    Returns ``k`` disjoint, collectively exhaustive lists of vertex
    ids (some may be empty when the graph is tiny).  Deterministic for
    a fixed ``seed``.
    """
    if k < 1:
        raise PartitionError("k must be >= 1")
    if k == 1:
        return [sorted(graph.vertex_ids())]
    if graph.vertex_count == 0:
        return [[] for _ in range(k)]

    rng = random.Random(seed)
    levels = [_level_from_graph(graph)]
    threshold = coarsen_to if coarsen_to is not None else max(64, 24 * k)
    while levels[-1].vertex_count > threshold:
        coarser = _coarsen(levels[-1], rng)
        if coarser is None:
            break
        levels.append(coarser)

    # several random restarts at the (cheap) coarsest level; keep the
    # assignment with the smallest cut
    best_assignment: dict[int, int] | None = None
    best_cut = float("inf")
    for _ in range(4):
        candidate = _initial_partition(levels[-1], k, rng)
        _refine(levels[-1], candidate, k, refinement_passes, balance_tolerance)
        cut = _weighted_cut(levels[-1], candidate)
        if cut < best_cut:
            best_assignment, best_cut = candidate, cut
    assert best_assignment is not None
    assignment = best_assignment

    # project back through the levels, refining at each
    for fine, coarse in zip(reversed(levels[:-1]), reversed(levels[1:])):
        fine_assignment: dict[int, int] = {}
        for cid, group in coarse.members.items():
            for u in group:
                fine_assignment[u] = assignment[cid]
        assignment = fine_assignment
        _refine(fine, assignment, k, refinement_passes, balance_tolerance)

    blocks: list[list[int]] = [[] for _ in range(k)]
    for vid, part in assignment.items():
        blocks[part].append(vid)
    for block in blocks:
        block.sort()
    return blocks


def balance_types(
    graph: AttributedGraph,
    blocks: list[list[int]],
) -> list[list[int]]:
    """Equalize per-type vertex counts across blocks by greedy moves.

    The type-aware AVT pads every (block, type) deficit with a noise
    vertex, so per-type imbalance translates directly into noise
    vertices.  This post-pass moves vertices from over-full to
    under-full blocks (per type), choosing the vertex with the fewest
    connections inside its current block so the cut grows as little as
    possible.  After the pass, per-type counts differ by at most one
    across blocks (zero padding when counts divide evenly).
    """
    k = len(blocks)
    if k <= 1:
        return [sorted(block) for block in blocks]
    blocks = [list(block) for block in blocks]
    block_of: dict[int, int] = {}
    for index, block in enumerate(blocks):
        for vid in block:
            block_of[vid] = index

    by_type: dict[str, list[int]] = {}
    for vid in block_of:
        by_type.setdefault(graph.vertex(vid).vertex_type, []).append(vid)

    def internal_degree(vid: int) -> int:
        home = block_of[vid]
        return sum(1 for n in graph.neighbors(vid) if block_of.get(n) == home)

    for vertex_type, members in by_type.items():
        counts = [0] * k
        for vid in members:
            counts[block_of[vid]] += 1
        floor = len(members) // k
        remainder = len(members) - floor * k
        # fixed quotas: the blocks that already hold the most vertices
        # of this type keep the +1 shares (fewest moves needed)
        initially_largest = sorted(range(k), key=lambda b: (-counts[b], b))
        quota = {
            b: floor + (1 if rank < remainder else 0)
            for rank, b in enumerate(initially_largest)
        }
        while True:
            over = [b for b in range(k) if counts[b] > quota[b]]
            under = [b for b in range(k) if counts[b] < quota[b]]
            if not over or not under:
                break
            source = over[0]
            destination = under[0]
            movable = [
                vid
                for vid in blocks[source]
                if graph.vertex(vid).vertex_type == vertex_type
            ]
            mover = min(movable, key=lambda vid: (internal_degree(vid), vid))
            blocks[source].remove(mover)
            blocks[destination].append(mover)
            block_of[mover] = destination
            counts[source] -= 1
            counts[destination] += 1
    return [sorted(block) for block in blocks]


def cut_size(graph: AttributedGraph, blocks: list[list[int]]) -> int:
    """Number of edges of ``graph`` crossing between different blocks."""
    part_of: dict[int, int] = {}
    for i, block in enumerate(blocks):
        for vid in block:
            part_of[vid] = i
    return sum(1 for u, v in graph.edges() if part_of[u] != part_of[v])


def validate_partition(graph: AttributedGraph, blocks: list[list[int]], k: int) -> None:
    """Raise :class:`PartitionError` unless blocks form a k-way partition."""
    if len(blocks) != k:
        raise PartitionError(f"expected {k} blocks, got {len(blocks)}")
    seen: set[int] = set()
    for block in blocks:
        for vid in block:
            if vid in seen:
                raise PartitionError(f"vertex {vid} appears in two blocks")
            seen.add(vid)
    missing = graph.vertex_id_set() - seen
    extra = seen - graph.vertex_id_set()
    if missing:
        raise PartitionError(f"vertices not assigned to any block: {sorted(missing)[:5]}")
    if extra:
        raise PartitionError(f"unknown vertices in blocks: {sorted(extra)[:5]}")
