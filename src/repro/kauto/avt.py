"""Alignment Vertex Table (AVT) and the automorphic functions ``F_m``.

Definition 4 of the paper: each row of the AVT is an *alignment vertex
instance* (AVI) — ``k`` mutually symmetric vertices, one per block.
The automorphic function ``F_m`` maps each vertex ``m`` steps along its
row's circular list, i.e. from block ``b`` to block ``(b + m) mod k``.

The AVT is published to the cloud together with ``Go`` — it contains
only vertex-id pairings, which by construction are symmetric in ``Gk``
and therefore reveal nothing beyond what ``Gk`` itself would.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.analysis.markers import hot_path
from repro.exceptions import VerificationError
from repro.matching import vec
from repro.matching.match import Match
from repro.matching.table import MatchTable, Row, dedupe_rows


class AlignmentVertexTable:
    """The AVT: ``rows[i][b]`` is the vertex of row ``i`` in block ``b``."""

    def __init__(self, rows: Iterable[Iterable[int]]):
        self._rows: list[tuple[int, ...]] = [tuple(row) for row in rows]
        if not self._rows:
            raise VerificationError("AVT must have at least one row")
        k = len(self._rows[0])
        if k < 1:
            raise VerificationError("AVT rows must be non-empty")
        self._k = k
        self._position: dict[int, tuple[int, int]] = {}
        for i, row in enumerate(self._rows):
            if len(row) != k:
                raise VerificationError(
                    f"AVT row {i} has {len(row)} entries, expected {k}"
                )
            for b, vid in enumerate(row):
                if vid in self._position:
                    raise VerificationError(f"vertex {vid} appears twice in AVT")
                self._position[vid] = (i, b)
        # Per-shift id-remap lookup tables (``_luts[m][vid] == F_m(vid)``)
        # built lazily on first columnar expansion.  The AVT is immutable
        # after construction, so a duplicated lazy build under a race is
        # benign (both threads compute identical tables; the final
        # assignment is atomic under the GIL).
        self._luts: list[dict[int, int]] | None = None
        # Dense per-shift int64 gather LUTs (``_vluts[0][m][vid]`` ==
        # ``F_m(vid)``, -1 = unknown) plus a membership flag array; the
        # vectorized expansion applies ``F_m`` to a whole column as one
        # fancy-indexing gather.  ``False`` = ineligible (no numpy, or
        # the id space is negative/too sparse); ``None`` = not built yet.
        self._vluts: tuple[list[Any], Any] | None | bool = None

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        return self._k

    @property
    def row_count(self) -> int:
        return len(self._rows)

    def rows(self) -> Iterator[tuple[int, ...]]:
        return iter(self._rows)

    def row(self, index: int) -> tuple[int, ...]:
        return self._rows[index]

    def block(self, b: int) -> list[int]:
        """All vertices of block ``b`` (column ``b`` of the table)."""
        if not 0 <= b < self._k:
            raise VerificationError(f"block index {b} out of range for k={self._k}")
        return [row[b] for row in self._rows]

    def first_block(self) -> list[int]:
        """Block ``B1`` — the block shipped to the cloud inside ``Go``."""
        return self.block(0)

    def vertex_ids(self) -> Iterator[int]:
        return iter(self._position)

    def __contains__(self, vid: int) -> bool:
        return vid in self._position

    def position(self, vid: int) -> tuple[int, int]:
        """(row, block) of ``vid``."""
        try:
            return self._position[vid]
        except KeyError:
            raise VerificationError(f"vertex {vid} not in AVT") from None

    def block_of(self, vid: int) -> int:
        return self.position(vid)[1]

    def symmetric_group(self, vid: int) -> tuple[int, ...]:
        """The AVI (row) containing ``vid``: all its symmetric vertices."""
        return self._rows[self.position(vid)[0]]

    # ------------------------------------------------------------------
    # automorphic functions
    # ------------------------------------------------------------------
    def apply(self, vid: int, m: int) -> int:
        """``F_m(vid)``: shift ``m`` blocks along the row, circularly."""
        row, block = self.position(vid)
        return self._rows[row][(block + m) % self._k]

    def function(self, m: int) -> Callable[[int], int]:
        """``F_m`` as a callable; ``function(0)`` is the identity."""
        shift = m % self._k

        def f_m(vid: int) -> int:
            row, block = self.position(vid)
            return self._rows[row][(block + shift) % self._k]

        return f_m

    def apply_to_match(self, match: Match, m: int) -> Match:
        """Map a match through ``F_m`` (Definition 4's mapping graph)."""
        shift = m % self._k
        rows = self._rows
        position = self._position
        out: Match = {}
        for q, vid in match.items():
            row, block = position[vid]
            out[q] = rows[row][(block + shift) % self._k]
        return out

    def expand_matches(self, matches: Iterable[Match]) -> list[Match]:
        """Union of ``F_m(matches)`` for all m in 0..k-1."""
        expanded: list[Match] = []
        for m in range(self._k):
            for match in matches:
                expanded.append(self.apply_to_match(match, m))
        return expanded

    # ------------------------------------------------------------------
    # columnar (row) kernels
    # ------------------------------------------------------------------
    def _remap_luts(self) -> list[dict[int, int]]:
        """``luts[m][vid] == F_m(vid)``: one flat lookup per shift.

        Built once per AVT (lazily) so the columnar expansion applies
        ``F_m`` to a row with a single lookup per value instead of a
        position fetch, two tuple indexings and a per-match dict build.
        """
        luts = self._luts
        if luts is None:
            k = self._k
            rows = self._rows
            luts = [dict() for _ in range(k)]
            for vid, (i, b) in self._position.items():
                row = rows[i]
                for m in range(k):
                    luts[m][vid] = row[(b + m) % k]
            self._luts = luts
        return luts

    @hot_path
    def remap_rows(self, rows: Sequence[Row], m: int) -> list[Row]:
        """``F_m`` applied to every row, column-wise.

        Raises ``KeyError`` for any vertex id unknown to the AVT —
        exactly like :meth:`apply_to_match`.  Callers on the client
        path prefilter with :meth:`known_rows` first.
        """
        shift = m % self._k
        if shift == 0:
            return list(rows)
        lut = self._remap_luts()[shift]
        return [tuple(lut[v] for v in row) for row in rows]

    @hot_path
    def expand_rows(self, rows: Sequence[Row]) -> list[Row]:
        """``rows ∪ F_1(rows) ∪ ... ∪ F_{k-1}(rows)`` (duplicates kept).

        The columnar counterpart of :meth:`expand_matches`: identical
        output order (all of ``F_0``, then all of ``F_1``, ...).
        """
        out: list[Row] = list(rows)
        luts = self._remap_luts()
        for m in range(1, self._k):
            lut = luts[m]
            out.extend(tuple(lut[v] for v in row) for row in rows)
        return out

    @hot_path
    def known_rows(self, rows: Iterable[Row]) -> list[Row]:
        """Rows whose every vertex id is in the AVT (order preserved)."""
        position = self._position
        return [row for row in rows if all(v in position for v in row)]

    # ------------------------------------------------------------------
    # vectorized (flat-column) kernels
    # ------------------------------------------------------------------
    def _vector_luts(self) -> tuple[list[Any], Any] | None:
        """Dense gather LUTs ``(luts, in_avt)``, or ``None`` if ineligible.

        ``luts[m]`` is an int64 array with ``luts[m][vid] == F_m(vid)``
        and -1 for ids not in the AVT; ``in_avt`` is the matching
        boolean membership array.  Built once (the AVT is immutable);
        ineligible when numpy is absent or the id space is negative or
        too sparse for a dense array.
        """
        cached = self._vluts
        if cached is False:
            return None
        if isinstance(cached, tuple):
            return cached
        if not vec.HAVE_NUMPY:
            self._vluts = False
            return None
        max_id = max(self._position)
        if min(self._position) < 0 or max_id >= vec.DENSE_LUT_LIMIT:
            self._vluts = False
            return None
        size = max_id + 1
        luts = [
            vec.dense_lut(lut.items(), size, -1) for lut in self._remap_luts()
        ]
        flags = vec.membership_flags(self._position, size)
        built = (luts, flags)
        self._vluts = built
        return built

    @hot_path
    def expand_table(self, table: MatchTable) -> MatchTable | None:
        """:meth:`expand_rows` as per-shift column gathers, or ``None``.

        Returns a flat-column table with the same rows (duplicates
        kept, ``F_0`` block first) — or ``None`` when the vector LUTs
        are unavailable or some id is unknown to the AVT, in which case
        the caller must run :meth:`expand_rows` (whose ``KeyError``
        semantics are part of the contract).
        """
        built = self._vector_luts()
        if built is None or not table.schema:
            return None
        cols = table.as_columns()
        if cols is None:
            return None
        np = vec.np
        luts, _ = built
        nd_cols = [vec.as_ndarray(col) for col in cols]
        out_cols: list[Any] = []
        for col in nd_cols:
            parts = [col]
            for m in range(1, self._k):
                mapped = vec.bounded_lookup(luts[m], col, -1)
                if len(mapped) and bool((mapped == -1).any()):
                    return None
                parts.append(mapped)
            out_cols.append(np.concatenate(parts) if parts else col)
        return MatchTable.from_columns(
            table.schema, out_cols, len(table) * self._k
        )

    @hot_path
    def expand_known_table(self, table: MatchTable) -> MatchTable:
        """Known rows → ``F_0..F_{k-1}`` expansion → dedupe, as a table.

        The three-step kernel shared by the client's Rin expansion and
        the gateway's cloud-side expansion.  Vectorized when the vec
        mode and the LUTs allow: the known-row filter is a bulk
        membership gather, each ``F_m`` a column gather, the dedupe a
        single first-seen pass.  Rows are identical (same order) to
        ``dedupe_rows(self.expand_rows(self.known_rows(table.rows)))``.
        """
        if table.schema and vec.vectorize(len(table)):
            built = self._vector_luts()
            cols = table.as_columns() if built is not None else None
            if built is not None and cols is not None:
                np = vec.np
                luts, flags = built
                nd_cols = [vec.as_ndarray(col) for col in cols]
                known = vec.bounded_flags(flags, nd_cols[0])
                for col in nd_cols[1:]:
                    known &= vec.bounded_flags(flags, col)
                kept = [col[known] for col in nd_cols]
                out_cols = [
                    np.concatenate(
                        [col]
                        + [luts[m][col] for m in range(1, self._k)]
                    )
                    for col in kept
                ]
                expanded = MatchTable.from_columns(
                    table.schema, out_cols, len(kept[0]) * self._k
                )
                return expanded.deduped()
        usable = self.known_rows(table.rows)
        return MatchTable(
            table.schema, dedupe_rows(self.expand_rows(usable))
        )

    def to_block_anchor(self, vid: int) -> tuple[int, int]:
        """Return ``(m, v)`` with ``v in B1`` and ``F_m(v) == vid``."""
        row, block = self.position(vid)
        return block, self._rows[row][0]

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {"k": self._k, "rows": [list(row) for row in self._rows]}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "AlignmentVertexTable":
        avt = cls(data["rows"])
        if avt.k != data.get("k", avt.k):
            raise VerificationError("AVT dict k does not match row width")
        return avt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AlignmentVertexTable(k={self._k}, rows={self.row_count})"
