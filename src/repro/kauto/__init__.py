"""k-automorphism substrate (Zou et al., VLDB'09, as used by the paper)."""

from repro.kauto.alignment import align_blocks, bfs_order, build_avt
from repro.kauto.avt import AlignmentVertexTable
from repro.kauto.builder import KAutomorphismResult, build_k_automorphic_graph
from repro.kauto.dynamic import DynamicRelease, UpdateLog
from repro.kauto.edge_copy import copy_crossing_edges
from repro.kauto.partition import (
    cut_size,
    partition_graph,
    validate_partition,
)
from repro.kauto.spectral import spectral_partition
from repro.kauto.verify import (
    identification_probability,
    verify_blocks_isomorphic,
    verify_k_automorphism,
)

__all__ = [
    "AlignmentVertexTable",
    "build_avt",
    "bfs_order",
    "align_blocks",
    "copy_crossing_edges",
    "build_k_automorphic_graph",
    "KAutomorphismResult",
    "partition_graph",
    "spectral_partition",
    "cut_size",
    "validate_partition",
    "DynamicRelease",
    "UpdateLog",
    "verify_k_automorphism",
    "verify_blocks_isomorphic",
    "identification_probability",
]
