"""Spectral k-way partitioning (alternative METIS substitute).

Recursive spectral bisection: split on the sign structure of the
Fiedler vector (the eigenvector of the graph Laplacian's second-
smallest eigenvalue), recursing until ``k`` parts exist, then polish
with the same FM refinement the multilevel partitioner uses.  Spectral
methods often find smoother cuts on well-clustered graphs; the
multilevel scheme is faster and more robust on irregular ones —
``benchmarks/bench_partitioner_quality.py`` compares them.

Uses scipy's sparse eigensolver; falls back to a balanced index split
for components too small for the solver.

numpy and scipy are optional dependencies of the package (the matching
pipeline degrades to ``array('q')`` kernels without them — see
:mod:`repro.matching.vec`); this module stays importable either way and
raises :class:`~repro.exceptions.PartitionError` at call time when the
solver stack is missing.
"""

from __future__ import annotations

from typing import Any

try:  # pragma: no cover - exercised by the no-numpy CI leg
    import numpy as np
    from scipy.sparse import csr_matrix
    from scipy.sparse.linalg import eigsh
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None  # type: ignore[assignment]
    csr_matrix: Any = None
    eigsh: Any = None

from repro.exceptions import PartitionError
from repro.graph.attributed import AttributedGraph
from repro.kauto.partition import _level_from_graph, _refine

#: Whether the sparse eigensolver stack (numpy + scipy) is importable.
HAVE_SPECTRAL: bool = np is not None


def fiedler_order(graph: AttributedGraph, vertices: list[int]) -> list[int]:
    """Vertices sorted by their Fiedler-vector coordinate.

    Sorting by the second Laplacian eigenvector places vertices so that
    contiguous prefixes are good cuts; ties and solver failures degrade
    to the input (id) order.
    """
    n = len(vertices)
    if n < 4:
        return list(vertices)
    index = {vid: i for i, vid in enumerate(vertices)}
    member = set(vertices)

    rows: list[int] = []
    cols: list[int] = []
    for vid in vertices:
        for nbr in graph.neighbors(vid):
            if nbr in member:
                rows.append(index[vid])
                cols.append(index[nbr])
    if not rows:
        return list(vertices)
    data = np.ones(len(rows))
    adjacency = csr_matrix((data, (rows, cols)), shape=(n, n))
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    laplacian = csr_matrix(
        (degrees, (np.arange(n), np.arange(n))), shape=(n, n)
    ) - adjacency

    try:
        # smallest two eigenpairs; sigma-shift for numerical stability
        _, eigenvectors = eigsh(laplacian.asfptype(), k=2, sigma=-1e-5, which="LM")
    except Exception:
        return list(vertices)
    fiedler = eigenvectors[:, 1]
    return [vid for _, vid in sorted(zip(fiedler, vertices), key=lambda p: (p[0], p[1]))]


def _split_counts(total: int, k: int) -> tuple[int, int]:
    """Proportional split of ``total`` vertices into ceil/floor halves of k."""
    left_parts = (k + 1) // 2
    left = round(total * left_parts / k)
    return left, total - left


def spectral_partition(
    graph: AttributedGraph,
    k: int,
    refinement_passes: int = 4,
    balance_tolerance: float = 0.10,
) -> list[list[int]]:
    """Recursive spectral bisection into ``k`` blocks + FM polish."""
    if not HAVE_SPECTRAL:
        raise PartitionError(
            "spectral partitioning requires numpy and scipy "
            "(install the package's 'fast' extra); the multilevel "
            "partitioner has no such dependency"
        )
    if k < 1:
        raise PartitionError("k must be >= 1")
    vertices = sorted(graph.vertex_ids())
    if k == 1:
        return [vertices]

    def recurse(part: list[int], parts: int) -> list[list[int]]:
        if parts == 1:
            return [part]
        ordered = fiedler_order(graph, part)
        left_size, _ = _split_counts(len(ordered), parts)
        left, right = ordered[:left_size], ordered[left_size:]
        left_parts = (parts + 1) // 2
        return recurse(left, left_parts) + recurse(right, parts - left_parts)

    blocks = recurse(vertices, k)
    # polish at the fine level with the shared FM refinement
    if graph.vertex_count:
        level = _level_from_graph(graph)
        assignment = {
            vid: block_index
            for block_index, block in enumerate(blocks)
            for vid in block
        }
        _refine(level, assignment, k, refinement_passes, balance_tolerance)
        blocks = [[] for _ in range(k)]
        for vid, part in assignment.items():
            blocks[part].append(vid)
    return [sorted(block) for block in blocks]
