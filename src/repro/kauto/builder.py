"""End-to-end construction of the k-automorphic graph ``Gk``.

Pipeline (Section 2.2 of the paper):

1. partition the data graph into ``k`` blocks (multilevel partitioner,
   our METIS substitute);
2. build the Alignment Vertex Table, padding blocks with noise vertices
   so every block carries the same number of vertices per type;
3. *block alignment* — replicate intra-block adjacency across blocks;
4. *edge copy* — close crossing edges under the automorphic functions;
5. unify label sets along each AVT row (each symmetric vertex group
   shares the union of its members' label groups, Section 3).

The input graph is expected to carry **generalized** labels (label
group ids) — the builder is label-agnostic and simply unions whatever
labels it finds, so running it on a raw-labeled graph would leak raw
labels into symmetric vertices.  The :class:`repro.core.data_owner.
DataOwner` pipeline generalizes first.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import PartitionError
from repro.graph.attributed import AttributedGraph
from repro.kauto.alignment import align_blocks, build_avt
from repro.kauto.avt import AlignmentVertexTable
from repro.kauto.edge_copy import copy_crossing_edges
from repro.kauto.partition import balance_types, partition_graph, validate_partition
from repro.obs import names
from repro.obs.tracing import NULL_TRACER

Partitioner = Callable[[AttributedGraph, int], list[list[int]]]


@dataclass
class KAutomorphismResult:
    """Everything produced by the transform, plus provenance counters."""

    gk: AttributedGraph
    avt: AlignmentVertexTable
    k: int
    noise_vertex_ids: list[int]
    alignment_noise_edges: list[tuple[int, int]] = field(default_factory=list)
    crossing_noise_edges: list[tuple[int, int]] = field(default_factory=list)
    original_vertex_count: int = 0
    original_edge_count: int = 0
    build_seconds: float = 0.0

    @property
    def noise_edge_count(self) -> int:
        """``|E(Gk)| - |E(G)|`` — the privacy overhead (Figure 11)."""
        return len(self.alignment_noise_edges) + len(self.crossing_noise_edges)

    @property
    def noise_vertex_count(self) -> int:
        return len(self.noise_vertex_ids)


def build_k_automorphic_graph(
    graph: AttributedGraph,
    k: int,
    seed: int = 0,
    partitioner: Partitioner | None = None,
    label_aware_alignment: bool = False,
    type_balancing: bool = True,
    obs=None,
) -> KAutomorphismResult:
    """Transform ``graph`` into a k-automorphic graph ``Gk``.

    ``partitioner`` may override the default multilevel partitioner
    (it must return ``k`` disjoint vertex-id lists covering the graph).
    The returned ``Gk`` contains ``graph`` as an id-preserving subgraph
    (no vertices or edges are ever removed).

    ``label_aware_alignment`` pairs similarly-labeled vertices into
    AVT rows (see :func:`repro.kauto.alignment.build_avt`), trading a
    few extra alignment noise edges for much narrower published label
    groups.

    ``type_balancing`` (default on) equalizes per-type counts across
    blocks after partitioning, minimizing the noise vertices the
    type-aware AVT must pad with.

    ``obs`` (an :class:`repro.obs.Observability`, optional) records a
    span per phase (``kauto.partition`` / ``kauto.alignment`` /
    ``kauto.edge_copy``); ``None`` runs with the shared null tracer.
    """
    if k < 2:
        raise PartitionError("k-automorphism requires k >= 2")
    tracer = obs.tracer if obs is not None else NULL_TRACER
    started = time.perf_counter()

    with tracer.span(names.KAUTO_PARTITION) as span:
        if partitioner is None:
            blocks = partition_graph(graph, k, seed=seed)
        else:
            blocks = partitioner(graph, k)
        validate_partition(graph, blocks, k)
        if type_balancing:
            blocks = balance_types(graph, blocks)
            validate_partition(graph, blocks, k)
        span.set(blocks=len(blocks), block_size=len(blocks[0]) if blocks else 0)

    with tracer.span(names.KAUTO_ALIGNMENT) as span:
        avt, noise_ids, gk = build_avt(
            graph, blocks, label_aware=label_aware_alignment
        )
        gk.name = f"{graph.name}-k{k}"
        alignment_edges = align_blocks(gk, avt)
        span.set(
            noise_vertices=len(noise_ids), alignment_edges=len(alignment_edges)
        )

    with tracer.span(names.KAUTO_EDGE_COPY) as span:
        crossing_edges = copy_crossing_edges(gk, avt)
        _unify_row_labels(gk, avt)
        span.set(crossing_edges=len(crossing_edges))

    return KAutomorphismResult(
        gk=gk,
        avt=avt,
        k=k,
        noise_vertex_ids=noise_ids,
        alignment_noise_edges=alignment_edges,
        crossing_noise_edges=crossing_edges,
        original_vertex_count=graph.vertex_count,
        original_edge_count=graph.edge_count,
        build_seconds=time.perf_counter() - started,
    )


def _unify_row_labels(gk: AttributedGraph, avt: AlignmentVertexTable) -> None:
    """Give every vertex of an AVT row the union of the row's labels.

    Rows are type-homogeneous by construction, so unioning per
    attribute is well defined.  This is the paper's requirement that
    "all vertices in a symmetric vertex group have the same label
    groups": L(v) := L(v) ∪ L(F1(v)) ∪ ... ∪ L(Fk-1(v)).
    """
    for row in avt.rows():
        union: dict[str, set[str]] = {}
        for vid in row:
            for attr, values in gk.vertex(vid).labels.items():
                union.setdefault(attr, set()).update(values)
        if not union:
            continue
        frozen = {attr: sorted(values) for attr, values in union.items()}
        for vid in row:
            gk.set_vertex_labels(vid, frozen)
