"""Edge copy: closing crossing edges under the automorphic functions.

The second half of the k-automorphism construction (Figure 3(c) of the
paper): every edge crossing between two different blocks is copied
through every automorphic function ``F_m`` so the crossing-edge set
becomes invariant under the cyclic symmetry.
"""

from __future__ import annotations

from repro.graph.attributed import AttributedGraph
from repro.kauto.avt import AlignmentVertexTable


def copy_crossing_edges(
    graph: AttributedGraph,
    avt: AlignmentVertexTable,
) -> list[tuple[int, int]]:
    """Add ``F_m(u)F_m(v)`` for every crossing edge ``(u, v)`` and m.

    Mutates ``graph`` in place; returns the list of added (noise)
    edges.  Iterates to a fixed point in one pass: the image of a
    crossing edge under ``F_m`` is itself crossing, and applying all
    ``m`` in 0..k-1 to every original crossing edge already closes the
    orbit (``F`` is cyclic of order k).
    """
    k = avt.k
    crossing = [
        (u, v)
        for u, v in graph.edges()
        if u in avt and v in avt and avt.block_of(u) != avt.block_of(v)
    ]
    added: list[tuple[int, int]] = []
    for u, v in crossing:
        for m in range(1, k):
            fu = avt.apply(u, m)
            fv = avt.apply(v, m)
            if graph.add_edge(fu, fv):
                added.append((min(fu, fv), max(fu, fv)))
    return added
