"""Block alignment: building AVT rows and intra-block noise edges.

Given a k-way partition of the (label-generalized) data graph, this
module

1. orders each block's vertices with a BFS traversal (the paper uses a
   BFS strategy in graph alignment) grouped by vertex type,
2. pads blocks with *noise vertices* so that every block holds the same
   number of vertices of every type — this is what lets the automorphic
   functions preserve vertex types, which Theorem 3 (match expansion)
   silently requires for attributed graphs,
3. assembles the AVT rows (one same-type vertex per block), and
4. adds the intra-block *alignment* noise edges: for every row pair
   that is adjacent inside at least one block, the same adjacency is
   replicated in every block, making the blocks pairwise isomorphic.
"""

from __future__ import annotations

from collections import defaultdict

from repro.graph.attributed import AttributedGraph
from repro.kauto.avt import AlignmentVertexTable


def bfs_order(graph: AttributedGraph, vertices: list[int]) -> list[int]:
    """BFS ordering of ``vertices`` over their induced subgraph.

    Starts from the highest-degree vertex (degree in the full graph);
    stray components are appended, each from its own max-degree seed.
    Deterministic: ties break on vertex id, neighbours visited sorted.
    """
    member = set(vertices)
    order: list[int] = []
    seen: set[int] = set()
    # candidates sorted once: by (-degree, id) for deterministic seeds
    seeds = sorted(vertices, key=lambda v: (-graph.degree(v), v))
    for seed in seeds:
        if seed in seen:
            continue
        queue = [seed]
        seen.add(seed)
        while queue:
            u = queue.pop(0)
            order.append(u)
            for v in sorted(graph.neighbors(u)):
                if v in member and v not in seen:
                    seen.add(v)
                    queue.append(v)
    return order


def label_signature(graph: AttributedGraph, vertex: int) -> tuple:
    """Canonical form of a vertex's label sets (for alignment pairing)."""
    data = graph.vertex(vertex)
    return tuple(
        (attr, tuple(sorted(values))) for attr, values in sorted(data.labels.items())
    )


def build_avt(
    graph: AttributedGraph,
    blocks: list[list[int]],
    noise_id_start: int | None = None,
    label_aware: bool = False,
) -> tuple[AlignmentVertexTable, list[int], AttributedGraph]:
    """Assemble the AVT from ``blocks``, padding with noise vertices.

    Returns ``(avt, noise_vertex_ids, padded_graph)`` where
    ``padded_graph`` is a copy of ``graph`` extended with the noise
    vertices (no labels yet; the pipeline assigns the row-union of
    label groups afterwards).

    Rows are built per vertex type: the type-``t`` vertices of each
    block, in BFS order, are zipped across blocks; shorter lists are
    padded with fresh noise vertices of type ``t``.

    ``label_aware=True`` orders each block's type-``t`` vertices by
    label signature (BFS order as tiebreak) instead of pure BFS order:
    vertices with identical label sets then land in the same AVT row,
    so the symmetric row-union widens label groups less.  This lowers
    the cost-model inflation δ(k) and the published graph's label
    noise at a small cost in intra-block alignment quality (the BFS
    pairing tracks structure; the label pairing tracks attributes).
    """
    k = len(blocks)
    padded = graph.copy()
    next_id = noise_id_start
    if next_id is None:
        next_id = (max(graph.vertex_ids()) + 1) if graph.vertex_count else 0

    # type -> block index -> ordered vertex list
    per_type: dict[str, list[list[int]]] = defaultdict(lambda: [[] for _ in range(k)])
    for b, block in enumerate(blocks):
        ordered = bfs_order(graph, block)
        if label_aware:
            bfs_position = {vid: i for i, vid in enumerate(ordered)}
            ordered = sorted(
                ordered,
                key=lambda vid: (label_signature(graph, vid), bfs_position[vid]),
            )
        for vid in ordered:
            vertex_type = graph.vertex(vid).vertex_type
            per_type[vertex_type][b].append(vid)

    noise_ids: list[int] = []
    rows: list[list[int]] = []
    for vertex_type in sorted(per_type):
        columns = per_type[vertex_type]
        height = max(len(col) for col in columns)
        for b in range(k):
            while len(columns[b]) < height:
                padded.add_vertex(next_id, vertex_type)
                columns[b].append(next_id)
                noise_ids.append(next_id)
                next_id += 1
        for i in range(height):
            rows.append([columns[b][i] for b in range(k)])

    avt = AlignmentVertexTable(rows)
    return avt, noise_ids, padded


def align_blocks(
    graph: AttributedGraph,
    avt: AlignmentVertexTable,
) -> list[tuple[int, int]]:
    """Replicate intra-block adjacency patterns across all blocks.

    For every pair of AVT rows ``(i, j)`` adjacent within at least one
    block, ensure the corresponding vertices are adjacent in *every*
    block.  Mutates ``graph`` in place and returns the added (noise)
    edges.
    """
    k = avt.k
    patterns: set[tuple[int, int]] = set()
    for u, v in graph.edges():
        if u not in avt or v not in avt:
            continue
        row_u, block_u = avt.position(u)
        row_v, block_v = avt.position(v)
        if block_u == block_v:
            patterns.add((min(row_u, row_v), max(row_u, row_v)))

    added: list[tuple[int, int]] = []
    for i, j in sorted(patterns):
        row_i = avt.row(i)
        row_j = avt.row(j)
        for b in range(k):
            u, v = row_i[b], row_j[b]
            if graph.add_edge(u, v):
                added.append((min(u, v), max(u, v)))
    return added
