"""The :class:`Finding` record every lint rule emits."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class Severity(enum.Enum):
    """How bad a finding is; ``ERROR`` findings fail the gate.

    ``WARNING`` marks heuristic findings (review, then fix or
    suppress); ``INFO`` marks convention nits.  ``repro lint
    --fail-on`` lowers the gate to either.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value

    @property
    def rank(self) -> int:
        """Numeric badness: higher is worse (error=2, warning=1, info=0)."""
        return _SEVERITY_RANK[self]

    def at_least(self, threshold: "Severity") -> bool:
        """Whether this severity is as bad as ``threshold`` or worse."""
        return self.rank >= threshold.rank


_SEVERITY_RANK = {Severity.INFO: 0, Severity.WARNING: 1, Severity.ERROR: 2}


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Orders by ``(path, line, col, rule)`` so reports are stable across
    runs and dict/set iteration orders.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str = field(compare=False)
    severity: Severity = field(default=Severity.ERROR, compare=False)
    hint: str = field(default="", compare=False)

    @property
    def location(self) -> str:
        """``file:line`` — clickable in most terminals/editors."""
        return f"{self.path}:{self.line}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
            "hint": self.hint,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Finding":
        return cls(
            path=data["path"],
            line=int(data["line"]),
            col=int(data.get("col", 0)),
            rule=data["rule"],
            message=data["message"],
            severity=Severity(data.get("severity", "error")),
            hint=data.get("hint", ""),
        )
