"""A small per-module taint-propagation engine (the R6 substrate).

This is deliberately *not* a general dataflow framework.  It walks one
module's AST in source order, keeps a per-function environment mapping
names (and ``recv.attr`` dotted pairs) to sets of taint kinds, and
over-approximates joins: taint only ever grows within a function, so
branchy code needs no path enumeration.  Interprocedural flow stays
inside the module via call summaries — every locally defined function
is analyzed once with its parameters seeded with pseudo-kinds
(``param:<name>``), which yields, per function:

* which parameters reach a sink inside it (flagged at the call site),
* which parameters flow through to its return value,
* which concrete taint kinds its return value carries.

Summaries are iterated to a small fixpoint so chains of local helpers
propagate.  Sources, sinks, sanitizers and declared-neutral calls all
come from :mod:`repro.analysis.manifest` — the rule is the manifest;
this module is only the plumbing.

Known over-approximations (by design, suppress with ``# lint:
ignore[R6]`` if hit): reassigning a clean value to a previously
tainted name does not clear it, and any call that is neither a
sanitizer, a declared-neutral call, nor a local summary propagates the
union of its argument taints to its result.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.manifest import (
    BOUNDARY_EXCEPTIONS,
    TAINT_NEUTRAL_CALLS,
    TAINT_SANITIZERS,
    TaintSink,
    TaintSource,
    sink_for,
)

PARAM_PREFIX = "param:"

#: kind -> the phrase findings use for it.
KIND_PHRASES = {
    "label": "plaintext label values",
    "graph": "the plaintext graph G",
    "secret": "a credential",
    "error": "internal exception text",
}


def _phrase(kinds: Iterable[str]) -> str:
    return " + ".join(KIND_PHRASES.get(k, k) for k in sorted(kinds))


@dataclass
class SinkHit:
    """One tainted value reaching one sink (or boundary exception)."""

    node: ast.AST
    kinds: frozenset[str]
    sink_name: str
    sink_what: str

    @property
    def message(self) -> str:
        return (
            f"{_phrase(self.kinds)} flow(s) into {self.sink_what} "
            f"('{self.sink_name}')"
        )


@dataclass
class FunctionSummary:
    """What calling a local function does with its arguments."""

    #: concrete kinds the return value always carries
    returns_kinds: set[str] = field(default_factory=set)
    #: parameter names whose taint reaches the return value
    param_to_return: set[str] = field(default_factory=set)
    #: parameter name -> sinks its taint reaches inside the body
    param_sinks: dict[str, list[TaintSink]] = field(default_factory=dict)


def _param_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = node.args
    return [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]


def _is_method(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    names = _param_names(node)
    return bool(names) and names[0] in ("self", "cls")


def _callee_name(func: ast.expr) -> tuple[str | None, bool]:
    """``(name, via_attr)`` of a call target, or ``(None, ...)``."""
    if isinstance(func, ast.Name):
        return func.id, False
    if isinstance(func, ast.Attribute):
        return func.attr, True
    return None, False


def _broad_handler(handler: ast.ExceptHandler) -> bool:
    """Whether the handler catches ``Exception``/``BaseException``."""
    caught = handler.type
    names: list[ast.expr] = []
    if caught is None:
        return True
    if isinstance(caught, ast.Tuple):
        names = list(caught.elts)
    else:
        names = [caught]
    for entry in names:
        target = entry.value if isinstance(entry, ast.Attribute) else entry
        ident = (
            entry.attr
            if isinstance(entry, ast.Attribute)
            else target.id if isinstance(target, ast.Name) else ""
        )
        if ident in ("Exception", "BaseException"):
            return True
    return False


class _FlowVisitor:
    """Walk one function (or the module body) in source order."""

    def __init__(
        self,
        analyzer: "TaintAnalyzer",
        summary: FunctionSummary,
        report: bool,
    ) -> None:
        self.analyzer = analyzer
        self.summary = summary
        self.report = report
        self.env: dict[str, set[str]] = {}
        self.hits: list[SinkHit] = []

    # -- environment ----------------------------------------------------
    def _key(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            return f"{node.value.id}.{node.attr}"
        return None

    def taint(self, key: str, kinds: set[str]) -> None:
        if kinds:
            self.env.setdefault(key, set()).update(kinds)

    def _assign(self, target: ast.expr, kinds: set[str]) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, kinds)
            return
        if isinstance(target, ast.Starred):
            self._assign(target.value, kinds)
            return
        if isinstance(target, ast.Subscript):
            self._assign(target.value, kinds)
            return
        key = self._key(target)
        if key is not None:
            self.taint(key, kinds)

    # -- expressions ----------------------------------------------------
    def eval(self, node: ast.expr | None) -> set[str]:
        if node is None or isinstance(node, ast.Constant):
            return set()
        if isinstance(node, ast.Name):
            return set(self.env.get(node.id, ()))
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Compare):
            for comp in [node.left, *node.comparators]:
                self.eval(comp)
            return set()
        if isinstance(node, ast.Lambda):
            return set()
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            for gen in node.generators:
                self._assign(gen.target, self.eval(gen.iter))
            return self.eval(node.elt)
        if isinstance(node, ast.DictComp):
            for gen in node.generators:
                self._assign(gen.target, self.eval(gen.iter))
            return self.eval(node.key) | self.eval(node.value)
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return self.eval(node.body) | self.eval(node.orelse)
        # JoinedStr, BinOp, BoolOp, containers, Subscript, Starred,
        # Await, FormattedValue, UnaryOp, NamedExpr, Slice: union of
        # child expression taint (string formatting does not sanitize).
        kinds: set[str] = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                kinds |= self.eval(child)
        if isinstance(node, ast.NamedExpr):
            self._assign(node.target, kinds)
        return kinds

    def _eval_attribute(self, node: ast.Attribute) -> set[str]:
        kinds = self.eval(node.value)
        key = self._key(node)
        if key is not None:
            kinds |= self.env.get(key, set())
        for source in self.analyzer.attr_sources:
            if node.attr == source.attr:
                kinds.add(source.kind)
        return kinds

    def _call_arg_kinds(self, node: ast.Call) -> set[str]:
        kinds: set[str] = set()
        for arg in node.args:
            kinds |= self.eval(arg)
        for keyword in node.keywords:
            kinds |= self.eval(keyword.value)
        return kinds

    def _record_hit(
        self, node: ast.AST, kinds: set[str], name: str, what: str
    ) -> None:
        concrete = frozenset(
            k for k in kinds if not k.startswith(PARAM_PREFIX)
        )
        if concrete and self.report:
            self.hits.append(SinkHit(node, concrete, name, what))

    def _record_param_sink(self, kinds: set[str], sink: TaintSink) -> None:
        for kind in kinds:
            if kind.startswith(PARAM_PREFIX):
                param = kind[len(PARAM_PREFIX):]
                self.summary.param_sinks.setdefault(param, []).append(sink)

    def _eval_call(self, node: ast.Call) -> set[str]:
        name, via_attr = _callee_name(node.func)
        receiver_kinds = (
            self.eval(node.func.value)
            if isinstance(node.func, ast.Attribute)
            else set()
        )
        arg_kinds = self._call_arg_kinds(node)

        if name is None:
            return arg_kinds
        if name in TAINT_SANITIZERS or name in TAINT_NEUTRAL_CALLS:
            return set()

        # source calls introduce taint on top of whatever flows through
        for source in self.analyzer.call_sources:
            if name == source.attr:
                return arg_kinds | receiver_kinds | {source.kind}

        # boundary exceptions: constructing one from tainted text IS
        # the leak — the message ships in a reject frame or surfaces
        # on the remote caller.
        if name in BOUNDARY_EXCEPTIONS and not via_attr:
            flowing = arg_kinds
            self._record_hit(
                node, flowing, name, "a trust-boundary exception message"
            )
            self._record_param_sink(
                flowing,
                TaintSink(name, False, (), "a trust-boundary exception"),
            )
            return arg_kinds

        sink = sink_for(name, via_attr)
        if sink is not None:
            flowing = {k for k in arg_kinds if k not in sink.allows}
            self._record_hit(node, flowing, name, sink.what)
            self._record_param_sink(flowing, sink)
            # allowed kinds are committed to this encoding by design;
            # the result no longer counts as carrying them.
            return flowing

        summary = self.analyzer.summaries.get(name)
        if summary is not None:
            return self._eval_local_call(node, name, summary, via_attr)
        return arg_kinds | receiver_kinds

    def _eval_local_call(
        self,
        node: ast.Call,
        name: str,
        summary: FunctionSummary,
        via_attr: bool,
    ) -> set[str]:
        definition = self.analyzer.functions[name]
        params = _param_names(definition)
        if via_attr and _is_method(definition):
            params = params[1:]
        mapping: list[tuple[str, set[str]]] = []
        for index, arg in enumerate(node.args):
            kinds = self.eval(arg)
            if index < len(params):
                mapping.append((params[index], kinds))
            else:
                mapping.append(("*", kinds))
        for keyword in node.keywords:
            mapping.append((keyword.arg or "*", self.eval(keyword.value)))

        result: set[str] = set(summary.returns_kinds)
        for param, kinds in mapping:
            if not kinds:
                continue
            for sink in summary.param_sinks.get(param, ()):
                flowing = {k for k in kinds if k not in sink.allows}
                self._record_hit(
                    node,
                    flowing,
                    name,
                    f"{sink.what} (via '{name}')",
                )
                self._record_param_sink(flowing, sink)
            if param == "*" or param in summary.param_to_return:
                result |= kinds
        return result

    # -- statements -----------------------------------------------------
    def run(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # analyzed as its own function (if module-level)
        if isinstance(stmt, ast.ClassDef):
            self.run(stmt.body)
            return
        if isinstance(stmt, ast.Assign):
            kinds = self.eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, kinds)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None and stmt.target is not None:
                self._assign(stmt.target, self.eval(stmt.value))
            return
        if isinstance(stmt, ast.AugAssign):
            self._assign(stmt.target, self.eval(stmt.value))
            return
        if isinstance(stmt, ast.Return):
            kinds = self.eval(stmt.value)
            self.summary.returns_kinds |= {
                k for k in kinds if not k.startswith(PARAM_PREFIX)
            }
            self.summary.param_to_return |= {
                k[len(PARAM_PREFIX):]
                for k in kinds
                if k.startswith(PARAM_PREFIX)
            }
            return
        if isinstance(stmt, (ast.Expr, ast.Raise, ast.Assert, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self.eval(stmt.test)
            self.run(stmt.body)
            self.run(stmt.orelse)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._assign(stmt.target, self.eval(stmt.iter))
            self.run(stmt.body)
            self.run(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                kinds = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, kinds)
            self.run(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self.run(stmt.body)
            for handler in stmt.handlers:
                if handler.name:
                    bound: set[str] = set()
                    if self.analyzer.error_taint and _broad_handler(handler):
                        bound = {"error"}
                    self.env[handler.name] = (
                        self.env.get(handler.name, set()) | bound
                    )
                self.run(handler.body)
            self.run(stmt.orelse)
            self.run(stmt.finalbody)
            return
        # Import/Global/Nonlocal/Pass/Break/Continue: nothing flows


class TaintAnalyzer:
    """Analyze one parsed module against the taint manifest."""

    def __init__(
        self,
        tree: ast.Module,
        sources: Iterable[TaintSource],
        error_taint: bool = False,
        fixpoint_passes: int = 3,
    ) -> None:
        self.tree = tree
        self.attr_sources = tuple(s for s in sources if not s.via_call)
        self.call_sources = tuple(s for s in sources if s.via_call)
        self.error_taint = error_taint
        self.functions: dict[
            str, ast.FunctionDef | ast.AsyncFunctionDef
        ] = {}
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions.setdefault(node.name, node)
        self.summaries: dict[str, FunctionSummary] = {}
        for _ in range(fixpoint_passes):
            updated = {
                name: self._analyze_function(node, report=False)[0]
                for name, node in self.functions.items()
            }
            if self._stable(updated):
                self.summaries = updated
                break
            self.summaries = updated

    def _stable(self, updated: dict[str, FunctionSummary]) -> bool:
        for name, summary in updated.items():
            old = self.summaries.get(name)
            if old is None:
                return False
            if (
                old.returns_kinds != summary.returns_kinds
                or old.param_to_return != summary.param_to_return
                or set(old.param_sinks) != set(summary.param_sinks)
            ):
                return False
        return True

    def _analyze_function(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        report: bool,
    ) -> tuple[FunctionSummary, list[SinkHit]]:
        summary = FunctionSummary()
        visitor = _FlowVisitor(self, summary, report=report)
        for param in _param_names(node):
            if param not in ("self", "cls"):
                visitor.env[param] = {f"{PARAM_PREFIX}{param}"}
        visitor.run(node.body)
        return summary, visitor.hits

    def sink_hits(self) -> list[SinkHit]:
        """Every tainted-value-reaches-sink event in the module."""
        hits: list[SinkHit] = []
        for node in self.functions.values():
            hits.extend(self._analyze_function(node, report=True)[1])
        module_visitor = _FlowVisitor(self, FunctionSummary(), report=True)
        module_visitor.run(self.tree.body)
        hits.extend(module_visitor.hits)
        seen: set[tuple[int, int, frozenset[str], str]] = set()
        unique: list[SinkHit] = []
        for hit in sorted(
            hits, key=lambda h: (getattr(h.node, "lineno", 0), h.sink_name)
        ):
            key = (
                getattr(hit.node, "lineno", 0),
                getattr(hit.node, "col_offset", 0),
                hit.kinds,
                hit.sink_name,
            )
            if key not in seen:
                seen.add(key)
                unique.append(hit)
        return unique
