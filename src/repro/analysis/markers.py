"""Runtime markers the lint rules key off.

This module is intentionally dependency-free (stdlib only, no repro
imports) so *any* layer — including ``repro.cloud.*`` under the R1
trust boundary — may import it without widening its import surface.
"""

from __future__ import annotations

from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable[..., object])


def hot_path(func: F) -> F:
    """Mark a function as serving-hot for the R4 hygiene rule.

    The decorator is a runtime no-op (it returns ``func`` unchanged and
    adds zero call overhead); its only effect is static: ``repro lint``
    applies the R4 hot-path checks — no ``json`` serialization, no
    ``logging``, no ``repr()`` formatting, no per-iteration f-strings —
    to the decorated function, wherever it lives.  Files under the
    declared hot-path set (star matching, result join, bitset engine)
    get the same treatment without the marker.
    """
    func.__repro_hot_path__ = True  # type: ignore[attr-defined]
    return func
