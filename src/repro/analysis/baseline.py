"""Accepted-findings baseline for ``repro lint``.

A baseline lets a new rule land with teeth while known debt is paid
down incrementally: findings recorded in ``.lint-baseline.json`` are
subtracted from the result before the exit code is decided, and
everything *new* still fails the gate.  The shipped baseline is empty
— real violations get fixed, not grandfathered — but the mechanism is
what makes "add a stricter rule" a one-PR operation on a moving tree.

Entries match on ``(rule, path, message)`` as a multiset, *not* on
line numbers: unrelated edits shift lines constantly, and a baseline
that churns on every commit trains people to regenerate it blindly.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.analysis.engine import LintResult
from repro.analysis.findings import Finding

#: Default baseline filename, auto-discovered from the lint cwd.
BASELINE_NAME = ".lint-baseline.json"

_VERSION = 1


class BaselineError(ValueError):
    """The baseline file exists but cannot be used."""


def _key(finding: Finding) -> tuple[str, str, str]:
    return (finding.rule, str(finding.path), finding.message)


def load_baseline(path: Path) -> Counter[tuple[str, str, str]]:
    """Load ``path`` into a matchable multiset of accepted findings."""
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"unreadable baseline {path}: {exc}") from exc
    if not isinstance(raw, dict) or raw.get("version") != _VERSION:
        raise BaselineError(
            f"baseline {path} is not a version-{_VERSION} baseline"
        )
    entries = raw.get("entries")
    if not isinstance(entries, list):
        raise BaselineError(f"baseline {path} has no entries list")
    accepted: Counter[tuple[str, str, str]] = Counter()
    for entry in entries:
        if not isinstance(entry, dict):
            raise BaselineError(f"baseline {path} has a non-object entry")
        try:
            accepted[
                (
                    str(entry["rule"]),
                    str(entry["path"]),
                    str(entry["message"]),
                )
            ] += 1
        except KeyError as exc:
            raise BaselineError(
                f"baseline {path} entry is missing {exc}"
            ) from exc
    return accepted


def apply_baseline(
    result: LintResult, accepted: Counter[tuple[str, str, str]]
) -> tuple[LintResult, int]:
    """Subtract baselined findings; return (filtered result, #suppressed)."""
    budget = Counter(accepted)
    kept: list[Finding] = []
    suppressed = 0
    for finding in result.findings:
        key = _key(finding)
        if budget[key] > 0:
            budget[key] -= 1
            suppressed += 1
        else:
            kept.append(finding)
    filtered = LintResult(
        findings=kept,
        files_checked=result.files_checked,
        rules=list(result.rules),
    )
    return filtered, suppressed


def write_baseline(path: Path, result: LintResult) -> int:
    """Record every current finding as accepted; return the entry count."""
    entries = [
        {"rule": rule, "path": file_path, "message": message}
        for rule, file_path, message in sorted(
            _key(finding) for finding in result.findings
        )
    ]
    payload = {"version": _VERSION, "entries": entries}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return len(entries)
