"""Render a :class:`~repro.analysis.engine.LintResult` as text or JSON."""

from __future__ import annotations

import json
from typing import Any

from repro.analysis.engine import LintResult


def render_text(result: LintResult, verbose: bool = False) -> str:
    """Human-readable report: one ``file:line [Rx] message`` per finding."""
    out: list[str] = []
    for finding in result.findings:
        out.append(
            f"{finding.location}:{finding.col} [{finding.rule}]"
            f" {finding.message}"
        )
        if finding.hint and verbose:
            out.append(f"    hint: {finding.hint}")
    counts = result.by_rule()
    if counts:
        per_rule = ", ".join(f"{rule}={n}" for rule, n in sorted(counts.items()))
        out.append(
            f"{len(result.findings)} finding(s) in {result.files_checked}"
            f" file(s) ({per_rule})"
        )
    else:
        out.append(
            f"clean: {result.files_checked} file(s),"
            f" rules {', '.join(result.rules)}"
        )
    return "\n".join(out)


def result_to_dict(result: LintResult) -> dict[str, Any]:
    return {
        "ok": result.ok,
        "files_checked": result.files_checked,
        "rules": list(result.rules),
        "counts": result.by_rule(),
        "findings": [finding.to_dict() for finding in result.findings],
    }


def render_json(result: LintResult, indent: int | None = 2) -> str:
    """Machine-readable report (stable key order; CI artifact format)."""
    return json.dumps(result_to_dict(result), indent=indent, sort_keys=True)
