"""Render a :class:`~repro.analysis.engine.LintResult` as text/JSON/SARIF."""

from __future__ import annotations

import json
from typing import Any

from repro.analysis.engine import LintResult, all_rules
from repro.analysis.findings import Severity


def render_text(result: LintResult, verbose: bool = False) -> str:
    """Human-readable report: one ``file:line [Rx] message`` per finding."""
    out: list[str] = []
    for finding in result.findings:
        out.append(
            f"{finding.location}:{finding.col} [{finding.rule}]"
            f" {finding.message}"
        )
        if finding.hint and verbose:
            out.append(f"    hint: {finding.hint}")
    counts = result.by_rule()
    if counts:
        per_rule = ", ".join(f"{rule}={n}" for rule, n in sorted(counts.items()))
        out.append(
            f"{len(result.findings)} finding(s) in {result.files_checked}"
            f" file(s) ({per_rule})"
        )
    else:
        out.append(
            f"clean: {result.files_checked} file(s),"
            f" rules {', '.join(result.rules)}"
        )
    return "\n".join(out)


def result_to_dict(result: LintResult) -> dict[str, Any]:
    return {
        "ok": result.ok,
        "files_checked": result.files_checked,
        "rules": list(result.rules),
        "counts": result.by_rule(),
        "findings": [finding.to_dict() for finding in result.findings],
    }


def render_json(result: LintResult, indent: int | None = 2) -> str:
    """Machine-readable report (stable key order; CI artifact format)."""
    return json.dumps(result_to_dict(result), indent=indent, sort_keys=True)


# SARIF 2.1.0 has only three result levels; INFO maps to "note".
_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def result_to_sarif(result: LintResult) -> dict[str, Any]:
    """SARIF 2.1.0 log for ``result`` (one run, one driver)."""
    rules = [
        {
            "id": rule.id,
            "name": rule.name,
            "shortDescription": {"text": rule.describe()["doc"]},
            "help": {"text": rule.hint},
            "defaultConfiguration": {
                "level": _SARIF_LEVELS[rule.severity],
            },
        }
        for rule in all_rules()
    ]
    results = [
        {
            "ruleId": finding.rule,
            "level": _SARIF_LEVELS[finding.severity],
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": finding.line,
                            # SARIF columns are 1-based; AST cols are 0-based
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        for finding in result.findings
    ]
    return {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro/docs/"
                            "static-analysis.md"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(result: LintResult, indent: int | None = 2) -> str:
    """SARIF 2.1.0 report (GitHub code-scanning upload format)."""
    return json.dumps(result_to_sarif(result), indent=indent, sort_keys=True)
