"""AST-based invariant linting for the repro codebase.

The paper's security argument (Sections 3-4) and this reproduction's
concurrency/observability architecture rest on invariants that plain
tests cannot see — *which modules import which*, *which attributes are
touched under which lock*, *which string literals name spans and
metrics*.  This package machine-checks them on every commit:

``R1`` trust-boundary
    ``repro.cloud.*`` (the honest-but-curious party) may only import
    the declared cloud-visible surface; client/owner plaintext modules
    (``repro.client``, ``repro.core.data_owner``, the private LCT) are
    forbidden (:mod:`repro.analysis.rules.trust_boundary`).
``R2`` canonical-names
    Span/metric names must be references to :mod:`repro.obs.names`
    constants, never string literals
    (:mod:`repro.analysis.rules.canonical_names`).
``R3`` lock-discipline
    Attributes annotated ``#: guarded by _lock`` may only be touched
    inside ``with self._lock:`` blocks
    (:mod:`repro.analysis.rules.lock_discipline`).
``R4`` hot-path hygiene
    The matching hot path (star matching, result join, bitset engine,
    anything ``@hot_path``) must not serialize, log, ``repr()`` or
    build f-strings per loop iteration
    (:mod:`repro.analysis.rules.hot_path`).
``R5`` no-internal-deprecated
    ``src/`` must not use the names shimmed in :mod:`repro.compat`
    (:mod:`repro.analysis.rules.deprecated`).
``R6`` privacy-taint
    Per-module taint dataflow: plaintext labels, the original graph,
    credentials and gateway-internal error text must never flow into a
    wire codec, the network channel, the event log or a
    boundary-crossing exception without passing a declared sanitizer
    (:mod:`repro.analysis.rules.privacy_taint`).
``R7`` async-safety
    Nothing reachable from a ``repro.gateway`` coroutine may block the
    event loop — no ``time.sleep``, sync I/O, ``Future.result()`` or
    inline hot-kernel calls
    (:mod:`repro.analysis.rules.async_safety`).
``R8`` protocol-invariants
    Every ``encode_X`` pairs with ``decode_X``, every codec is
    registered (and therefore fuzzed), every decoder re-raises through
    the ``ProtocolError`` envelope, and frame kinds come from the
    ``FRAME_KINDS`` registry
    (:mod:`repro.analysis.rules.protocol_invariants`).

Findings carry a severity (``error``/``warning``/``info``); the exit
code gate is ``--fail-on`` (default ``error``), known debt can be
parked in ``.lint-baseline.json``, and reports render as text, JSON or
SARIF 2.1.0.  Run it as ``repro lint [paths...]`` or through
:func:`lint_paths`.  Suppress a finding with a ``# lint: ignore[R?]``
comment on the flagged line; see ``docs/static-analysis.md`` for the
full catalog and rationale.
"""

from __future__ import annotations

from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import (
    LintResult,
    ModuleInfo,
    Rule,
    all_rules,
    get_rule,
    iter_python_files,
    lint_file,
    lint_paths,
    rule_ids,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.markers import hot_path
from repro.analysis.reporters import render_json, render_sarif, render_text

__all__ = [
    "Finding",
    "LintResult",
    "ModuleInfo",
    "Rule",
    "Severity",
    "all_rules",
    "apply_baseline",
    "get_rule",
    "hot_path",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "load_baseline",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_ids",
    "write_baseline",
]
