"""The lint engine: file discovery, parsing, rule dispatch, suppression.

The engine is deliberately small: it turns every ``.py`` file into a
:class:`ModuleInfo` (source + AST + derived context), hands it to each
registered :class:`Rule`, and filters the resulting
:class:`~repro.analysis.findings.Finding` stream through per-line
``# lint: ignore[R?]`` suppressions.  Rules are pure functions of one
module — no cross-file state — which keeps a full-tree run at
"parse the tree once" cost and makes every rule unit-testable against
a fixture file.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.findings import Finding, Severity

#: Directories never linted (caches, VCS internals, build output,
#: and the deliberately violating rule fixtures — those are linted
#: explicitly via :func:`lint_file` by ``tests/test_analysis_rules.py``,
#: never by directory walk, so ``repro lint tests`` stays clean).
SKIP_DIRS = frozenset(
    {
        "__pycache__",
        ".git",
        ".mypy_cache",
        ".ruff_cache",
        "build",
        "dist",
        ".eggs",
        "lint_fixtures",
    }
)

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*ignore(?:\[([A-Za-z0-9_,\s]+)\])?")
_SKIP_FILE_RE = re.compile(r"#\s*lint:\s*skip-file")
_MODULE_OVERRIDE_RE = re.compile(r"#\s*lint:\s*module=([\w.]+)")

#: The rule id reserved for files the engine cannot parse.
PARSE_ERROR_RULE = "E0"


def module_name_for(path: Path) -> str:
    """Dotted module name for ``path`` under a ``src/`` layout.

    ``.../src/repro/cloud/server.py`` -> ``repro.cloud.server``;
    package ``__init__.py`` maps to the package itself.  Files outside
    a ``src/`` root (tests, benchmarks, fixtures) get ``""`` — rules
    scoped by module name then rely on a ``# lint: module=...``
    override or simply do not apply.
    """
    parts = list(path.parts)
    if "src" in parts:
        rel = parts[len(parts) - parts[::-1].index("src"):]
        if rel:
            if rel[-1] == "__init__.py":
                rel = rel[:-1]
            elif rel[-1].endswith(".py"):
                rel[-1] = rel[-1][:-3]
            return ".".join(rel)
    return ""


def _docstring_nodes(tree: ast.Module) -> set[int]:
    """``id()`` of every docstring Constant node in the tree."""
    out: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            body = node.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                out.add(id(body[0].value))
    return out


@dataclass
class ModuleInfo:
    """Everything a rule needs to know about one source file."""

    path: Path
    source: str
    tree: ast.Module
    module: str = ""
    lines: list[str] = field(default_factory=list)
    #: per-line suppressions: line number -> rule ids ({"*"} = all)
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    #: ``id()`` of docstring Constant nodes (skipped by literal rules)
    docstrings: set[int] = field(default_factory=set)

    @classmethod
    def parse(cls, path: Path, source: str | None = None) -> "ModuleInfo":
        text = path.read_text(encoding="utf-8") if source is None else source
        tree = ast.parse(text, filename=str(path))
        info = cls(
            path=path,
            source=text,
            tree=tree,
            module=module_name_for(path),
            lines=text.splitlines(),
        )
        for lineno, line in enumerate(info.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                rules = match.group(1)
                info.suppressions[lineno] = (
                    {r.strip() for r in rules.split(",") if r.strip()}
                    if rules
                    else {"*"}
                )
            override = _MODULE_OVERRIDE_RE.search(line)
            if override:
                info.module = override.group(1)
        info.docstrings = _docstring_nodes(tree)
        return info

    @property
    def skip_file(self) -> bool:
        return any(_SKIP_FILE_RE.search(line) for line in self.lines[:5])

    def suppressed(self, finding: Finding) -> bool:
        rules = self.suppressions.get(finding.line)
        return bool(rules) and ("*" in rules or finding.rule in rules)

    def finding(
        self,
        rule: "Rule",
        node: ast.AST | None,
        message: str,
        hint: str | None = None,
        severity: Severity | None = None,
    ) -> Finding:
        """Build a :class:`Finding` for ``node`` (module-level if None).

        ``severity`` overrides the rule's default — rules with
        heuristic sub-checks downgrade those to ``WARNING``/``INFO``.
        """
        return Finding(
            path=self.path.as_posix(),
            line=getattr(node, "lineno", 1) if node is not None else 1,
            col=getattr(node, "col_offset", 0) if node is not None else 0,
            rule=rule.id,
            message=message,
            severity=rule.severity if severity is None else severity,
            hint=rule.hint if hint is None else hint,
        )


class Rule:
    """Base class: subclass, set the metadata, implement :meth:`check`.

    Subclasses in :mod:`repro.analysis.rules` register themselves via
    that package's ``ALL_RULES`` list; the engine instantiates each
    once per process and calls :meth:`check` once per module.
    """

    id: str = ""
    name: str = ""
    #: One-line fix guidance attached to every finding.
    hint: str = ""
    severity: Severity = Severity.ERROR

    def check(self, module: ModuleInfo) -> Iterable[Finding]:  # pragma: no cover
        raise NotImplementedError

    def describe(self) -> dict[str, str]:
        return {
            "id": self.id,
            "name": self.name,
            "hint": self.hint,
            "severity": str(self.severity),
            "doc": (self.__doc__ or "").strip().splitlines()[0],
        }


def all_rules() -> list[Rule]:
    """One instance of every registered rule, in id order."""
    from repro.analysis.rules import ALL_RULES

    return [cls() for cls in sorted(ALL_RULES, key=lambda c: c.id)]


def rule_ids() -> list[str]:
    return [rule.id for rule in all_rules()]


def get_rule(rule_id: str) -> Rule:
    for rule in all_rules():
        if rule.id == rule_id:
            return rule
    raise KeyError(f"unknown rule {rule_id!r}; known: {rule_ids()}")


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: set[Path] = set()
    collected: list[Path] = []
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            candidates = sorted(
                p
                for p in root.rglob("*.py")
                if not (set(p.parts) & SKIP_DIRS)
            )
        elif root.suffix == ".py":
            candidates = [root]
        else:
            candidates = []
        for path in candidates:
            key = path.resolve()
            if key not in seen:
                seen.add(key)
                collected.append(path)
    return iter(collected)


@dataclass
class LintResult:
    """The outcome of one engine run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(f.severity is Severity.ERROR for f in self.findings)

    def failed(self, fail_on: Severity = Severity.ERROR) -> bool:
        """Whether any finding is at least ``fail_on`` bad (the CI gate)."""
        return any(f.severity.at_least(fail_on) for f in self.findings)

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts


def lint_file(
    path: str | Path,
    rules: Sequence[Rule] | None = None,
    source: str | None = None,
    module: str | None = None,
) -> list[Finding]:
    """Lint one file; ``module`` overrides the inferred module name."""
    path = Path(path)
    active = list(rules) if rules is not None else all_rules()
    try:
        info = ModuleInfo.parse(path, source=source)
    except SyntaxError as exc:
        return [
            Finding(
                path=path.as_posix(),
                line=exc.lineno or 1,
                col=exc.offset or 0,
                rule=PARSE_ERROR_RULE,
                message=f"cannot parse: {exc.msg}",
                hint="fix the syntax error; nothing else was checked",
            )
        ]
    if module is not None:
        info.module = module
    if info.skip_file:
        return []
    findings: list[Finding] = []
    for rule in active:
        for finding in rule.check(info):
            if not info.suppressed(finding):
                findings.append(finding)
    return sorted(findings)


def lint_paths(
    paths: Sequence[str | Path],
    rules: Sequence[Rule] | None = None,
) -> LintResult:
    """Lint every python file under ``paths`` with ``rules`` (default: all)."""
    active = list(rules) if rules is not None else all_rules()
    result = LintResult(rules=[rule.id for rule in active])
    for path in iter_python_files(paths):
        result.files_checked += 1
        result.findings.extend(lint_file(path, rules=active))
    result.findings.sort()
    return result
