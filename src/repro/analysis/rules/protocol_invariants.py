"""R8: the wire protocol stays structurally closed.

``repro.core.protocol`` is the one module both sides of the trust
boundary execute, so its contracts are checked structurally instead of
by convention:

* every ``encode_X`` has a matching ``decode_X`` (and vice versa) —
  a one-sided codec is wire traffic nobody can read back;
* every codec basename is registered in :data:`CODEC_TABLE` here,
  which the registry-sync test holds equal to the malformed-input
  suite's decoder table — a new codec cannot land unfuzzed;
* every ``decode_*`` body is exactly ``try: ... except _DECODE_ERRORS:
  raise ProtocolError`` (the PR 6 envelope contract): a decoder that
  leaks a raw ``KeyError`` turns hostile bytes into an engine crash;
* decoder error messages start with ``malformed`` (``INFO``: report
  readers grep for it);
* frame-kind string literals at use sites (``encode_frame("...")``,
  ``conn.send("...")``, ``kind == "..."``) must be members of the
  ``FRAME_KINDS`` registry — in the protocol module *and* in the
  gateway modules that speak it.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import ModuleInfo, Rule
from repro.analysis.findings import Finding, Severity
from repro.core.protocol import FRAME_KINDS

#: Every JSON codec pair the protocol module ships, by basename.
#: Keep in sync with ``DECODERS`` in ``tests/test_protocol_malformed.py``
#: (the registry-sync test asserts exact equality with both).
CODEC_TABLE: tuple[str, ...] = (
    "answer",
    "answer_batch",
    "answer_table",
    "gateway_answer",
    "gateway_hello",
    "gateway_reject",
    "gateway_request",
    "query",
    "query_batch",
    "shard_request",
    "shard_tables",
    "trace_context",
    "upload",
)

#: The binary envelope, exempt from JSON-codec pairing/registration:
#: ``decode_frame_header`` has no encoder (it reads half a frame) and
#: ``decode_frame`` delegates all parsing to it.
ENVELOPE_BASENAMES = frozenset({"frame", "frame_header"})

#: ``decode_*`` functions exempt from the try/except-envelope shape:
#: ``decode_frame`` only slices bytes after ``decode_frame_header``
#: has already validated the header (nothing left to trap).
WRAP_EXEMPT = frozenset({"decode_frame"})

#: What a decoder's handler must catch (the ``_DECODE_ERRORS`` tuple,
#: or an inline tuple covering at least these).
REQUIRED_CAUGHT = frozenset({"KeyError", "ValueError", "TypeError"})

PROTOCOL_MODULE = "repro.core.protocol"


def _exception_names(handler: ast.ExceptHandler) -> set[str]:
    caught = handler.type
    if caught is None:
        return set()
    entries = caught.elts if isinstance(caught, ast.Tuple) else [caught]
    names: set[str] = set()
    for entry in entries:
        if isinstance(entry, ast.Name):
            names.add(entry.id)
        elif isinstance(entry, ast.Attribute):
            names.add(entry.attr)
    return names


def _raises_protocol_error(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise) and isinstance(node.exc, ast.Call):
            target = node.exc.func
            name = (
                target.id
                if isinstance(target, ast.Name)
                else target.attr if isinstance(target, ast.Attribute) else ""
            )
            if name == "ProtocolError":
                return True
    return False


def _message_starts_with_malformed(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if not (isinstance(node, ast.Raise) and isinstance(node.exc, ast.Call)):
            continue
        if not node.exc.args:
            continue
        first = node.exc.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value.startswith("malformed")
        if isinstance(first, ast.JoinedStr) and first.values:
            head = first.values[0]
            if isinstance(head, ast.Constant) and isinstance(head.value, str):
                return head.value.startswith("malformed")
        return False
    return False


class ProtocolInvariantsRule(Rule):
    """Codec pairing, the ProtocolError envelope, one frame registry."""

    id = "R8"
    name = "protocol-invariants"
    hint = (
        "pair every encode_X with a decode_X, register the basename in "
        "CODEC_TABLE (repro.analysis.rules.protocol_invariants) and the "
        "malformed-input DECODERS table, wrap the decoder body in the "
        "_DECODE_ERRORS -> ProtocolError envelope, and take frame kinds "
        "from protocol.FRAME_KINDS"
    )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        findings: list[Finding] = []
        if module.module == PROTOCOL_MODULE:
            findings.extend(self._check_codecs(module))
        if module.module == PROTOCOL_MODULE or module.module.startswith(
            "repro.gateway"
        ):
            findings.extend(self._check_frame_literals(module))
        return findings

    # -- codec structure ------------------------------------------------
    def _check_codecs(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        encoders: dict[str, ast.FunctionDef] = {}
        decoders: dict[str, ast.FunctionDef] = {}
        for node in module.tree.body:
            if not isinstance(node, ast.FunctionDef):
                continue
            if node.name.startswith("encode_"):
                encoders[node.name[len("encode_"):]] = node
            elif node.name.startswith("decode_"):
                decoders[node.name[len("decode_"):]] = node

        for base, node in sorted(encoders.items()):
            if base not in decoders and base not in ENVELOPE_BASENAMES:
                findings.append(
                    module.finding(
                        self,
                        node,
                        f"encode_{base} has no matching decode_{base} "
                        "(one-sided codec)",
                    )
                )
        for base, node in sorted(decoders.items()):
            if base not in encoders and base not in ENVELOPE_BASENAMES:
                findings.append(
                    module.finding(
                        self,
                        node,
                        f"decode_{base} has no matching encode_{base} "
                        "(one-sided codec)",
                    )
                )
        for base in sorted(set(encoders) | set(decoders)):
            if base in ENVELOPE_BASENAMES or base in CODEC_TABLE:
                continue
            node = encoders.get(base) or decoders[base]
            findings.append(
                module.finding(
                    self,
                    node,
                    f"codec '{base}' is not registered in CODEC_TABLE "
                    "(and must join the malformed-input DECODERS table)",
                )
            )
        if module.path.name == "protocol.py":
            # stale registry entries only make sense against the real
            # module, not against fixtures that define a codec subset.
            for base in CODEC_TABLE:
                if base not in encoders and base not in decoders:
                    findings.append(
                        module.finding(
                            self,
                            None,
                            f"CODEC_TABLE entry '{base}' has no "
                            "encode_/decode_ functions (stale registry)",
                        )
                    )

        for base, node in sorted(decoders.items()):
            if f"decode_{base}" in WRAP_EXEMPT:
                continue
            findings.extend(self._check_wrap(module, base, node))
        return findings

    def _check_wrap(
        self, module: ModuleInfo, base: str, node: ast.FunctionDef
    ) -> list[Finding]:
        body = list(node.body)
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            body = body[1:]
        if len(body) != 1 or not isinstance(body[0], ast.Try):
            return [
                module.finding(
                    self,
                    node,
                    f"decode_{base} parses outside a try/except envelope "
                    "(a hostile payload can leak a raw KeyError/TypeError)",
                )
            ]
        findings: list[Finding] = []
        handlers = body[0].handlers
        covered = any(
            "_DECODE_ERRORS" in _exception_names(handler)
            or REQUIRED_CAUGHT <= _exception_names(handler)
            for handler in handlers
        )
        if not covered:
            findings.append(
                module.finding(
                    self,
                    node,
                    f"decode_{base}'s except clause does not cover "
                    "_DECODE_ERRORS (KeyError/ValueError/TypeError/...)",
                )
            )
        wrapping = [h for h in handlers if _raises_protocol_error(h)]
        if not wrapping:
            findings.append(
                module.finding(
                    self,
                    node,
                    f"decode_{base} does not re-raise through the "
                    "ProtocolError envelope",
                )
            )
        elif not any(_message_starts_with_malformed(h) for h in wrapping):
            findings.append(
                module.finding(
                    self,
                    node,
                    f"decode_{base}'s ProtocolError message does not start "
                    "with 'malformed' (envelope message convention)",
                    severity=Severity.INFO,
                )
            )
        return findings

    # -- frame-kind registry --------------------------------------------
    def _check_frame_literals(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []

        def flag(node: ast.AST, literal: str, where: str) -> None:
            findings.append(
                module.finding(
                    self,
                    node,
                    f"frame kind {literal!r} ({where}) is not in the "
                    f"FRAME_KINDS registry {sorted(FRAME_KINDS)}",
                )
            )

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = (
                    node.func.id
                    if isinstance(node.func, ast.Name)
                    else node.func.attr
                    if isinstance(node.func, ast.Attribute)
                    else ""
                )
                if name not in ("encode_frame", "send") or not node.args:
                    continue
                first = node.args[0]
                if (
                    isinstance(first, ast.Constant)
                    and isinstance(first.value, str)
                    and first.value not in FRAME_KINDS
                ):
                    flag(first, first.value, f"passed to {name}()")
            elif isinstance(node, ast.Compare):
                sides = [node.left, *node.comparators]
                if not any(
                    isinstance(side, ast.Name) and side.id == "kind"
                    for side in sides
                ):
                    continue
                for side in sides:
                    if (
                        isinstance(side, ast.Constant)
                        and isinstance(side.value, str)
                        and side.value not in FRAME_KINDS
                    ):
                        flag(side, side.value, "compared against 'kind'")
        return findings
