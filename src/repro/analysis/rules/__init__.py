"""Rule registry: every invariant rule, in id order.

Adding a rule: subclass :class:`repro.analysis.engine.Rule` in a new
module here, set ``id``/``name``/``hint`` (and ``severity`` if not
``error``), implement ``check``, append the class to ``ALL_RULES`` —
and add a clean/violating fixture pair under
``tests/data/lint_fixtures/`` plus a catalog entry in
``docs/static-analysis.md``.
"""

from __future__ import annotations

from repro.analysis.rules.async_safety import AsyncSafetyRule
from repro.analysis.rules.canonical_names import CanonicalNamesRule
from repro.analysis.rules.deprecated import NoInternalDeprecatedRule
from repro.analysis.rules.hot_path import HotPathRule
from repro.analysis.rules.lock_discipline import LockDisciplineRule
from repro.analysis.rules.privacy_taint import PrivacyTaintRule
from repro.analysis.rules.protocol_invariants import ProtocolInvariantsRule
from repro.analysis.rules.trust_boundary import TrustBoundaryRule

ALL_RULES = [
    TrustBoundaryRule,
    CanonicalNamesRule,
    LockDisciplineRule,
    HotPathRule,
    NoInternalDeprecatedRule,
    PrivacyTaintRule,
    AsyncSafetyRule,
    ProtocolInvariantsRule,
]

__all__ = [
    "ALL_RULES",
    "AsyncSafetyRule",
    "CanonicalNamesRule",
    "HotPathRule",
    "LockDisciplineRule",
    "NoInternalDeprecatedRule",
    "PrivacyTaintRule",
    "ProtocolInvariantsRule",
    "TrustBoundaryRule",
]
