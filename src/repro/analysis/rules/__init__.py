"""Rule registry: every invariant rule, in id order.

Adding a rule: subclass :class:`repro.analysis.engine.Rule` in a new
module here, set ``id``/``name``/``hint``, implement ``check``, append
the class to ``ALL_RULES`` — and add a clean/violating fixture pair
under ``tests/data/lint_fixtures/`` plus a catalog entry in
``docs/static-analysis.md``.
"""

from __future__ import annotations

from repro.analysis.rules.canonical_names import CanonicalNamesRule
from repro.analysis.rules.deprecated import NoInternalDeprecatedRule
from repro.analysis.rules.hot_path import HotPathRule
from repro.analysis.rules.lock_discipline import LockDisciplineRule
from repro.analysis.rules.trust_boundary import TrustBoundaryRule

ALL_RULES = [
    TrustBoundaryRule,
    CanonicalNamesRule,
    LockDisciplineRule,
    HotPathRule,
    NoInternalDeprecatedRule,
]

__all__ = [
    "ALL_RULES",
    "CanonicalNamesRule",
    "HotPathRule",
    "LockDisciplineRule",
    "NoInternalDeprecatedRule",
    "TrustBoundaryRule",
]
