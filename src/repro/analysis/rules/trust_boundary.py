"""R1: the cloud may only import the declared cloud-visible surface.

The honest-but-curious cloud of the paper (Section 3) sees ``Go``, the
published AVT and anonymized queries ``Qo`` — never ``G``, raw labels
or the private LCT.  A single careless ``from repro.client import ...``
inside ``repro.cloud.*`` would silently collapse that model while every
test keeps passing.  R1 enforces the layering manifest of
:mod:`repro.analysis.manifest` on every ``import``/``from-import``
node, including imports nested inside functions.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis import manifest
from repro.analysis.engine import ModuleInfo, Rule
from repro.analysis.findings import Finding


def _imported_modules(node: ast.AST, current: str) -> Iterator[str]:
    """The dotted module names an import node pulls in."""
    if isinstance(node, ast.Import):
        for alias in node.names:
            yield alias.name
    elif isinstance(node, ast.ImportFrom):
        if node.level:  # relative: resolve against the current module
            base = current.rsplit(".", node.level)[0] if current else ""
            target = f"{base}.{node.module}" if node.module else base
        else:
            target = node.module or ""
        if target:
            yield target


class TrustBoundaryRule(Rule):
    """Enforce the layering manifest on import statements."""

    id = "R1"
    name = "trust-boundary"
    hint = (
        "the cloud layer may import only the cloud-visible surface "
        "declared in repro.analysis.manifest; move the shared logic "
        "into a published module or pass the data in via the protocol"
    )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        allowed = manifest.allowed_for(module.module)
        if allowed is None:
            return []
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            for imported in _imported_modules(node, module.module):
                if not (imported == "repro" or imported.startswith("repro.")):
                    continue  # stdlib / third-party: out of scope
                if manifest.is_allowed(imported, allowed):
                    continue
                reason = manifest.forbidden_reason(imported)
                findings.append(
                    module.finding(
                        self,
                        node,
                        f"{module.module} imports {imported}, which is "
                        f"outside the cloud trust boundary: {reason}",
                    )
                )
        return findings
