"""R2: span/metric names must reference ``repro.obs.names`` constants.

The exporters, the legacy metric views, the event log's span allowlist
and the privacy-audit gauges all key off the canonical taxonomy in
:mod:`repro.obs.names`.  A literal ``"cloud.star_matching"`` (or an
f-string ``f"network.{direction}"``) compiles fine and silently
produces an empty metric the day the phase is renamed.  R2 flags:

* plain string literals equal to a *dotted* canonical span name,
  anywhere in library code (docstrings excluded);
* plain string literals equal to a canonical registry metric / window
  prefix name (``queries_total``, ``cloud_seconds``, ...), anywhere;
* *any* plain literal or f-string passed as the name to a
  span-opening call (``tracer.span(...)``) — this also catches the
  non-dotted roots ``"query"``/``"publish"``/``"batch"``, which are
  too common as ordinary words to flag globally;
* f-strings whose leading text starts with a span namespace prefix
  (``cloud.``, ``network.``, ...).

Scope: modules under ``repro.`` only, excluding the taxonomy module
itself and this analysis package.  Tests and benchmarks may assert on
literal names — pinning the taxonomy there is the point.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import ModuleInfo, Rule
from repro.analysis.findings import Finding
from repro.obs import names as obs_names

#: Modules R2 never applies to: the taxonomy itself and the linter.
EXEMPT_MODULES = ("repro.obs.names", "repro.analysis")

#: Dotted span-name namespaces (f-string prefix detection).
SPAN_NAMESPACES = (
    "cloud.",
    "client.",
    "protocol.",
    "network.",
    "publish.",
    "kauto.",
    "anonymize.",
    "gateway.",
)

#: Call attribute names whose first argument is a span name.
SPAN_CALL_ATTRS = frozenset({"span"})


def _canonical_values() -> tuple[frozenset[str], frozenset[str], dict[str, str]]:
    """(dotted span names, metric names, value -> constant name)."""
    by_value: dict[str, str] = {}
    for key in dir(obs_names):
        if key.isupper() and key != "ALL_SPANS":
            value = getattr(obs_names, key)
            if isinstance(value, str):
                by_value.setdefault(value, key)
    spans = frozenset(v for v in obs_names.ALL_SPANS if "." in v)
    metrics = frozenset(
        value
        for key, value in ((k, getattr(obs_names, k)) for k in dir(obs_names))
        if key.startswith(("M_", "W_")) and isinstance(value, str)
    )
    return spans, metrics, by_value


DOTTED_SPANS, METRIC_NAMES, CONSTANT_FOR = _canonical_values()


def _fstring_prefix(node: ast.JoinedStr) -> str:
    """The leading constant text of an f-string (may be empty)."""
    if node.values and isinstance(node.values[0], ast.Constant):
        value = node.values[0].value
        if isinstance(value, str):
            return value
    return ""


class CanonicalNamesRule(Rule):
    """String literals must not shadow the span/metric taxonomy."""

    id = "R2"
    name = "canonical-names"
    hint = (
        "use the constant from repro.obs.names (e.g. names.CLOUD_ANSWER) "
        "so exporters, views and the event log stay in lockstep"
    )

    def _applies(self, module: ModuleInfo) -> bool:
        name = module.module
        if not name.startswith("repro"):
            return False
        return not any(
            name == exempt or name.startswith(exempt + ".")
            for exempt in EXEMPT_MODULES
        )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        if not self._applies(module):
            return []
        findings: list[Finding] = []
        span_args: set[int] = set()  # id() of first-arg nodes to span calls
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in SPAN_CALL_ATTRS
                and node.args
            ):
                span_args.add(id(node.args[0]))

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                if id(node) in module.docstrings:
                    continue
                value = node.value
                if id(node) in span_args:
                    constant = CONSTANT_FOR.get(value)
                    suggestion = (
                        f"names.{constant}" if constant else "a names.* constant"
                    )
                    findings.append(
                        module.finding(
                            self,
                            node,
                            f"span opened with literal name {value!r}; "
                            f"use {suggestion}",
                        )
                    )
                elif value in DOTTED_SPANS:
                    findings.append(
                        module.finding(
                            self,
                            node,
                            f"literal span name {value!r}; use "
                            f"names.{CONSTANT_FOR[value]}",
                        )
                    )
                elif value in METRIC_NAMES:
                    findings.append(
                        module.finding(
                            self,
                            node,
                            f"literal metric name {value!r}; use "
                            f"names.{CONSTANT_FOR[value]}",
                        )
                    )
            elif isinstance(node, ast.JoinedStr):
                prefix = _fstring_prefix(node)
                if id(node) in span_args or prefix.startswith(SPAN_NAMESPACES):
                    findings.append(
                        module.finding(
                            self,
                            node,
                            "f-string span/metric name "
                            f"(prefix {prefix!r}); span and metric names "
                            "must be names.* constants, not built at "
                            "runtime",
                        )
                    )
        return findings
