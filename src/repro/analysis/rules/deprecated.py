"""R5: library code must not use the names shimmed in ``repro.compat``.

The PR-2 Outcome/metrics redesign renamed ``CloudAnswer.total_seconds``
-> ``cloud_seconds`` and ``ClientOutcome.seconds`` -> ``client_seconds``
behind one-release :class:`DeprecationWarning` shims.  The shims exist
for *callers*; the library itself must be warning-clean (the CI tier-1
run with ``-W error::DeprecationWarning`` depends on it) and must keep
working the day the shims are deleted.  R5 flags, in ``repro.*``
modules only:

* attribute access to a shimmed name where the receiver is plausibly
  the shimmed type — ``<...answer>.total_seconds`` /
  ``<...outcome>.seconds`` (plain names only; ``trace.total_seconds``
  and ``stats.seconds`` are different, canonical APIs and are not
  matched);
* the deprecated constructor keyword (``CloudAnswer(total_seconds=...)``).

Shim *definition* sites — functions whose body calls
:func:`repro.compat.warn_renamed` — are exempt: they must reference
the old spelling to implement it.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import ModuleInfo, Rule
from repro.analysis.findings import Finding

#: attr -> (receiver-name substring, replacement, shimmed class)
SHIMMED_ATTRS: dict[str, tuple[str, str, str]] = {
    "total_seconds": ("answer", "cloud_seconds", "CloudAnswer"),
    "seconds": ("outcome", "client_seconds", "ClientOutcome"),
}

#: class name -> {deprecated constructor keyword: replacement}
SHIMMED_KEYWORDS: dict[str, dict[str, str]] = {
    "CloudAnswer": {"total_seconds": "cloud_seconds"},
    "ClientOutcome": {"seconds": "client_seconds"},
}


def _is_shim_definition(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Whether this function *implements* a shim (calls warn_renamed)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            func = sub.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else ""
            )
            if name == "warn_renamed":
                return True
    return False


class NoInternalDeprecatedRule(Rule):
    """Keep ``src/`` off its own deprecation shims."""

    id = "R5"
    name = "no-internal-deprecated"
    hint = (
        "use the post-redesign spelling (CloudAnswer.cloud_seconds / "
        "ClientOutcome.client_seconds); the compat shims are for "
        "external callers and will be deleted"
    )

    def _applies(self, module: ModuleInfo) -> bool:
        return (
            module.module.startswith("repro")
            and module.module != "repro.compat"
            and not module.module.startswith("repro.analysis")
        )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        if not self._applies(module):
            return []
        shim_spans: list[tuple[int, int]] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_shim_definition(node):
                    shim_spans.append((node.lineno, node.end_lineno or node.lineno))

        def in_shim(node: ast.AST) -> bool:
            line = getattr(node, "lineno", 0)
            return any(lo <= line <= hi for lo, hi in shim_spans)

        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute) and node.attr in SHIMMED_ATTRS:
                needle, replacement, cls = SHIMMED_ATTRS[node.attr]
                receiver = node.value
                if (
                    isinstance(receiver, ast.Name)
                    and needle in receiver.id.lower()
                    and not in_shim(node)
                ):
                    findings.append(
                        module.finding(
                            self,
                            node,
                            f"{receiver.id}.{node.attr} uses the deprecated "
                            f"{cls}.{node.attr} shim; use .{replacement}",
                        )
                    )
            elif isinstance(node, ast.Call) and not in_shim(node):
                func = node.func
                called = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute) else ""
                )
                renames = SHIMMED_KEYWORDS.get(called)
                if not renames:
                    continue
                for keyword in node.keywords:
                    if keyword.arg in renames:
                        findings.append(
                            module.finding(
                                self,
                                node,
                                f"{called}({keyword.arg}=...) uses the "
                                f"deprecated keyword; use "
                                f"{renames[keyword.arg]}=...",
                            )
                        )
        return findings
