"""R4: the matching hot path stays allocation- and I/O-lean.

``cloud/star_matching.py``, ``cloud/result_join.py`` and
``matching/bitset.py`` are the per-query inner loops the paper's
evaluation times (Figures 18-22); PR 1's parallel engine multiplies
whatever they cost by the batch width.  Anything decorated
``@hot_path`` (:func:`repro.analysis.markers.hot_path`) joins the set
wherever it lives.  Inside those functions R4 forbids:

* ``json.dumps`` / ``json.dump`` / ``json.loads`` / ``json.load`` —
  serialization belongs at the protocol boundary;
* ``logging`` calls (``logging.info``, ``logger.debug``, ...) — the
  observability layer derives events *from traces after the query
  completes* precisely so the hot path never formats log lines;
* ``repr()`` calls and ``!r`` f-string conversions — repr-formatting
  graph structures is O(result set) work that belongs in reporters;
* f-strings inside ``for``/``while`` bodies — a per-iteration string
  allocation in a loop that runs |candidates| times.  (f-strings in
  ``raise`` statements are fine: they only evaluate on the error
  path.)
* ``for`` statements iterating a ``.rows`` attribute (a
  :class:`~repro.matching.table.MatchTable`'s tuple rows) — hot
  kernels operate on the flat column vectors; reading ``.rows``
  materializes one tuple per match.  A sanctioned tuple fallback
  hoists the list once (``rows = table.rows``) so the
  materialization point is explicit; comprehensions at the
  representation boundary (``to_matches``, codecs) are exempt by
  design.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import ModuleInfo, Rule
from repro.analysis.findings import Finding

#: Modules that are hot by declaration (no decorator needed).
HOT_MODULES = (
    "repro.cloud.star_matching",
    "repro.cloud.result_join",
    "repro.matching.bitset",
)

JSON_FUNCS = frozenset({"dumps", "dump", "loads", "load"})
LOG_METHODS = frozenset(
    {"debug", "info", "warning", "warn", "error", "critical", "exception", "log"}
)
LOGGER_NAMES = frozenset({"logging", "logger", "log"})


def is_hot_module(module: ModuleInfo) -> bool:
    return module.module in HOT_MODULES


def _iterates_table_rows(expr: ast.expr) -> bool:
    """Whether a loop iterable reads a ``.rows`` attribute.

    Catches the attribute itself, slices of it (``table.rows[:n]``)
    and wrapper calls over it (``enumerate(table.rows)``); method
    calls *named* rows (``avt.rows()``) are a different API and pass.
    """
    if isinstance(expr, ast.Attribute):
        return expr.attr == "rows"
    if isinstance(expr, ast.Subscript):
        return _iterates_table_rows(expr.value)
    if isinstance(expr, ast.Call):
        return any(_iterates_table_rows(arg) for arg in expr.args)
    return False


def has_hot_path_decorator(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name) and target.id == "hot_path":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "hot_path":
            return True
    return False


class _HotBodyChecker(ast.NodeVisitor):
    """Scan one hot function body; tracks loop depth and raise context."""

    def __init__(self, rule: "HotPathRule", module: ModuleInfo, func_name: str):
        self.rule = rule
        self.module = module
        self.func_name = func_name
        self.loop_depth = 0
        self.raise_depth = 0
        self.findings: list[Finding] = []

    def _flag(self, node: ast.AST, what: str) -> None:
        self.findings.append(
            self.module.finding(
                self.rule,
                node,
                f"hot path '{self.func_name}' {what}",
            )
        )

    # -- loops ----------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        if _iterates_table_rows(node.iter):
            self._flag(
                node,
                "iterates a .rows attribute per Python row (use the "
                "flat-column kernels; a sanctioned tuple fallback "
                "hoists the list into a local first)",
            )
        self._visit_loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._visit_loop(node)

    visit_AsyncFor = visit_For  # type: ignore[assignment]

    def _visit_loop(self, node: ast.For | ast.While | ast.AsyncFor) -> None:
        self.loop_depth += 1
        self.generic_visit(node)
        self.loop_depth -= 1

    def visit_Raise(self, node: ast.Raise) -> None:
        self.raise_depth += 1
        self.generic_visit(node)
        self.raise_depth -= 1

    # -- forbidden constructs -------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            owner = func.value
            if (
                isinstance(owner, ast.Name)
                and owner.id == "json"
                and func.attr in JSON_FUNCS
            ):
                self._flag(node, f"calls json.{func.attr} (serialize at the "
                                 "protocol boundary instead)")
            elif (
                isinstance(owner, ast.Name)
                and owner.id in LOGGER_NAMES
                and func.attr in LOG_METHODS
            ):
                self._flag(node, f"calls {owner.id}.{func.attr} (derive "
                                 "events from the trace after the query "
                                 "completes)")
        elif isinstance(func, ast.Name) and func.id == "repr":
            if self.raise_depth == 0:
                self._flag(node, "calls repr() (repr-formatting belongs in "
                                 "reporters)")
        self.generic_visit(node)

    def visit_JoinedStr(self, node: ast.JoinedStr) -> None:
        if self.loop_depth > 0 and self.raise_depth == 0:
            self._flag(
                node,
                "allocates an f-string inside a loop (hoist it out or "
                "defer formatting to the caller)",
            )
        for value in node.values:
            if (
                isinstance(value, ast.FormattedValue)
                and value.conversion == ord("r")
                and self.raise_depth == 0
            ):
                self._flag(value, "uses !r formatting (repr of graph "
                                  "structures is O(result set) work)")
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # nested defs are checked as their own (hot) functions
        return None

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]


class HotPathRule(Rule):
    """No serialization, logging, repr or per-loop f-strings when hot."""

    id = "R4"
    name = "hot-path"
    hint = (
        "move the work off the per-query inner loop: serialize at the "
        "protocol layer, report through spans/metrics, format in "
        "reporters; or drop the @hot_path marker if the function is "
        "genuinely cold"
    )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        hot_module = is_hot_module(module)
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not hot_module and not has_hot_path_decorator(node):
                continue
            checker = _HotBodyChecker(self, module, node.name)
            for stmt in node.body:
                checker.visit(stmt)
            findings.extend(checker.findings)
        return findings
