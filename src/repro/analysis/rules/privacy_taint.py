"""R6: plaintext, secrets and internal errors never reach the wire.

The paper's guarantee (Sections 3-4) is a statement about *values*,
not modules: the honest-but-curious cloud sees ``Go``, the published
AVT and anonymized queries — never raw labels, the original ``G``, or
anything that de-anonymizes them.  R1 polices the import graph; R6
polices the dataflow.  Per module it propagates taint from the
declared sources (raw ``AttributedGraph`` label accessors in
owner/client modules, ``DataOwner``-held plaintext, credentials,
broad-``except`` error text in the gateway) to the declared sinks
(every ``encode_*`` codec, ``NetworkChannel.transmit``, the JSONL
event log, trust-boundary exception messages), with the paper's own
transformations (LCT grouping, AVT remap, k-automorphism, hashing)
clearing taint.  The source/sink/sanitizer manifest lives in
:mod:`repro.analysis.manifest`; the propagation engine in
:mod:`repro.analysis.dataflow`.

Flow is over-approximated (taint never lowers within a function), so
a finding means "no declared sanitizer stands between this source and
this sink" — fix the flow or route it through a sanitizer; suppress
only with a comment explaining why the flow is safe.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis import manifest
from repro.analysis.dataflow import TaintAnalyzer
from repro.analysis.engine import ModuleInfo, Rule
from repro.analysis.findings import Finding


def _error_taint_applies(module: str) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in manifest.ERROR_TAINT_MODULES
    )


class PrivacyTaintRule(Rule):
    """Declared taint sources must never flow into wire/log sinks."""

    id = "R6"
    name = "privacy-taint"
    hint = (
        "route the value through a declared sanitizer (LCT grouping, "
        "AVT remap, anonymize, hash) before it reaches the wire/log, "
        "or ship a safe summary (type name, count, group id) instead "
        "of the value itself"
    )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        if not module.module.startswith("repro."):
            return []
        sources = manifest.sources_for(module.module)
        error_taint = _error_taint_applies(module.module)
        if not sources and not error_taint:
            return []
        analyzer = TaintAnalyzer(
            module.tree, sources, error_taint=error_taint
        )
        return [
            module.finding(self, hit.node, hit.message)
            for hit in analyzer.sink_hits()
        ]
