"""R3: ``#: guarded by <lock>`` attributes are only touched under it.

The thread-shared state of this codebase — the star-match LRU, the
sliding SLO windows, the trace ring, the metrics registry, the cloud
server's lazily built pools — relies on a *convention*: every access
to the shared attribute happens inside ``with self._lock:``.  The
convention only fails at runtime, under contention, rarely and
unreproducibly.  R3 makes it fail at lint time.

Declare the invariant next to the attribute::

    class Ring:
        def __init__(self) -> None:
            self._lock = threading.Lock()
            self._entries = []  #: guarded by _lock

    # ... or on a dataclass / class-level field:
    class Cache:
        hits: int = 0  #: guarded by _lock

The comment may also sit on its own line directly above the
attribute.  Within that class, every ``self.<attr>`` load, store or
delete must then be lexically inside a ``with self.<lock>:`` (or
``with cls.<lock>:``) block.  ``__init__``, ``__post_init__``,
``__setstate__`` and ``__del__`` are exempt — the object is not yet
(or no longer) shared there.  Accesses through other receivers
(``other._entries``) are out of scope: guard them at the declaring
class's boundary.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.engine import ModuleInfo, Rule
from repro.analysis.findings import Finding

GUARD_RE = re.compile(r"#:\s*guarded by\s+(\w+)")
_SELF_ATTR_DEF_RE = re.compile(r"^\s*self\.(\w+)\s*[:=]")
_CLASS_ATTR_DEF_RE = re.compile(r"^\s*(\w+)\s*[:=]")

#: Methods where unguarded access is allowed (object not yet shared).
EXEMPT_METHODS = frozenset(
    {"__init__", "__post_init__", "__setstate__", "__del__", "__new__"}
)


def _attr_defined_on_line(line: str) -> str | None:
    match = _SELF_ATTR_DEF_RE.match(line)
    if match:
        return match.group(1)
    match = _CLASS_ATTR_DEF_RE.match(line)
    if match and not line.lstrip().startswith(("def ", "class ", "with ")):
        return match.group(1)
    return None


def guarded_attributes(module: ModuleInfo, cls: ast.ClassDef) -> dict[str, str]:
    """``{attribute: lock_name}`` declared inside ``cls``'s line span."""
    end = cls.end_lineno or cls.lineno
    guarded: dict[str, str] = {}
    for lineno in range(cls.lineno, end + 1):
        line = module.lines[lineno - 1] if lineno - 1 < len(module.lines) else ""
        match = GUARD_RE.search(line)
        if not match:
            continue
        lock = match.group(1)
        # trailing form: the attribute is defined on this line ...
        attr = _attr_defined_on_line(line)
        if attr is None and lineno < len(module.lines):
            # ... or the standalone-comment form: on the next line
            attr = _attr_defined_on_line(module.lines[lineno])
        if attr is not None and attr != lock:
            guarded[attr] = lock
    return guarded


class _MethodChecker(ast.NodeVisitor):
    """Walk one method body tracking which ``self.<lock>``s are held."""

    def __init__(
        self,
        rule: "LockDisciplineRule",
        module: ModuleInfo,
        cls: ast.ClassDef,
        guarded: dict[str, str],
    ):
        self.rule = rule
        self.module = module
        self.cls = cls
        self.guarded = guarded
        self.held: list[str] = []
        self.findings: list[Finding] = []

    def visit_With(self, node: ast.With) -> None:
        acquired: list[str] = []
        for item in node.items:
            expr = item.context_expr
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id in ("self", "cls")
            ):
                acquired.append(expr.attr)
        self.held.extend(acquired)
        self.generic_visit(node)
        for _ in acquired:
            self.held.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # nested function: lock context does not transfer (it may run
        # later, e.g. as a callback) — check it with no locks held
        saved, self.held = self.held, []
        self.generic_visit(node)
        self.held = saved

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]
    visit_Lambda = visit_FunctionDef  # type: ignore[assignment]

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id in ("self", "cls")
            and node.attr in self.guarded
        ):
            lock = self.guarded[node.attr]
            if lock not in self.held:
                self.findings.append(
                    self.module.finding(
                        self.rule,
                        node,
                        f"{self.cls.name}.{node.attr} is declared "
                        f"'#: guarded by {lock}' but is accessed without "
                        f"holding self.{lock}",
                    )
                )
        self.generic_visit(node)


class LockDisciplineRule(Rule):
    """Guarded attributes are only accessed while their lock is held."""

    id = "R3"
    name = "lock-discipline"
    hint = (
        "wrap the access in 'with self.<lock>:' (or snapshot the value "
        "under the lock first); if the attribute is genuinely "
        "single-threaded, drop the '#: guarded by' annotation"
    )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            guarded = guarded_attributes(module, node)
            if not guarded:
                continue
            for item in node.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if item.name in EXEMPT_METHODS:
                    continue
                checker = _MethodChecker(self, module, node, guarded)
                for stmt in item.body:
                    checker.visit(stmt)
                findings.extend(checker.findings)
        return findings
