"""R7: nothing blocks the gateway event loop.

The gateway's whole degradation story — admission control, SLO-driven
shedding, coalescing — assumes the asyncio loop keeps turning: a
single synchronous stall freezes *every* connection's framing and the
shed probe that is supposed to relieve the overload.  Inside any
``async def`` in ``repro.gateway.*`` (and any function reachable from
one through same-module synchronous calls) R7 flags:

* ``time.sleep`` — use ``await asyncio.sleep``;
* ``subprocess.*`` / ``os.system`` — run it on the executor;
* synchronous file I/O (builtin ``open``, ``Path.read_text`` family);
* synchronous sockets (``socket.socket``, ``socket.create_connection``);
* ``Future.result()`` / zero-argument ``.join()`` — await the future
  or wrap it (``asyncio.wrap_future``) instead of blocking on it;
* calls into ``@hot_path`` CPU kernels (local ``@hot_path`` functions
  and names imported from R4's hot modules) made directly on the loop
  — heuristic, so ``WARNING``: dispatch them via ``run_in_executor``.

Functions only *referenced* (e.g. passed to ``run_in_executor``) are
not reachable — scheduling a blocking function onto the pool is the
sanctioned pattern, calling it inline is the bug.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import ModuleInfo, Rule
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules.hot_path import HOT_MODULES, has_hot_path_decorator

#: module.attr calls that block outright.
BLOCKING_MODULE_CALLS = {
    ("time", "sleep"): "time.sleep blocks the event loop; await asyncio.sleep",
    ("subprocess", "run"): "subprocess.run blocks the event loop",
    ("subprocess", "call"): "subprocess.call blocks the event loop",
    ("subprocess", "check_output"): "subprocess.check_output blocks the loop",
    ("subprocess", "check_call"): "subprocess.check_call blocks the loop",
    ("subprocess", "Popen"): "subprocess.Popen forks under the event loop",
    ("os", "system"): "os.system blocks the event loop",
    ("socket", "socket"): "synchronous socket under the event loop",
    ("socket", "create_connection"): "synchronous connect blocks the loop",
}

#: attribute calls that are synchronous file I/O wherever they appear.
FILE_IO_ATTRS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)


def _local_functions(
    tree: ast.Module,
) -> dict[str, ast.FunctionDef | ast.AsyncFunctionDef]:
    out: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.setdefault(node.name, node)
    return out


def _called_local_names(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[str]:
    """Names this function *calls* (``f(...)``, ``self.f(...)``)."""
    called: set[str] = set()
    for child in ast.walk(node):
        if not isinstance(child, ast.Call):
            continue
        func = child.func
        if isinstance(func, ast.Name):
            called.add(func.id)
        elif isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            if func.value.id in ("self", "cls"):
                called.add(func.attr)
    return called


def _hot_kernel_names(module: ModuleInfo) -> set[str]:
    """Locally visible names that resolve to ``@hot_path`` kernels."""
    names: set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom):
            source = node.module or ""
            if source in HOT_MODULES:
                names.update(
                    alias.asname or alias.name for alias in node.names
                )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if has_hot_path_decorator(node):
                names.add(node.name)
    return names


class _BlockingCallChecker(ast.NodeVisitor):
    """Scan one function body for blocking operations."""

    def __init__(
        self,
        rule: "AsyncSafetyRule",
        module: ModuleInfo,
        func_name: str,
        via: str | None,
        kernels: set[str],
    ) -> None:
        self.rule = rule
        self.module = module
        self.func_name = func_name
        self.via = via
        self.kernels = kernels
        self.findings: list[Finding] = []

    def _flag(
        self, node: ast.AST, what: str, severity: Severity | None = None
    ) -> None:
        where = f"async '{self.func_name}'"
        if self.via is not None:
            where = (
                f"'{self.func_name}' (reachable from async '{self.via}')"
            )
        self.findings.append(
            self.module.finding(
                self.rule, node, f"{what} in {where}", severity=severity
            )
        )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return None  # nested defs: only checked if actually called

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "open":
                self._flag(node, "synchronous open() (file I/O)")
            elif func.id in self.kernels:
                self._flag(
                    node,
                    f"direct call into @hot_path kernel '{func.id}' "
                    "(dispatch it via run_in_executor)",
                    severity=Severity.WARNING,
                )
        elif isinstance(func, ast.Attribute):
            owner = func.value
            if isinstance(owner, ast.Name):
                message = BLOCKING_MODULE_CALLS.get((owner.id, func.attr))
                if message is not None:
                    self._flag(node, message)
                    self.generic_visit(node)
                    return
            if func.attr in FILE_IO_ATTRS:
                self._flag(node, f"synchronous .{func.attr}() (file I/O)")
            elif func.attr == "result" and not node.args:
                self._flag(
                    node,
                    "Future.result() blocks the event loop "
                    "(await it, or asyncio.wrap_future it)",
                )
            elif func.attr == "join" and not node.args and not node.keywords:
                self._flag(
                    node,
                    ".join() blocks the event loop "
                    "(str.join with an argument is fine)",
                )
        self.generic_visit(node)


class AsyncSafetyRule(Rule):
    """Gateway coroutines (and their sync callees) must never block."""

    id = "R7"
    name = "async-safety"
    hint = (
        "move the blocking work onto the dispatch pool "
        "(loop.run_in_executor) or use the asyncio-native equivalent; "
        "the event loop must only ever frame, admit and await"
    )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        if not (
            module.module == "repro.gateway"
            or module.module.startswith("repro.gateway.")
        ):
            return []
        functions = _local_functions(module.tree)
        kernels = _hot_kernel_names(module)

        async_roots = {
            name
            for name, node in functions.items()
            if isinstance(node, ast.AsyncFunctionDef)
        }
        # same-module reachability: sync functions transitively called
        # from an async def, attributed to one sample root.
        reached_from: dict[str, str] = {}
        frontier = [(name, name) for name in async_roots]
        while frontier:
            name, root = frontier.pop()
            for callee in _called_local_names(functions[name]):
                if (
                    callee in functions
                    and callee not in async_roots
                    and callee not in reached_from
                ):
                    reached_from[callee] = root
                    frontier.append((callee, root))

        findings: list[Finding] = []
        for name in sorted(async_roots):
            checker = _BlockingCallChecker(
                self, module, name, via=None, kernels=kernels
            )
            for stmt in functions[name].body:
                checker.visit(stmt)
            findings.extend(checker.findings)
        for name, root in sorted(reached_from.items()):
            checker = _BlockingCallChecker(
                self, module, name, via=root, kernels=kernels
            )
            for stmt in functions[name].body:
                checker.visit(stmt)
            findings.extend(checker.findings)
        return findings
