"""The declared layering manifest behind the R1 trust-boundary rule.

The paper's threat model (Section 3): the cloud is *honest but
curious*.  It receives only the outsourced graph ``Go``, the published
Alignment Vertex Table, and anonymized queries ``Qo`` — never the
original graph ``G``, raw labels, or the client-private Label
Correspondence Table.  In code, that boundary is an *import* boundary:
``repro.cloud.*`` must be buildable and auditable from the
cloud-visible surface alone.

``LAYERS`` maps a layer prefix to the module prefixes it may import
from within ``repro``; anything else under ``repro.`` is a violation.
``FORBIDDEN_REASONS`` documents *why* the best-known offenders are
outside the boundary, so R1 findings explain themselves.
"""

from __future__ import annotations

from dataclasses import dataclass

#: layer prefix -> the repro-internal import surface it is allowed.
#: Prefixes match whole dotted components (``repro.obs`` also allows
#: ``repro.obs.names``, but not ``repro.obscure``).
LAYERS: dict[str, tuple[str, ...]] = {
    # The honest-but-curious cloud: only the published/cloud-visible
    # surface.  Notably absent: repro.client (query expansion over the
    # private LCT), repro.core.data_owner / repro.core.query_client
    # (plaintext G and Q), repro.anonymize minus the cost model (the
    # LCT and the anonymization strategies are owner/client secrets),
    # and repro.kauto minus the published AVT.
    "repro.cloud": (
        "repro.cloud",  # intra-layer
        "repro.graph",  # published graph structures (Go / Gk)
        "repro.matching",  # star/match data structures + engines
        "repro.anonymize.cost_model",  # cloud-side cardinality estimation
        "repro.kauto.avt",  # the *published* Alignment Vertex Table
        # the multilevel partitioner is a pure structural algorithm over
        # whatever graph it is handed; the sharded cloud runs it on the
        # published Go it already stores, so no owner/client secret
        # crosses the boundary (labels/LCT are never consulted).
        "repro.kauto.partition",
        "repro.obs",  # observability (names, tracing, metrics)
        "repro.core.protocol",  # the wire the cloud legitimately sees
        "repro.outsource",  # Go + delta structures the owner uploads
        "repro.exceptions",  # shared error taxonomy (no data)
        "repro.compat",  # deprecation shim helper (no data)
        "repro.analysis.markers",  # dependency-free lint markers
    ),
    # The serving gateway runs *on the cloud side* of the trust
    # boundary: it fronts the cloud engine for remote clients, so it
    # sees exactly what the cloud sees (Go, the published AVT,
    # anonymized queries on the wire) and nothing more.  Its surface is
    # the cloud allowlist plus itself and the per-call QueryOptions
    # value object (plain tuning knobs, no data).
    "repro.gateway": (
        "repro.gateway",  # intra-layer
        "repro.cloud",
        "repro.graph",
        "repro.matching",
        "repro.anonymize.cost_model",
        "repro.kauto.avt",
        "repro.kauto.partition",
        "repro.obs",
        "repro.core.protocol",
        "repro.core.options",  # per-call knobs (no graph data)
        "repro.outsource",
        "repro.exceptions",
        "repro.compat",
        "repro.analysis.markers",
    ),
}

#: Module prefixes whose appearance in a restricted layer gets a
#: targeted explanation (beyond the generic "not in the manifest").
FORBIDDEN_REASONS: dict[str, str] = {
    "repro.client": (
        "client-side query expansion/filtering runs over the private "
        "LCT and original labels (paper Section 4.2.2)"
    ),
    "repro.core.data_owner": (
        "the data owner holds the original graph G and the private LCT "
        "(paper Section 3)"
    ),
    "repro.core.query_client": (
        "the query client holds the plaintext query Q and the LCT "
        "(paper Section 3)"
    ),
    "repro.anonymize.lct": (
        "the Label Correspondence Table is the client-side secret that "
        "de-anonymizes labels (paper Section 4.1)"
    ),
    "repro.anonymize.strategies": (
        "label-grouping strategies consume raw label distributions the "
        "cloud must never see"
    ),
    "repro.anonymize.query_anonymizer": (
        "query anonymization consumes the plaintext query Q"
    ),
    "repro.anonymize.eff": (
        "EFF grouping consumes raw label frequencies (owner-side)"
    ),
    "repro.kauto.builder": (
        "the k-automorphism builder transforms the original graph G "
        "(owner-side, paper Section 5)"
    ),
    "repro.attacks": (
        "attack simulations model the adversary; the serving cloud "
        "must not depend on them"
    ),
}


# ----------------------------------------------------------------------
# R6 privacy-taint manifest: where plaintext enters, where bytes leave,
# and which transformations launder a value back to cloud-visible.
# ----------------------------------------------------------------------
#: Modules where the owner/client hold plaintext: a raw-label accessor
#: read there yields actual label values, not published group ids.
#: (The same ``.labels`` read in ``repro.cloud.*`` sees only ``Go``'s
#: group ids, so it is not a source there.)
PLAINTEXT_MODULES: tuple[str, ...] = (
    "repro.core.data_owner",
    "repro.core.query_client",
    "repro.client",
    "repro.anonymize",
    "repro.kauto.builder",
)


@dataclass(frozen=True)
class TaintSource:
    """One way a tainted value enters a function.

    ``attr`` is the attribute (``via_call=False``) or method
    (``via_call=True``) whose read/call introduces taint of ``kind``.
    ``modules`` scopes the source to module prefixes (empty = every
    ``repro.*`` module).
    """

    kind: str
    attr: str
    via_call: bool
    modules: tuple[str, ...]
    why: str


#: Taint kinds: ``label`` = plaintext label values, ``graph`` = the
#: owner/client-held original graph, ``secret`` = credentials,
#: ``error`` = text of an arbitrary internal exception.
TAINT_SOURCES: tuple[TaintSource, ...] = (
    TaintSource(
        "label",
        "labels",
        via_call=False,
        modules=PLAINTEXT_MODULES,
        why="per-attribute raw label sets of a plaintext vertex",
    ),
    TaintSource(
        "label",
        "label_items",
        via_call=True,
        modules=PLAINTEXT_MODULES,
        why="raw (attribute, label) pairs of a plaintext vertex",
    ),
    TaintSource(
        "label",
        "members",
        via_call=True,
        modules=(),
        why="LCT.members de-anonymizes a group id to raw labels "
        "(the LCT is the client-side secret)",
    ),
    TaintSource(
        "graph",
        "graph",
        via_call=False,
        modules=("repro.core.data_owner", "repro.core.query_client"),
        why="the owner/client-held original graph G (paper Section 3)",
    ),
    TaintSource(
        "secret",
        "token",
        via_call=False,
        modules=(),
        why="a client credential; must never appear in logs or errors",
    ),
    TaintSource(
        "secret",
        "gateway_token",
        via_call=False,
        modules=(),
        why="the gateway auth secret (SystemConfig / CLI flag)",
    ),
)

#: Attribute/function names whose *call* clears taint: each provably
#: maps plaintext to the published/cloud-visible domain.
TAINT_SANITIZERS: dict[str, str] = {
    # LCT grouping: raw labels -> published group ids (Section 4.1)
    "generalize_label_map": "LCT grouping",
    "group_of": "LCT grouping",
    "apply_to_graph": "LCT grouping applied to a whole graph",
    "anonymize_query": "query anonymization (Q -> Qo)",
    # AVT remapping: vertex ids -> alignment-table images (Section 5)
    "remap_rows": "AVT row remap",
    "apply_to_match": "AVT match remap",
    "to_block_anchor": "AVT block anchor",
    # k-automorphism publication: G -> Gk/Go
    "build_kauto": "k-automorphic transformation",
    # one-way digests
    "sha256": "cryptographic hash",
    "blake2b": "cryptographic hash",
    "hexdigest": "cryptographic hash",
    "query_signature": "structural query digest",
    "coalesce_key": "structural query digest",
}

#: Calls whose result is declared taint-free even when handed tainted
#: arguments: they return metadata/verdicts, never embedded content.
#: (``before``/``after`` are the reviewed middleware-chain hooks — a
#: rejection they return carries policy text, not request payloads.)
TAINT_NEUTRAL_CALLS: frozenset[str] = frozenset(
    {
        "len",
        "type",
        "bool",
        "int",
        "float",
        "range",
        "enumerate",
        "id",
        "isinstance",
        "hash",
        "compare_digest",
        "before",
        "after",
    }
)


@dataclass(frozen=True)
class TaintSink:
    """One way bytes leave toward the cloud/telemetry boundary.

    ``name`` matches the called function (``via_attr=False``) or the
    called attribute/method (``via_attr=True``); a ``*`` suffix is a
    prefix match.  ``allows`` lists taint kinds the sink may
    legitimately carry (the hello frame *is* the credential carrier).
    """

    name: str
    via_attr: bool
    allows: tuple[str, ...]
    what: str


TAINT_SINKS: tuple[TaintSink, ...] = (
    TaintSink(
        "encode_gateway_hello",
        via_attr=False,
        allows=("secret",),
        what="the gateway hello frame (carries the credential by design)",
    ),
    TaintSink("encode_*", via_attr=False, allows=(), what="a wire codec"),
    TaintSink(
        "transmit",
        via_attr=True,
        allows=(),
        what="the simulated network channel",
    ),
    TaintSink("emit", via_attr=True, allows=(), what="the JSONL event log"),
    TaintSink(
        "emit_query", via_attr=True, allows=(), what="the JSONL event log"
    ),
    TaintSink(
        "emit_spans", via_attr=True, allows=(), what="the JSONL event log"
    ),
)

#: Exceptions whose text crosses the trust boundary (they are framed
#: into reject messages or surface on the remote caller); constructing
#: one from tainted text is a sink.
BOUNDARY_EXCEPTIONS: frozenset[str] = frozenset(
    {"ProtocolError", "GatewayError", "GatewayRejected"}
)

#: Modules where ``except Exception as e`` binds *internal* error text
#: that remote clients must never see (the gateway fronts untrusted
#: callers; the in-process cloud layers share one trust domain).
ERROR_TAINT_MODULES: tuple[str, ...] = ("repro.gateway",)


def sources_for(module: str) -> tuple[TaintSource, ...]:
    """The taint sources applicable inside ``module``."""
    return tuple(
        source
        for source in TAINT_SOURCES
        if not source.modules
        or any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in source.modules
        )
    )


def sink_for(name: str, via_attr: bool) -> TaintSink | None:
    """The sink matching a called ``name``, or ``None``."""
    for sink in TAINT_SINKS:
        if sink.via_attr is not via_attr:
            continue
        if sink.name.endswith("*"):
            if name.startswith(sink.name[:-1]):
                return sink
        elif name == sink.name:
            return sink
    return None


def allowed_for(module: str) -> tuple[str, ...] | None:
    """The allowlist governing ``module``, or ``None`` if unrestricted."""
    for layer, allowed in LAYERS.items():
        if module == layer or module.startswith(layer + "."):
            return allowed
    return None


def is_allowed(imported: str, allowed: tuple[str, ...]) -> bool:
    """Whether ``imported`` matches one of the allowed prefixes."""
    return any(
        imported == prefix or imported.startswith(prefix + ".")
        for prefix in allowed
    )


def forbidden_reason(imported: str) -> str:
    """The targeted explanation for ``imported``, if one is declared."""
    for prefix, reason in FORBIDDEN_REASONS.items():
        if imported == prefix or imported.startswith(prefix + "."):
            return reason
    return "not in the declared cloud-visible import surface"
