"""The declared layering manifest behind the R1 trust-boundary rule.

The paper's threat model (Section 3): the cloud is *honest but
curious*.  It receives only the outsourced graph ``Go``, the published
Alignment Vertex Table, and anonymized queries ``Qo`` — never the
original graph ``G``, raw labels, or the client-private Label
Correspondence Table.  In code, that boundary is an *import* boundary:
``repro.cloud.*`` must be buildable and auditable from the
cloud-visible surface alone.

``LAYERS`` maps a layer prefix to the module prefixes it may import
from within ``repro``; anything else under ``repro.`` is a violation.
``FORBIDDEN_REASONS`` documents *why* the best-known offenders are
outside the boundary, so R1 findings explain themselves.
"""

from __future__ import annotations

#: layer prefix -> the repro-internal import surface it is allowed.
#: Prefixes match whole dotted components (``repro.obs`` also allows
#: ``repro.obs.names``, but not ``repro.obscure``).
LAYERS: dict[str, tuple[str, ...]] = {
    # The honest-but-curious cloud: only the published/cloud-visible
    # surface.  Notably absent: repro.client (query expansion over the
    # private LCT), repro.core.data_owner / repro.core.query_client
    # (plaintext G and Q), repro.anonymize minus the cost model (the
    # LCT and the anonymization strategies are owner/client secrets),
    # and repro.kauto minus the published AVT.
    "repro.cloud": (
        "repro.cloud",  # intra-layer
        "repro.graph",  # published graph structures (Go / Gk)
        "repro.matching",  # star/match data structures + engines
        "repro.anonymize.cost_model",  # cloud-side cardinality estimation
        "repro.kauto.avt",  # the *published* Alignment Vertex Table
        # the multilevel partitioner is a pure structural algorithm over
        # whatever graph it is handed; the sharded cloud runs it on the
        # published Go it already stores, so no owner/client secret
        # crosses the boundary (labels/LCT are never consulted).
        "repro.kauto.partition",
        "repro.obs",  # observability (names, tracing, metrics)
        "repro.core.protocol",  # the wire the cloud legitimately sees
        "repro.outsource",  # Go + delta structures the owner uploads
        "repro.exceptions",  # shared error taxonomy (no data)
        "repro.compat",  # deprecation shim helper (no data)
        "repro.analysis.markers",  # dependency-free lint markers
    ),
    # The serving gateway runs *on the cloud side* of the trust
    # boundary: it fronts the cloud engine for remote clients, so it
    # sees exactly what the cloud sees (Go, the published AVT,
    # anonymized queries on the wire) and nothing more.  Its surface is
    # the cloud allowlist plus itself and the per-call QueryOptions
    # value object (plain tuning knobs, no data).
    "repro.gateway": (
        "repro.gateway",  # intra-layer
        "repro.cloud",
        "repro.graph",
        "repro.matching",
        "repro.anonymize.cost_model",
        "repro.kauto.avt",
        "repro.kauto.partition",
        "repro.obs",
        "repro.core.protocol",
        "repro.core.options",  # per-call knobs (no graph data)
        "repro.outsource",
        "repro.exceptions",
        "repro.compat",
        "repro.analysis.markers",
    ),
}

#: Module prefixes whose appearance in a restricted layer gets a
#: targeted explanation (beyond the generic "not in the manifest").
FORBIDDEN_REASONS: dict[str, str] = {
    "repro.client": (
        "client-side query expansion/filtering runs over the private "
        "LCT and original labels (paper Section 4.2.2)"
    ),
    "repro.core.data_owner": (
        "the data owner holds the original graph G and the private LCT "
        "(paper Section 3)"
    ),
    "repro.core.query_client": (
        "the query client holds the plaintext query Q and the LCT "
        "(paper Section 3)"
    ),
    "repro.anonymize.lct": (
        "the Label Correspondence Table is the client-side secret that "
        "de-anonymizes labels (paper Section 4.1)"
    ),
    "repro.anonymize.strategies": (
        "label-grouping strategies consume raw label distributions the "
        "cloud must never see"
    ),
    "repro.anonymize.query_anonymizer": (
        "query anonymization consumes the plaintext query Q"
    ),
    "repro.anonymize.eff": (
        "EFF grouping consumes raw label frequencies (owner-side)"
    ),
    "repro.kauto.builder": (
        "the k-automorphism builder transforms the original graph G "
        "(owner-side, paper Section 5)"
    ),
    "repro.attacks": (
        "attack simulations model the adversary; the serving cloud "
        "must not depend on them"
    ),
}


def allowed_for(module: str) -> tuple[str, ...] | None:
    """The allowlist governing ``module``, or ``None`` if unrestricted."""
    for layer, allowed in LAYERS.items():
        if module == layer or module.startswith(layer + "."):
            return allowed
    return None


def is_allowed(imported: str, allowed: tuple[str, ...]) -> bool:
    """Whether ``imported`` matches one of the allowed prefixes."""
    return any(
        imported == prefix or imported.startswith(prefix + ".")
        for prefix in allowed
    )


def forbidden_reason(imported: str) -> str:
    """The targeted explanation for ``imported``, if one is declared."""
    for prefix, reason in FORBIDDEN_REASONS.items():
        if imported == prefix or imported.startswith(prefix + "."):
            return reason
    return "not in the declared cloud-visible import surface"
