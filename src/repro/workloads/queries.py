"""Query workload generation (Section 6.3 of the paper).

"We generate query graphs by randomly extracting connected subgraphs
from the data graph G, ensuring that |E(Q)| meets a user-specified
parameter value N.  Specifically, we randomly locate the first edge e
from the data graph G and set E(Q) = {e}.  We then expand the current
query graph Q through a random walk over G iteratively until it
reaches N edges."

Query vertices inherit the data vertex's type and labels (optionally a
random subset, to also exercise the subset-containment matching
semantics), and are re-numbered 0..n-1.
"""

from __future__ import annotations

import random

from repro.exceptions import QueryError
from repro.graph.attributed import AttributedGraph
from repro.matching.match import Match


def random_walk_query(
    graph: AttributedGraph,
    edge_count: int,
    seed: int = 0,
    keep_label_probability: float = 1.0,
    max_attempts: int = 200,
) -> AttributedGraph:
    """Extract one connected ``edge_count``-edge query from ``graph``.

    ``keep_label_probability`` < 1 drops each query label independently
    with the complementary probability (a vertex always keeps its
    type), producing less selective queries.  Raises
    :class:`QueryError` if the graph cannot host such a query.
    """
    if edge_count < 1:
        raise QueryError("queries need at least one edge")
    if graph.edge_count == 0:
        raise QueryError("data graph has no edges to sample from")
    rng = random.Random(seed)
    edges = sorted(graph.edges())

    for _ in range(max_attempts):
        first = edges[rng.randrange(len(edges))]
        query_vertices: set[int] = {first[0], first[1]}
        query_edges: set[tuple[int, int]] = {first}
        stuck = 0
        while len(query_edges) < edge_count and stuck < 50 * edge_count:
            u = rng.choice(sorted(query_vertices))
            neighbors = sorted(graph.neighbors(u))
            if not neighbors:
                stuck += 1
                continue
            v = neighbors[rng.randrange(len(neighbors))]
            edge = (min(u, v), max(u, v))
            if edge in query_edges:
                stuck += 1
                continue
            query_edges.add(edge)
            query_vertices.add(v)
            stuck = 0
        if len(query_edges) == edge_count:
            return _materialize_query(
                graph, query_vertices, query_edges, rng, keep_label_probability
            )
    raise QueryError(
        f"could not extract a connected query with {edge_count} edges"
    )


def _materialize_query(
    graph: AttributedGraph,
    vertices: set[int],
    edges: set[tuple[int, int]],
    rng: random.Random,
    keep_label_probability: float,
) -> AttributedGraph:
    renumber = {vid: i for i, vid in enumerate(sorted(vertices))}
    query = AttributedGraph(f"query-{len(edges)}e")
    for vid in sorted(vertices):
        data = graph.vertex(vid)
        labels: dict[str, list[str]] = {}
        for attr, values in data.labels.items():
            kept = [
                label
                for label in sorted(values)
                if rng.random() < keep_label_probability
            ]
            if kept:
                labels[attr] = kept
        query.add_vertex(renumber[vid], data.vertex_type, labels)
    for u, v in sorted(edges):
        query.add_edge(renumber[u], renumber[v])
    return query


def planted_match(
    graph: AttributedGraph,
    query: AttributedGraph,
    source_vertices: set[int],
) -> Match:
    """The embedding a random-walk query was extracted from.

    Provided for tests: queries built by :func:`random_walk_query`
    always have at least this one match in the data graph.
    """
    ordered = sorted(source_vertices)
    return {i: vid for i, vid in enumerate(ordered)}


def extract_shape_query(
    graph: AttributedGraph,
    shape: str,
    size: int,
    seed: int = 0,
    keep_label_probability: float = 1.0,
    max_attempts: int = 400,
) -> AttributedGraph:
    """Extract a query of a specific topology from ``graph``.

    Shapes (``size`` = number of edges):

    * ``"path"``  — a simple path of ``size`` edges;
    * ``"star"``  — a center with ``size`` leaves;
    * ``"cycle"`` — a simple cycle of ``size`` edges (size >= 3);
    * ``"clique"`` — a complete subgraph with ``size`` edges
      (so size must be triangular: 3, 6, 10, ...).

    Like :func:`random_walk_query`, the query is a real subgraph of
    ``graph`` (it always has at least one match).  Raises
    :class:`QueryError` when the graph does not contain the shape.
    """
    rng = random.Random(seed)
    if shape == "path":
        finder = _find_path
        args = (size,)
    elif shape == "star":
        finder = _find_star
        args = (size,)
    elif shape == "cycle":
        if size < 3:
            raise QueryError("cycles need at least 3 edges")
        finder = _find_cycle
        args = (size,)
    elif shape == "clique":
        n = int((1 + (1 + 8 * size) ** 0.5) / 2)
        if n * (n - 1) // 2 != size:
            raise QueryError(f"{size} is not a triangular number of edges")
        finder = _find_clique
        args = (n,)
    else:
        raise QueryError(f"unknown query shape {shape!r}")

    for _ in range(max_attempts):
        found = finder(graph, rng, *args)
        if found is not None:
            vertices, edges = found
            return _materialize_query(
                graph, vertices, edges, rng, keep_label_probability
            )
    raise QueryError(f"graph contains no {shape} with {size} edges")


def _find_path(graph, rng, length):
    start = rng.choice(sorted(graph.vertex_ids()))
    path = [start]
    seen = {start}
    while len(path) <= length:
        options = [n for n in sorted(graph.neighbors(path[-1])) if n not in seen]
        if not options:
            return None
        nxt = rng.choice(options)
        path.append(nxt)
        seen.add(nxt)
        if len(path) == length + 1:
            edges = {
                (min(a, b), max(a, b)) for a, b in zip(path, path[1:])
            }
            return seen, edges
    return None


def _find_star(graph, rng, leaves):
    candidates = [v for v in sorted(graph.vertex_ids()) if graph.degree(v) >= leaves]
    if not candidates:
        return None
    center = rng.choice(candidates)
    chosen = rng.sample(sorted(graph.neighbors(center)), leaves)
    vertices = {center, *chosen}
    edges = {(min(center, leaf), max(center, leaf)) for leaf in chosen}
    return vertices, edges


def _find_cycle(graph, rng, length):
    found = _find_path(graph, rng, length - 1)
    if found is None:
        return None
    vertices, edges = found
    # the path's endpoints must be adjacent to close the cycle
    degree_one = [
        v
        for v in vertices
        if sum(1 for e in edges if v in e) == 1
    ]
    if len(degree_one) != 2 or not graph.has_edge(*degree_one):
        return None
    u, v = degree_one
    edges = set(edges) | {(min(u, v), max(u, v))}
    return vertices, edges


def _find_clique(graph, rng, n):
    seed_vertex = rng.choice(sorted(graph.vertex_ids()))
    clique = [seed_vertex]
    candidates = set(graph.neighbors(seed_vertex))
    while len(clique) < n and candidates:
        nxt = rng.choice(sorted(candidates))
        clique.append(nxt)
        candidates &= graph.neighbors(nxt)
    if len(clique) < n:
        return None
    vertices = set(clique)
    edges = {
        (min(a, b), max(a, b))
        for i, a in enumerate(clique)
        for b in clique[i + 1 :]
    }
    return vertices, edges


def generate_workload(
    graph: AttributedGraph,
    edge_count: int,
    query_count: int,
    seed: int = 0,
    keep_label_probability: float = 1.0,
) -> list[AttributedGraph]:
    """A batch of random-walk queries (the paper averages over 100)."""
    return [
        random_walk_query(
            graph,
            edge_count,
            seed=seed * 10_000 + i,
            keep_label_probability=keep_label_probability,
        )
        for i in range(query_count)
    ]
