"""Scaled synthetic analogues of the paper's evaluation datasets.

The paper evaluates on three real graphs (Table 2):

================  ==========  ===========  ======  ==========  ========
dataset           |V|         |E|          types   attributes  labels
================  ==========  ===========  ======  ==========  ========
Web-NotreDame     325,729     1,090,108    1       1           200
DBpedia           3,243,606   8,588,047    86      101         6,300
UK-2002           18,520,486  261,787,258  2,500   2,500       20,000
================  ==========  ===========  ======  ==========  ========

Those exact crawls are not redistributable here and are far beyond
pure-Python matching speed, so each factory below generates a graph
with the same *shape* at a configurable scale: the paper's observation
that label frequencies are Zipfian is preserved (with per-dataset
skews), as are the relative type/label multiplicities and power-law-ish
degree structure.  Query cost in this system is driven by exactly
these properties, so the evaluation shapes (who wins, how costs scale
in ``k`` and ``|E(Q)|``) carry over; absolute milliseconds do not, and
EXPERIMENTS.md compares shapes, not absolutes.

One deliberate calibration: vertices carry **two** labels per
attribute.  Scaling |V| down by ~1000x while keeping per-group label
frequencies fixed would make candidate sets *relatively* ~1000x larger
than the paper's (the symmetric row-union multiplies each group's
frequency by up to k), and at k=6 an |E(Q)|=12 query would blow up a
pure-Python joiner the same way the paper's own BAS curve blows up to
10^6-10^7 ms on real hardware.  Two labels per query vertex restores
the selectivity *ratio* between candidates and graph size, which is the
quantity the evaluation shapes actually depend on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.graph.attributed import AttributedGraph
from repro.graph.generators import make_schema, random_attributed_graph
from repro.graph.schema import GraphSchema


@dataclass
class Dataset:
    """A generated dataset with its schema and provenance label."""

    name: str
    graph: AttributedGraph
    schema: GraphSchema


def web_notredame_like(scale: float = 1.0, seed: int = 0) -> Dataset:
    """Web-graph analogue: one type, one attribute, 200 Zipf labels.

    ``scale=1.0`` yields ~1,500 vertices with the paper's ~3.3 edges
    per vertex; labels follow a fairly skewed Zipf (web page categories
    are highly skewed).
    """
    vertex_count = max(50, int(1500 * scale))
    schema = make_schema(
        type_count=1, attributes_per_type=1, labels_per_attribute=200, prefix="page"
    )
    graph = random_attributed_graph(
        schema,
        vertex_count,
        edges_per_vertex=3,
        label_skew=0.8,
        labels_per_vertex=2,
        type_skew=0.0,
        seed=seed,
        name="web-notredame-like",
    )
    return Dataset("Web-NotreDame", graph, schema)


def dbpedia_like(scale: float = 1.0, seed: int = 1) -> Dataset:
    """Knowledge-graph analogue: many types, moderate label skew.

    ``scale=1.0`` yields ~2,000 vertices, 12 types with 12 labels each
    (the paper's 86 types / 6,300 labels scaled down proportionally),
    ~2.6 edges per vertex.
    """
    vertex_count = max(60, int(2000 * scale))
    schema = make_schema(
        type_count=12, attributes_per_type=1, labels_per_attribute=40, prefix="ent"
    )
    graph = random_attributed_graph(
        schema,
        vertex_count,
        edges_per_vertex=2,
        label_skew=0.8,
        labels_per_vertex=2,
        type_skew=0.8,
        seed=seed,
        name="dbpedia-like",
    )
    return Dataset("DBpedia", graph, schema)


def uk2002_like(scale: float = 1.0, seed: int = 2) -> Dataset:
    """Large-crawl analogue: densest graph, many types and labels.

    ``scale=1.0`` yields ~2,500 vertices with ~5 edges per vertex
    (UK-2002's average degree of ~28 is reduced to keep pure-Python
    matching tractable; degree skew is preserved), 25 types with 16
    labels each.
    """
    vertex_count = max(80, int(2500 * scale))
    schema = make_schema(
        type_count=25, attributes_per_type=1, labels_per_attribute=30, prefix="host"
    )
    graph = random_attributed_graph(
        schema,
        vertex_count,
        edges_per_vertex=4,
        label_skew=0.8,
        labels_per_vertex=2,
        type_skew=0.9,
        seed=seed,
        name="uk2002-like",
    )
    return Dataset("UK-2002", graph, schema)


DATASETS: dict[str, Callable[..., Dataset]] = {
    "Web-NotreDame": web_notredame_like,
    "DBpedia": dbpedia_like,
    "UK-2002": uk2002_like,
}
"""Dataset factories keyed by the paper's dataset names."""


def load_dataset(name: str, scale: float = 1.0, seed: int | None = None) -> Dataset:
    """Instantiate a dataset analogue by its paper name."""
    try:
        factory = DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; expected one of {sorted(DATASETS)}"
        ) from None
    if seed is None:
        return factory(scale=scale)
    return factory(scale=scale, seed=seed)
