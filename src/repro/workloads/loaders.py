"""Loading real graph data (SNAP-style edge lists).

The paper's datasets (Web-NotreDame, UK-2002) are distributed as plain
edge lists; users holding those files can run the full pipeline on the
real data with::

    graph = load_snap_edgelist("web-NotreDame.txt")
    graph, schema = assign_synthetic_labels(graph, label_count=200)

(The crawls carry no vertex attributes, so labels must be synthesized —
the same Zipf assignment the analogues use; the paper likewise
"extracts/adds" attribute data for its label experiments.)
"""

from __future__ import annotations

import random
from pathlib import Path

from repro.exceptions import GraphError
from repro.graph.attributed import AttributedGraph
from repro.graph.generators import zipf_weights
from repro.graph.schema import GraphSchema


def load_snap_edgelist(
    path: str | Path,
    comment_prefix: str = "#",
    vertex_type: str = "node",
    directed_as_undirected: bool = True,
    max_vertices: int | None = None,
    name: str | None = None,
) -> AttributedGraph:
    """Parse a whitespace-separated edge list into an attributed graph.

    * lines starting with ``comment_prefix`` are skipped;
    * vertex ids are renumbered densely from 0 (SNAP ids are sparse);
    * self loops and duplicate/reverse edges collapse silently
      (``directed_as_undirected``), matching the paper's undirected
      model;
    * ``max_vertices`` truncates huge files: edges whose endpoints both
      fall inside the first ``max_vertices`` distinct ids are kept.
    """
    path = Path(path)
    graph = AttributedGraph(name or path.stem)
    renumber: dict[str, int] = {}

    def vertex_of(token: str) -> int | None:
        if token in renumber:
            return renumber[token]
        if max_vertices is not None and len(renumber) >= max_vertices:
            return None
        vid = len(renumber)
        renumber[token] = vid
        graph.add_vertex(vid, vertex_type)
        return vid

    with path.open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(comment_prefix):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphError(
                    f"{path}:{line_number}: expected two ids, got {line!r}"
                )
            u = vertex_of(parts[0])
            v = vertex_of(parts[1])
            if u is None or v is None or u == v:
                continue
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
    if graph.vertex_count == 0:
        raise GraphError(f"{path}: no vertices parsed")
    return graph


def assign_synthetic_labels(
    graph: AttributedGraph,
    label_count: int = 200,
    labels_per_vertex: int = 2,
    skew: float = 0.8,
    attribute: str | None = None,
    seed: int = 0,
) -> tuple[AttributedGraph, GraphSchema]:
    """Give every vertex Zipf-distributed labels, returning (graph, schema).

    Vertices keep their ids and edges; each receives
    ``labels_per_vertex`` distinct labels for one attribute, drawn
    Zipf(``skew``) from a ``label_count`` universe — the same
    label model the dataset analogues use, applied to real structure.
    Vertices may have different types; each type gets its own attribute
    per Definition 1.
    """
    rng = random.Random(seed)
    types = sorted({data.vertex_type for data in graph.vertices()})
    schema_dict = {}
    for vertex_type in types:
        attr = attribute or f"{vertex_type}_label"
        schema_dict[vertex_type] = {
            attr: [f"{vertex_type}_l{i}" for i in range(label_count)]
        }
    schema = GraphSchema.from_dict(schema_dict)

    weights = zipf_weights(label_count, skew)
    out = AttributedGraph(graph.name)
    for data in graph.vertices():
        attr = attribute or f"{data.vertex_type}_label"
        universe = sorted(schema.labels_of(data.vertex_type, attr))
        chosen: set[str] = set()
        count = min(labels_per_vertex, label_count)
        while len(chosen) < count:
            chosen.add(rng.choices(universe, weights=weights)[0])
        out.add_vertex(data.vertex_id, data.vertex_type, {attr: sorted(chosen)})
    for u, v in graph.edges():
        out.add_edge(u, v)
    return out, schema
