"""Evaluation workloads: dataset analogues and query generation."""

from repro.workloads.datasets import (
    DATASETS,
    Dataset,
    dbpedia_like,
    load_dataset,
    uk2002_like,
    web_notredame_like,
)
from repro.workloads.loaders import assign_synthetic_labels, load_snap_edgelist
from repro.workloads.queries import (
    extract_shape_query,
    generate_workload,
    planted_match,
    random_walk_query,
)

__all__ = [
    "Dataset",
    "DATASETS",
    "load_dataset",
    "web_notredame_like",
    "dbpedia_like",
    "uk2002_like",
    "random_walk_query",
    "extract_shape_query",
    "generate_workload",
    "planted_match",
    "load_snap_edgelist",
    "assign_synthetic_labels",
]
