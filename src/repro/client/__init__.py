"""Client-side result processing (Algorithm 3)."""

from repro.client.expansion import ExpansionResult, expand_rin
from repro.client.filtering import ClientFilter, FilterResult, filter_candidates

__all__ = [
    "expand_rin",
    "ExpansionResult",
    "ClientFilter",
    "filter_candidates",
    "FilterResult",
]
