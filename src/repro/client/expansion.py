"""Client-side match expansion (Lines 1-5 of Algorithm 3).

The cloud ships ``Rin`` — the matches of ``R(Qo, Gk)`` anchored in
block ``B1``.  The client recovers the rest, ``Rout``, by mapping every
``Rin`` match through the automorphic functions ``F_1 .. F_{k-1}``
(Theorem 3 guarantees this yields exactly ``R(Qo, Gk)``).  The paper
notes this step can equally run in the cloud, trading client CPU for
communication volume — :class:`repro.core.system.PrivacyPreservingSystem`
exposes that choice.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.analysis.markers import hot_path
from repro.kauto.avt import AlignmentVertexTable
from repro.matching.match import Match, dedupe_matches
from repro.matching.table import MatchTable


@dataclass
class ExpansionResult:
    matches: list[Match]
    seconds: float
    rin_size: int
    rout_size: int


@dataclass
class TableExpansionResult:
    """Columnar counterpart of :class:`ExpansionResult`."""

    table: MatchTable
    seconds: float
    rin_size: int
    rout_size: int


@hot_path
def expand_rin_table(
    rin: MatchTable, avt: AlignmentVertexTable
) -> TableExpansionResult:
    """Columnar Lines 1-5: ``Rin ∪ F_1(Rin) ∪ ... ∪ F_{k-1}(Rin)``.

    The automorphic functions are applied as per-shift id-lookup remaps
    over the row columns — with the vector backend, one dense-LUT
    gather per column per shift and a single first-seen dedupe pass
    (see :meth:`~repro.kauto.avt.AlignmentVertexTable
    .expand_known_table`) — and dedupe keys are the row tuples
    themselves; no per-match dict builds or ``match_key`` sorts.  The
    surviving rows equal :func:`expand_rin` of the same matches, in
    the same order; unknown vertex ids are dropped up front exactly as
    there.
    """
    started = time.perf_counter()
    full = avt.expand_known_table(rin)
    return TableExpansionResult(
        table=full,
        seconds=time.perf_counter() - started,
        rin_size=len(rin),
        rout_size=len(full) - len(rin),
    )


def expand_rin(rin: list[Match], avt: AlignmentVertexTable) -> ExpansionResult:
    """``R(Qo, Gk) = Rin ∪ F_1(Rin) ∪ ... ∪ F_{k-1}(Rin)``.

    Matches referencing vertices unknown to the AVT are dropped up
    front: an honest cloud never produces them (every ``Go`` vertex is
    in the AVT), so they can only come from corruption or tampering and
    could never survive the client filter anyway.
    """
    started = time.perf_counter()
    usable = [match for match in rin if all(v in avt for v in match.values())]
    expanded: list[Match] = list(usable)
    for m in range(1, avt.k):
        for match in usable:
            expanded.append(avt.apply_to_match(match, m))
    full = dedupe_matches(expanded)
    return ExpansionResult(
        matches=full,
        seconds=time.perf_counter() - started,
        rin_size=len(rin),
        rout_size=len(full) - len(rin),
    )
