"""Client-side false-positive filtering (Lines 6-23 of Algorithm 3).

The candidate set ``R(Qo, Gk)`` over-approximates ``R(Q, G)`` in three
ways, each removed by one hash-backed check:

1. a match may use a noise vertex absent from ``G``;
2. a match may use a noise edge absent from ``G``;
3. a match may rely on generalized labels — the data vertex carries the
   right label *group* but not the exact label the original query ``Q``
   asked for.

All checks are O(1) per vertex/edge, so the client's work is linear in
the number of candidate matches — the property that makes outsourcing
worthwhile (Section 2.3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.analysis.markers import hot_path
from repro.graph.attributed import AttributedGraph, VertexData
from repro.matching.match import Match
from repro.matching.table import MatchTable, Row


@dataclass
class FilterResult:
    matches: list[Match]
    seconds: float
    candidates: int
    dropped_vertex: int = 0
    dropped_edge: int = 0
    dropped_label: int = 0

    @property
    def dropped(self) -> int:
        return self.dropped_vertex + self.dropped_edge + self.dropped_label


@dataclass
class TableFilterResult:
    """Columnar counterpart of :class:`FilterResult`."""

    table: MatchTable
    seconds: float
    candidates: int
    dropped_vertex: int = 0
    dropped_edge: int = 0
    dropped_label: int = 0

    @property
    def dropped(self) -> int:
        return self.dropped_vertex + self.dropped_edge + self.dropped_label


class ClientFilter:
    """Precomputed hash structures over the original ``G`` and ``Q``."""

    def __init__(self, original_graph: AttributedGraph, original_query: AttributedGraph):
        self.graph = original_graph
        self.query = original_query
        self._vertex_set = original_graph.vertex_id_set()
        self._query_edges = list(original_query.edges())

    def filter(self, candidates: list[Match], limit: int | None = None) -> FilterResult:
        """Keep exactly the candidates that are matches of Q over G.

        ``limit`` stops the scan once that many true matches are found
        (top-``limit`` queries pay for only part of the candidate set).
        """
        started = time.perf_counter()
        graph = self.graph
        query = self.query
        vertex_set = self._vertex_set
        kept: list[Match] = []
        dropped_vertex = dropped_edge = dropped_label = 0

        for match in candidates:
            if limit is not None and len(kept) >= limit:
                break
            # Lines 9-12: every matched vertex must exist in G.
            if any(v not in vertex_set for v in match.values()):
                dropped_vertex += 1
                continue
            # Lines 15-18: every query edge must exist in G.
            if any(
                not graph.has_edge(match[q1], match[q2])
                for q1, q2 in self._query_edges
            ):
                dropped_edge += 1
                continue
            # Lines 21-22: exact (raw) label containment against Q.
            if any(
                not query.vertex(q).matches(graph.vertex(v))
                for q, v in match.items()
            ):
                dropped_label += 1
                continue
            kept.append(match)

        return FilterResult(
            matches=kept,
            seconds=time.perf_counter() - started,
            candidates=len(candidates),
            dropped_vertex=dropped_vertex,
            dropped_edge=dropped_edge,
            dropped_label=dropped_label,
        )

    @hot_path
    def filter_table(
        self, candidates: MatchTable, limit: int | None = None
    ) -> TableFilterResult:
        """Columnar Lines 6-23: scan rows with positional checks.

        The query's edges become precomputed ``(column, column)`` index
        pairs, and the exact-label containment per column is memoized
        across rows (label groups revisit the same data vertices), so
        the per-row work is a membership test per value, a ``has_edge``
        per query edge, and a dict hit per column.  Kept rows — and the
        three drop counters — are identical to :meth:`filter` on the
        dict form of the same table, with the same drop priority
        (vertex, then edge, then label).
        """
        started = time.perf_counter()
        graph = self.graph
        query = self.query
        vertex_set = self._vertex_set
        has_edge = graph.has_edge
        data_vertex = graph.vertex
        column_of = candidates.column_of
        edge_pairs = [
            (column_of(q1), column_of(q2)) for q1, q2 in self._query_edges
        ]
        # (column, query vertex, memo) per schema column: the label
        # check depends only on (query vertex, data vertex), never on
        # the row, so it is cached across the whole scan.
        label_checks: list[tuple[int, VertexData, dict[int, bool]]] = [
            (i, query.vertex(q), {}) for i, q in enumerate(candidates.schema)
        ]

        kept: list[Row] = []
        append = kept.append
        dropped_vertex = dropped_edge = dropped_label = 0

        for row in candidates.rows:
            if limit is not None and len(kept) >= limit:
                break
            # Lines 9-12: every matched vertex must exist in G.
            ok = True
            for v in row:
                if v not in vertex_set:
                    ok = False
                    break
            if not ok:
                dropped_vertex += 1
                continue
            # Lines 15-18: every query edge must exist in G.
            for c1, c2 in edge_pairs:
                if not has_edge(row[c1], row[c2]):
                    ok = False
                    break
            if not ok:
                dropped_edge += 1
                continue
            # Lines 21-22: exact (raw) label containment against Q.
            for i, query_vertex, memo in label_checks:
                v = row[i]
                hit = memo.get(v)
                if hit is None:
                    hit = query_vertex.matches(data_vertex(v))
                    memo[v] = hit
                if not hit:
                    ok = False
                    break
            if not ok:
                dropped_label += 1
                continue
            append(row)

        return TableFilterResult(
            table=MatchTable(candidates.schema, kept),
            seconds=time.perf_counter() - started,
            candidates=len(candidates),
            dropped_vertex=dropped_vertex,
            dropped_edge=dropped_edge,
            dropped_label=dropped_label,
        )


def filter_candidates(
    candidates: list[Match],
    original_graph: AttributedGraph,
    original_query: AttributedGraph,
) -> FilterResult:
    """One-shot convenience wrapper around :class:`ClientFilter`."""
    return ClientFilter(original_graph, original_query).filter(candidates)
