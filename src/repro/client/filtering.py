"""Client-side false-positive filtering (Lines 6-23 of Algorithm 3).

The candidate set ``R(Qo, Gk)`` over-approximates ``R(Q, G)`` in three
ways, each removed by one hash-backed check:

1. a match may use a noise vertex absent from ``G``;
2. a match may use a noise edge absent from ``G``;
3. a match may rely on generalized labels — the data vertex carries the
   right label *group* but not the exact label the original query ``Q``
   asked for.

All checks are O(1) per vertex/edge, so the client's work is linear in
the number of candidate matches — the property that makes outsourcing
worthwhile (Section 2.3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.analysis.markers import hot_path
from repro.cloud.index import GraphCSR
from repro.graph.attributed import AttributedGraph, VertexData
from repro.matching import vec
from repro.matching.match import Match
from repro.matching.table import MatchTable, Row


@dataclass
class FilterResult:
    matches: list[Match]
    seconds: float
    candidates: int
    dropped_vertex: int = 0
    dropped_edge: int = 0
    dropped_label: int = 0

    @property
    def dropped(self) -> int:
        return self.dropped_vertex + self.dropped_edge + self.dropped_label


@dataclass
class TableFilterResult:
    """Columnar counterpart of :class:`FilterResult`."""

    table: MatchTable
    seconds: float
    candidates: int
    dropped_vertex: int = 0
    dropped_edge: int = 0
    dropped_label: int = 0

    @property
    def dropped(self) -> int:
        return self.dropped_vertex + self.dropped_edge + self.dropped_label


class ClientFilter:
    """Precomputed hash structures over the original ``G`` and ``Q``."""

    def __init__(self, original_graph: AttributedGraph, original_query: AttributedGraph):
        self.graph = original_graph
        self.query = original_query
        self._vertex_set = original_graph.vertex_id_set()
        self._query_edges = list(original_query.edges())
        # CSR over G for the bulk filter kernel: built lazily on the
        # first vectorized scan (None = unbuilt, False = ineligible).
        self._csr: GraphCSR | None | bool = None

    def _graph_csr(self) -> GraphCSR | None:
        """The (lazily built) CSR of ``G``, or ``None`` if ineligible."""
        cached = self._csr
        if cached is False:
            return None
        if isinstance(cached, GraphCSR):
            return cached
        built = GraphCSR.build(self.graph)
        self._csr = built if built is not None else False
        return built

    def _bulk_pays_off(self, n_rows: int) -> bool:
        """Whether the bulk kernel amortizes its CSR build for ``n_rows``.

        A filter instance lives for one query, so building the O(V+E)
        CSR of ``G`` only pays when the candidate table is large
        relative to the graph; a selective workload stays on the tuple
        scan.  An already-built CSR (earlier call on this instance) and
        the pinned-numpy test mode skip the cost model.
        """
        if isinstance(self._csr, GraphCSR) or vec.mode() == "numpy":
            return True
        return n_rows >= 256 and n_rows * 4 >= self.graph.vertex_count

    def filter(self, candidates: list[Match], limit: int | None = None) -> FilterResult:
        """Keep exactly the candidates that are matches of Q over G.

        ``limit`` stops the scan once that many true matches are found
        (top-``limit`` queries pay for only part of the candidate set).
        """
        started = time.perf_counter()
        graph = self.graph
        query = self.query
        vertex_set = self._vertex_set
        kept: list[Match] = []
        dropped_vertex = dropped_edge = dropped_label = 0

        for match in candidates:
            if limit is not None and len(kept) >= limit:
                break
            # Lines 9-12: every matched vertex must exist in G.
            if any(v not in vertex_set for v in match.values()):
                dropped_vertex += 1
                continue
            # Lines 15-18: every query edge must exist in G.
            if any(
                not graph.has_edge(match[q1], match[q2])
                for q1, q2 in self._query_edges
            ):
                dropped_edge += 1
                continue
            # Lines 21-22: exact (raw) label containment against Q.
            if any(
                not query.vertex(q).matches(graph.vertex(v))
                for q, v in match.items()
            ):
                dropped_label += 1
                continue
            kept.append(match)

        return FilterResult(
            matches=kept,
            seconds=time.perf_counter() - started,
            candidates=len(candidates),
            dropped_vertex=dropped_vertex,
            dropped_edge=dropped_edge,
            dropped_label=dropped_label,
        )

    @hot_path
    def filter_table(
        self, candidates: MatchTable, limit: int | None = None
    ) -> TableFilterResult:
        """Columnar Lines 6-23: scan rows with positional checks.

        The query's edges become precomputed ``(column, column)`` index
        pairs, and the exact-label containment per column is memoized
        across rows (label groups revisit the same data vertices), so
        the per-row work is a membership test per value, a ``has_edge``
        per query edge, and a dict hit per column.  Kept rows — and the
        three drop counters — are identical to :meth:`filter` on the
        dict form of the same table, with the same drop priority
        (vertex, then edge, then label).
        """
        started = time.perf_counter()
        graph = self.graph
        query = self.query
        vertex_set = self._vertex_set
        has_edge = graph.has_edge
        data_vertex = graph.vertex
        column_of = candidates.column_of
        edge_pairs = [
            (column_of(q1), column_of(q2)) for q1, q2 in self._query_edges
        ]
        query_vertices = [query.vertex(q) for q in candidates.schema]

        if vec.vectorize(len(candidates)) and self._bulk_pays_off(
            len(candidates)
        ):
            bulk = self._filter_columns(
                candidates, edge_pairs, query_vertices, limit
            )
            if bulk is not None:
                table, dropped_vertex, dropped_edge, dropped_label = bulk
                return TableFilterResult(
                    table=table,
                    seconds=time.perf_counter() - started,
                    candidates=len(candidates),
                    dropped_vertex=dropped_vertex,
                    dropped_edge=dropped_edge,
                    dropped_label=dropped_label,
                )

        # (column, query vertex, memo) per schema column: the label
        # check depends only on (query vertex, data vertex), never on
        # the row, so it is cached across the whole scan.
        label_checks: list[tuple[int, VertexData, dict[int, bool]]] = [
            (i, qv, {}) for i, qv in enumerate(query_vertices)
        ]

        kept: list[Row] = []
        append = kept.append
        dropped_vertex = dropped_edge = dropped_label = 0

        candidate_rows = candidates.rows
        for row in candidate_rows:
            if limit is not None and len(kept) >= limit:
                break
            # Lines 9-12: every matched vertex must exist in G.
            ok = True
            for v in row:
                if v not in vertex_set:
                    ok = False
                    break
            if not ok:
                dropped_vertex += 1
                continue
            # Lines 15-18: every query edge must exist in G.
            for c1, c2 in edge_pairs:
                if not has_edge(row[c1], row[c2]):
                    ok = False
                    break
            if not ok:
                dropped_edge += 1
                continue
            # Lines 21-22: exact (raw) label containment against Q.
            for i, query_vertex, memo in label_checks:
                v = row[i]
                hit = memo.get(v)
                if hit is None:
                    hit = query_vertex.matches(data_vertex(v))
                    memo[v] = hit
                if not hit:
                    ok = False
                    break
            if not ok:
                dropped_label += 1
                continue
            append(row)

        return TableFilterResult(
            table=MatchTable(candidates.schema, kept),
            seconds=time.perf_counter() - started,
            candidates=len(candidates),
            dropped_vertex=dropped_vertex,
            dropped_edge=dropped_edge,
            dropped_label=dropped_label,
        )

    @hot_path
    def _filter_columns(
        self,
        candidates: MatchTable,
        edge_pairs: list[tuple[int, int]],
        query_vertices: list[VertexData],
        limit: int | None,
    ) -> tuple[MatchTable, int, int, int] | None:
        """The bulk column kernel behind :meth:`filter_table`.

        Each of the three checks becomes one boolean mask over all
        rows: vertex existence is a bounds-guarded flag gather, the
        edge checks are packed-key membership tests against the CSR's
        sorted edge array, and the exact-label check is a sorted-
        membership test against each query vertex's precomputed
        candidate-id array.  Drop counters come from priority-masked
        combinations (vertex, then edge, then label) and ``limit``
        truncates the scan at the row that produced the limit-th keep
        — exactly the rows the tuple loop would have visited.  Returns
        ``None`` when the CSR or the flat columns are unavailable.
        """
        csr = self._graph_csr()
        if csr is None or not candidates.schema:
            return None
        cols_raw = candidates.as_columns()
        if cols_raw is None:
            return None
        np = vec.np
        cols = [vec.as_ndarray(col) for col in cols_raw]

        vflags = csr.vertex_flags()
        vert_ok = vec.bounded_flags(vflags, cols[0])
        for col in cols[1:]:
            vert_ok &= vec.bounded_flags(vflags, col)

        edge_ok = np.ones(len(candidates), dtype=bool)
        for c1, c2 in edge_pairs:
            edge_ok &= csr.edge_flags(cols[c1], cols[c2])

        label_ok = np.ones(len(candidates), dtype=bool)
        for col, query_vertex in zip(cols, query_vertices):
            label_ok &= vec.isin_sorted(
                col, csr.candidate_array(query_vertex)
            )

        passes = vert_ok & edge_ok & label_ok
        prefix = len(passes)
        if limit is not None:
            # the tuple loop stops *after* the row producing the
            # limit-th keep: rows past it contribute to no counter
            if limit <= 0:
                prefix = 0
            else:
                hits = np.flatnonzero(passes)
                if len(hits) >= limit:
                    prefix = int(hits[limit - 1]) + 1
        if prefix < len(passes):
            vert_ok = vert_ok[:prefix]
            edge_ok = edge_ok[:prefix]
            label_ok = label_ok[:prefix]
            passes = passes[:prefix]
        dropped_vertex = int((~vert_ok).sum())
        dropped_edge = int((vert_ok & ~edge_ok).sum())
        dropped_label = int((vert_ok & edge_ok & ~label_ok).sum())
        kept_cols = [col[:prefix][passes] for col in cols]
        table = MatchTable.from_columns(
            candidates.schema, kept_cols, int(passes.sum())
        )
        return table, dropped_vertex, dropped_edge, dropped_label


def filter_candidates(
    candidates: list[Match],
    original_graph: AttributedGraph,
    original_query: AttributedGraph,
) -> FilterResult:
    """One-shot convenience wrapper around :class:`ClientFilter`."""
    return ClientFilter(original_graph, original_query).filter(candidates)
