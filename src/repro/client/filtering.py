"""Client-side false-positive filtering (Lines 6-23 of Algorithm 3).

The candidate set ``R(Qo, Gk)`` over-approximates ``R(Q, G)`` in three
ways, each removed by one hash-backed check:

1. a match may use a noise vertex absent from ``G``;
2. a match may use a noise edge absent from ``G``;
3. a match may rely on generalized labels — the data vertex carries the
   right label *group* but not the exact label the original query ``Q``
   asked for.

All checks are O(1) per vertex/edge, so the client's work is linear in
the number of candidate matches — the property that makes outsourcing
worthwhile (Section 2.3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.graph.attributed import AttributedGraph
from repro.matching.match import Match


@dataclass
class FilterResult:
    matches: list[Match]
    seconds: float
    candidates: int
    dropped_vertex: int = 0
    dropped_edge: int = 0
    dropped_label: int = 0

    @property
    def dropped(self) -> int:
        return self.dropped_vertex + self.dropped_edge + self.dropped_label


class ClientFilter:
    """Precomputed hash structures over the original ``G`` and ``Q``."""

    def __init__(self, original_graph: AttributedGraph, original_query: AttributedGraph):
        self.graph = original_graph
        self.query = original_query
        self._vertex_set = original_graph.vertex_id_set()
        self._query_edges = list(original_query.edges())

    def filter(self, candidates: list[Match], limit: int | None = None) -> FilterResult:
        """Keep exactly the candidates that are matches of Q over G.

        ``limit`` stops the scan once that many true matches are found
        (top-``limit`` queries pay for only part of the candidate set).
        """
        started = time.perf_counter()
        graph = self.graph
        query = self.query
        vertex_set = self._vertex_set
        kept: list[Match] = []
        dropped_vertex = dropped_edge = dropped_label = 0

        for match in candidates:
            if limit is not None and len(kept) >= limit:
                break
            # Lines 9-12: every matched vertex must exist in G.
            if any(v not in vertex_set for v in match.values()):
                dropped_vertex += 1
                continue
            # Lines 15-18: every query edge must exist in G.
            if any(
                not graph.has_edge(match[q1], match[q2])
                for q1, q2 in self._query_edges
            ):
                dropped_edge += 1
                continue
            # Lines 21-22: exact (raw) label containment against Q.
            if any(
                not query.vertex(q).matches(graph.vertex(v))
                for q, v in match.items()
            ):
                dropped_label += 1
                continue
            kept.append(match)

        return FilterResult(
            matches=kept,
            seconds=time.perf_counter() - started,
            candidates=len(candidates),
            dropped_vertex=dropped_vertex,
            dropped_edge=dropped_edge,
            dropped_label=dropped_label,
        )


def filter_candidates(
    candidates: list[Match],
    original_graph: AttributedGraph,
    original_query: AttributedGraph,
) -> FilterResult:
    """One-shot convenience wrapper around :class:`ClientFilter`."""
    return ClientFilter(original_graph, original_query).filter(candidates)
