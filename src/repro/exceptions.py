"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to discriminate the failure class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is invalid (bad ``k``/``theta``/method...).

    Raised by :class:`repro.core.config.SystemConfig` and
    :meth:`repro.core.config.MethodConfig.from_name` instead of
    silently accepting values the paper's guarantees do not cover.
    """


class GraphError(ReproError):
    """Structural problem with an attributed graph (bad vertex, edge...)."""


class SchemaError(ReproError):
    """A vertex or label violates the graph schema (Definition 1)."""


class PartitionError(ReproError):
    """The partitioner could not produce a valid k-way partition."""


class AnonymizationError(ReproError):
    """Label generalization failed (e.g. fewer than theta labels)."""


class QueryError(ReproError):
    """The query graph is malformed (disconnected, empty, unknown labels)."""


class ProtocolError(ReproError):
    """A message exchanged between client and cloud failed to validate."""


class GatewayError(ProtocolError):
    """A gateway frame exchange failed (framing, handshake, transport)."""


class GatewayRejected(GatewayError):
    """The gateway refused a request instead of answering it.

    Carried on the wire as a typed reject frame; the client re-raises
    it with the machine-readable ``code`` (``"overloaded"``,
    ``"unauthorized"``, ``"rate_limited"``, ``"budget_exhausted"``,
    ``"queue_full"``, ``"bad_request"``, ``"internal"``), the
    human-readable ``reason`` and the ``request_id`` it answers.  A
    reject is load shedding or policy, not a crash: the connection
    stays usable and the client may retry later.
    """

    def __init__(self, code: str, reason: str, request_id: str = ""):
        super().__init__(f"gateway rejected request: {code}: {reason}")
        self.code = code
        self.reason = reason
        self.request_id = request_id


class VerificationError(ReproError):
    """A published artifact failed its privacy/structure verification."""


class ResultBudgetExceeded(ReproError):
    """A query's intermediate results exceeded the configured budget.

    Raised by the cloud engine when ``max_intermediate_results`` is set
    (a resource quota a real cloud provider would enforce) and a star
    match set or join intermediate grows past it.  The query is not
    answered; the client may retry with a more selective query or a
    higher budget.
    """

    def __init__(self, stage: str, size: int, budget: int):
        super().__init__(
            f"{stage} produced {size} intermediate results, over budget {budget}"
        )
        self.stage = stage
        self.size = size
        self.budget = budget
