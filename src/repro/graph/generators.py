"""Synthetic attributed-graph generators.

The paper evaluates on Web-NotreDame, DBpedia and UK-2002, and notes
that "the frequencies of different vertex labels on these graphs all
(roughly) obey Zipf's law of different skewness".  The generators here
produce graphs with the same controllable properties:

* a power-law-ish degree distribution (preferential attachment with a
  uniform-attachment mixture, like real web graphs),
* a configurable schema (number of types / attributes / labels),
* Zipf-distributed label frequencies with configurable skew.

:func:`example_social_network` reproduces the running example of
Figure 1 exactly, which many unit tests lean on.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.exceptions import GraphError
from repro.graph.attributed import AttributedGraph
from repro.graph.schema import GraphSchema


def zipf_weights(n: int, skew: float) -> list[float]:
    """Normalized Zipf weights ``w_i ∝ 1 / (i+1)^skew`` for i in [0, n)."""
    if n <= 0:
        raise ValueError("n must be positive")
    raw = [1.0 / (i + 1) ** skew for i in range(n)]
    total = sum(raw)
    return [w / total for w in raw]


def make_schema(
    type_count: int,
    attributes_per_type: int,
    labels_per_attribute: int,
    prefix: str = "t",
) -> GraphSchema:
    """A regular synthetic schema: every type has the same shape.

    Attribute names are unique per type (Definition 1 requires distinct
    types to have distinct attribute sets).
    """
    schema = GraphSchema()
    for t in range(type_count):
        type_name = f"{prefix}{t}"
        attributes = {
            f"{type_name}_a{a}": [
                f"{type_name}_a{a}_l{i}" for i in range(labels_per_attribute)
            ]
            for a in range(attributes_per_type)
        }
        schema.add_type(type_name, attributes)
    return schema


def preferential_attachment_edges(
    n: int,
    edges_per_vertex: int,
    rng: random.Random,
    uniform_mix: float = 0.15,
) -> list[tuple[int, int]]:
    """Undirected scale-free-ish edge list on vertices 0..n-1.

    Standard Barabási–Albert growth with a ``uniform_mix`` probability
    of attaching uniformly at random instead of preferentially — real
    web graphs are not pure BA and the mixture keeps minimum degrees
    from being uniform.
    """
    if n < 2:
        return []
    m = max(1, min(edges_per_vertex, n - 1))
    edges: set[tuple[int, int]] = set()
    # endpoint pool repeats a vertex once per incident edge -> sampling
    # from it is degree-proportional.
    pool: list[int] = [0, 1]
    edges.add((0, 1))
    for v in range(2, n):
        targets: set[int] = set()
        attempts = 0
        want = min(m, v)
        while len(targets) < want and attempts < 50 * want:
            attempts += 1
            if rng.random() < uniform_mix:
                u = rng.randrange(v)
            else:
                u = pool[rng.randrange(len(pool))]
            if u != v:
                targets.add(u)
        for u in targets:
            edge = (min(u, v), max(u, v))
            if edge not in edges:
                edges.add(edge)
                pool.append(u)
                pool.append(v)
    return sorted(edges)


def random_attributed_graph(
    schema: GraphSchema,
    vertex_count: int,
    edges_per_vertex: int = 3,
    label_skew: float = 1.0,
    labels_per_vertex: int = 1,
    type_skew: float = 0.8,
    seed: int = 0,
    name: str = "synthetic",
    connected: bool = True,
) -> AttributedGraph:
    """Generate an attributed graph over ``schema``.

    Types are assigned with Zipf(``type_skew``) frequencies, labels per
    attribute with Zipf(``label_skew``) frequencies.  Each vertex gets
    ``labels_per_vertex`` labels per attribute (without replacement).
    Structure comes from :func:`preferential_attachment_edges`; if
    ``connected`` the generator afterwards links stray components to
    the giant one (real evaluation graphs are connected crawls).
    """
    if vertex_count < 1:
        raise GraphError("vertex_count must be >= 1")
    rng = random.Random(seed)
    graph = AttributedGraph(name)

    type_names = schema.type_names
    type_w = zipf_weights(len(type_names), type_skew)
    for vid in range(vertex_count):
        vertex_type = rng.choices(type_names, weights=type_w)[0]
        labels: dict[str, list[str]] = {}
        for attr in schema.attributes_of(vertex_type):
            universe = sorted(schema.labels_of(vertex_type, attr))
            w = zipf_weights(len(universe), label_skew)
            count = min(labels_per_vertex, len(universe))
            chosen: set[str] = set()
            while len(chosen) < count:
                chosen.add(rng.choices(universe, weights=w)[0])
            labels[attr] = sorted(chosen)
        graph.add_vertex(vid, vertex_type, labels)

    for u, v in preferential_attachment_edges(vertex_count, edges_per_vertex, rng):
        graph.add_edge(u, v)

    if connected and vertex_count > 1:
        components = graph.connected_components()
        if len(components) > 1:
            components.sort(key=len, reverse=True)
            giant = components[0]
            anchor_pool = sorted(giant)
            for comp in components[1:]:
                u = rng.choice(sorted(comp))
                v = rng.choice(anchor_pool)
                graph.add_edge(u, v)
    return graph


def example_social_network() -> tuple[AttributedGraph, GraphSchema]:
    """The professional social network of Figure 1 (running example).

    Vertices: individuals p1..p4 (ids 0-3), companies c1, c2 (ids 4-5),
    schools s1, s2 (ids 6-7).
    """
    schema = GraphSchema.from_dict(
        {
            "person": {
                "gender": ["male", "female"],
                "occupation": ["engineer", "manager", "hr", "accountant"],
            },
            "company": {
                "company_type": ["internet", "software"],
                "state": ["california", "washington"],
            },
            "school": {
                "located_in": ["illinois", "massachusetts"],
            },
        }
    )
    graph = AttributedGraph("figure1")
    graph.add_vertex(0, "person", {"gender": ["male"], "occupation": ["engineer"]})
    graph.add_vertex(1, "person", {"gender": ["female"], "occupation": ["hr"]})
    graph.add_vertex(2, "person", {"gender": ["male"], "occupation": ["manager"]})
    graph.add_vertex(3, "person", {"gender": ["female"], "occupation": ["accountant"]})
    graph.add_vertex(4, "company", {"company_type": ["internet"], "state": ["california"]})
    graph.add_vertex(5, "company", {"company_type": ["software"], "state": ["washington"]})
    graph.add_vertex(6, "school", {"located_in": ["illinois"]})
    graph.add_vertex(7, "school", {"located_in": ["massachusetts"]})
    # p1 (Tom) works at c1 (Google), graduated from s1 (UIUC), spouse p2 (Lucy).
    graph.add_edge(0, 4)
    graph.add_edge(0, 6)
    graph.add_edge(0, 1)
    # p2 (Lucy) works at c1, graduated from s1.
    graph.add_edge(1, 4)
    graph.add_edge(1, 6)
    # p3 (David) works at c2 (Microsoft), graduated from s1, spouse p4 (Alice).
    graph.add_edge(2, 5)
    graph.add_edge(2, 6)
    graph.add_edge(2, 3)
    # p4 (Alice) works at c2, graduated from s2 (MIT).
    graph.add_edge(3, 5)
    graph.add_edge(3, 7)
    return graph, schema


def example_query() -> AttributedGraph:
    """The query graph Q of Figure 1.

    Two individuals who graduated from the same Illinois school, one
    working at a software company and the other at an internet company.
    Query vertex ids: q1=company(internet), q2=person, q3=school(IL),
    q4=company(software), q5=person — ids 0..4.
    """
    query = AttributedGraph("figure1-query")
    query.add_vertex(0, "company", {"company_type": ["internet"]})
    query.add_vertex(1, "person", {})
    query.add_vertex(2, "school", {"located_in": ["illinois"]})
    query.add_vertex(3, "company", {"company_type": ["software"]})
    query.add_vertex(4, "person", {})
    query.add_edge(0, 1)
    query.add_edge(1, 2)
    query.add_edge(2, 4)
    query.add_edge(4, 3)
    return query


def grid_graph(
    rows: int,
    cols: int,
    vertex_type: str = "t0",
    schema: GraphSchema | None = None,
    name: str = "grid",
) -> AttributedGraph:
    """A rows×cols grid with a single type; handy for structure tests."""
    graph = AttributedGraph(name)
    for r in range(rows):
        for c in range(cols):
            graph.add_vertex(r * cols + c, vertex_type)
    for r in range(rows):
        for c in range(cols):
            vid = r * cols + c
            if c + 1 < cols:
                graph.add_edge(vid, vid + 1)
            if r + 1 < rows:
                graph.add_edge(vid, vid + cols)
    return graph


def cycle_graph(n: int, vertex_type: str = "t0", name: str = "cycle") -> AttributedGraph:
    if n < 3:
        raise GraphError("a cycle needs at least 3 vertices")
    graph = AttributedGraph(name)
    for vid in range(n):
        graph.add_vertex(vid, vertex_type)
    for vid in range(n):
        graph.add_edge(vid, (vid + 1) % n)
    return graph


def star_graph(
    leaf_count: int,
    vertex_type: str = "t0",
    name: str = "star",
) -> AttributedGraph:
    """Center vertex 0 with ``leaf_count`` leaves 1..leaf_count."""
    graph = AttributedGraph(name)
    graph.add_vertex(0, vertex_type)
    for leaf in range(1, leaf_count + 1):
        graph.add_vertex(leaf, vertex_type)
        graph.add_edge(0, leaf)
    return graph


def planted_partition_graph(
    communities: int,
    community_size: int,
    p_within: float,
    p_between: float,
    vertex_type: str = "t0",
    seed: int = 0,
    name: str = "planted",
) -> tuple[AttributedGraph, list[list[int]]]:
    """A stochastic block model with planted communities.

    Returns the graph and the planted community lists — ground truth
    for evaluating the multilevel partitioner (a good k-way partition
    of this graph is the planted one, up to relabeling).
    """
    rng = random.Random(seed)
    graph = AttributedGraph(name)
    planted: list[list[int]] = []
    vid = 0
    for _ in range(communities):
        block = []
        for _ in range(community_size):
            graph.add_vertex(vid, vertex_type)
            block.append(vid)
            vid += 1
        planted.append(block)
    n = vid
    community_of = {
        v: index for index, block in enumerate(planted) for v in block
    }
    for u in range(n):
        for v in range(u + 1, n):
            p = p_within if community_of[u] == community_of[v] else p_between
            if rng.random() < p:
                graph.add_edge(u, v)
    return graph, planted


def schema_from_graph(graph: AttributedGraph) -> GraphSchema:
    """Infer the minimal schema that covers every label in ``graph``."""
    spec: dict[str, dict[str, set[str]]] = {}
    for data in graph.vertices():
        attrs = spec.setdefault(data.vertex_type, {})
        for attr, label in data.label_items():
            attrs.setdefault(attr, set()).add(label)
    # Types observed without any labels still need at least one
    # attribute to satisfy Definition 1; give them a placeholder.
    result: dict[str, dict[str, Sequence[str]]] = {}
    for type_name, attrs in spec.items():
        if attrs:
            result[type_name] = {a: sorted(v) for a, v in attrs.items()}
        else:
            result[type_name] = {f"{type_name}_attr": [f"{type_name}_none"]}
    return GraphSchema.from_dict(result)
