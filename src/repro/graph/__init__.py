"""Attributed graph substrate (Definition 1 of the paper)."""

from repro.graph.attributed import AttributedGraph, VertexData
from repro.graph.schema import AttributeSpec, GraphSchema, TypeSpec
from repro.graph.stats import (
    GraphStatistics,
    compute_statistics,
    degree_histogram,
    estimate_zipf_skew,
    label_frequency_spectrum,
    merge_statistics,
)
from repro.graph.io import (
    graph_from_dict,
    graph_from_json,
    graph_to_dict,
    graph_to_json,
    load_graph,
    load_schema,
    save_graph,
    save_schema,
    serialized_size,
)
from repro.graph.generators import (
    cycle_graph,
    example_query,
    example_social_network,
    grid_graph,
    make_schema,
    planted_partition_graph,
    random_attributed_graph,
    schema_from_graph,
    star_graph,
    zipf_weights,
)
from repro.graph.edge_attributes import (
    EdgePayload,
    ReifiedGraph,
    reify_edge_attributes,
    reify_query_edge,
)
from repro.graph.validation import assert_supergraph, validate_graph, validate_query

__all__ = [
    "AttributedGraph",
    "VertexData",
    "GraphSchema",
    "TypeSpec",
    "AttributeSpec",
    "GraphStatistics",
    "compute_statistics",
    "merge_statistics",
    "degree_histogram",
    "estimate_zipf_skew",
    "label_frequency_spectrum",
    "graph_to_dict",
    "graph_from_dict",
    "graph_to_json",
    "graph_from_json",
    "save_graph",
    "load_graph",
    "save_schema",
    "load_schema",
    "serialized_size",
    "make_schema",
    "random_attributed_graph",
    "planted_partition_graph",
    "example_social_network",
    "example_query",
    "grid_graph",
    "cycle_graph",
    "star_graph",
    "schema_from_graph",
    "zipf_weights",
    "validate_graph",
    "validate_query",
    "assert_supergraph",
    "EdgePayload",
    "ReifiedGraph",
    "reify_edge_attributes",
    "reify_query_edge",
]
