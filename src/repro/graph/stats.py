"""Label/type frequency statistics over attributed graphs.

These statistics feed the paper's cost model (Section 5, Equation 1):

* ``F(j)``        — probability that a vertex has vertex type ``j``;
* ``F^l(j, i)``   — probability that a type-``j`` vertex carries the
  ``i``-th raw label of that type;
* ``F^g(j, i)``   — same, for label *groups* after generalization.

The same machinery is applied to the data graph ``Gk``, to a single
star query ``S``, and (averaged) to a workload of star queries
``S_avg`` — see :class:`repro.anonymize.cost_model.WorkloadStatistics`.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Iterable

from repro.graph.attributed import AttributedGraph

# A label coordinate is (vertex_type, attribute, label).  Raw labels and
# group ids share this shape, so one statistics class serves both.
LabelKey = tuple[str, str, str]


@dataclass
class GraphStatistics:
    """Frequency profile of one attributed graph.

    All frequencies follow Equation 1 of the paper:

    * :attr:`type_frequency`  maps type -> |V(G, j)| / |V(G)|
    * :attr:`label_frequency` maps (type, attr, label) ->
      |V^l(G, (j, i))| / |V(G, j)|
    """

    vertex_count: int
    average_degree: float
    type_counts: dict[str, int] = field(default_factory=dict)
    label_counts: dict[LabelKey, int] = field(default_factory=dict)

    @property
    def type_frequency(self) -> dict[str, float]:
        if self.vertex_count == 0:
            return {}
        return {t: c / self.vertex_count for t, c in self.type_counts.items()}

    def frequency_of_type(self, vertex_type: str) -> float:
        if self.vertex_count == 0:
            return 0.0
        return self.type_counts.get(vertex_type, 0) / self.vertex_count

    def frequency_of_label(self, vertex_type: str, attribute: str, label: str) -> float:
        type_total = self.type_counts.get(vertex_type, 0)
        if type_total == 0:
            return 0.0
        return self.label_counts.get((vertex_type, attribute, label), 0) / type_total

    def labels_of(self, vertex_type: str, attribute: str) -> list[str]:
        """All labels observed on (type, attribute), sorted."""
        return sorted(
            label
            for (t, a, label) in self.label_counts
            if t == vertex_type and a == attribute
        )

    def attribute_pairs(self) -> list[tuple[str, str]]:
        """All (type, attribute) pairs observed in the graph, sorted."""
        return sorted({(t, a) for (t, a, _) in self.label_counts})


def compute_statistics(graph: AttributedGraph) -> GraphStatistics:
    """One pass over ``graph`` computing type and label counts."""
    type_counts: Counter[str] = Counter()
    label_counts: Counter[LabelKey] = Counter()
    for data in graph.vertices():
        type_counts[data.vertex_type] += 1
        for attr, label in data.label_items():
            label_counts[(data.vertex_type, attr, label)] += 1
    return GraphStatistics(
        vertex_count=graph.vertex_count,
        average_degree=graph.average_degree(),
        type_counts=dict(type_counts),
        label_counts=dict(label_counts),
    )


def merge_statistics(parts: Iterable[GraphStatistics]) -> GraphStatistics:
    """Average the frequency profiles of several graphs.

    Used to build the workload-average statistics ``F_Savg`` of
    Section 5.2: each part contributes its *frequencies* with equal
    weight (the paper averages per-query frequencies, not raw counts).
    The merged object re-expresses the averaged frequencies as counts
    over a nominal population so the :class:`GraphStatistics` accessors
    keep working.
    """
    parts = list(parts)
    if not parts:
        return GraphStatistics(vertex_count=0, average_degree=0.0)

    scale = 10**9  # nominal population, large enough to avoid rounding loss
    type_freq: defaultdict[str, float] = defaultdict(float)
    # label frequency is conditioned on the type, so average the
    # conditional frequencies and also track the averaged type mass.
    label_freq: defaultdict[LabelKey, float] = defaultdict(float)
    avg_degree = 0.0
    n = len(parts)
    for part in parts:
        avg_degree += part.average_degree / n
        for t, c in part.type_counts.items():
            if part.vertex_count:
                type_freq[t] += (c / part.vertex_count) / n
        for key, c in part.label_counts.items():
            type_total = part.type_counts.get(key[0], 0)
            if type_total:
                label_freq[key] += (c / type_total) / n

    type_counts = {t: int(round(f * scale)) for t, f in type_freq.items()}
    label_counts = {
        key: int(round(f * type_counts.get(key[0], 0)))
        for key, f in label_freq.items()
    }
    return GraphStatistics(
        vertex_count=scale,
        average_degree=avg_degree,
        type_counts=type_counts,
        label_counts=label_counts,
    )


def degree_histogram(graph: AttributedGraph) -> dict[int, int]:
    """Map degree -> number of vertices with that degree."""
    hist: Counter[int] = Counter()
    for vid in graph.vertex_ids():
        hist[graph.degree(vid)] += 1
    return dict(hist)


def estimate_zipf_skew(frequencies: Iterable[float]) -> float:
    """Least-squares Zipf exponent of a frequency distribution.

    The paper observes that label frequencies on all three evaluation
    graphs "(roughly) obey Zipf's law of different skewness"; this
    estimator recovers that skew so the synthetic analogues can be
    validated against it.  Fits ``log f_r = -s · log r + c`` over the
    positive frequencies sorted descending (rank r starting at 1) and
    returns ``s``.
    """
    values = sorted((f for f in frequencies if f > 0), reverse=True)
    if len(values) < 2:
        return 0.0
    import math

    xs = [math.log(rank + 1) for rank in range(len(values))]
    ys = [math.log(value) for value in values]
    n = len(values)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var = sum((x - mean_x) ** 2 for x in xs)
    if var == 0:
        return 0.0
    return -cov / var


def label_frequency_spectrum(
    stats: GraphStatistics,
    vertex_type: str,
    attribute: str,
) -> list[float]:
    """Frequencies of every label of (type, attribute), descending."""
    return sorted(
        (
            stats.frequency_of_label(vertex_type, attribute, label)
            for label in stats.labels_of(vertex_type, attribute)
        ),
        reverse=True,
    )
