"""Edge-attribute reification (Section 2.1's remark).

The attributed graph model carries rich data on vertices only.  The
paper notes that edges of interest are handled by introducing an
*imaginary vertex* per edge: "we can introduce an imaginary vertex to
represent an edge of interest and assign the rich data structure on
the edge to the new vertex".  This module implements that transform,
so graphs (and queries) with labeled relationships — e.g. a "works at
since 2010" edge — can go through the whole privacy pipeline
unchanged.

An edge ``(u, v)`` with payload becomes a vertex ``w`` with the
payload's type/labels plus the two edges ``(u, w)`` and ``(w, v)``;
the original edge is removed.  Applying the same transform to data and
query graphs preserves subgraph-match semantics: every match of the
reified query in the reified graph corresponds to a match of the
original query respecting the edge constraints, and vice versa.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.exceptions import GraphError
from repro.graph.attributed import AttributedGraph, LabelMap


@dataclass(frozen=True)
class EdgePayload:
    """The rich data structure to move onto an imaginary vertex."""

    u: int
    v: int
    vertex_type: str
    labels: Mapping[str, Iterable[str]] | None = None

    @property
    def edge(self) -> tuple[int, int]:
        return (min(self.u, self.v), max(self.u, self.v))


@dataclass
class ReifiedGraph:
    """Result of reification: the new graph plus provenance maps."""

    graph: AttributedGraph
    # imaginary vertex id -> the original (u, v) edge it represents
    edge_of_vertex: dict[int, tuple[int, int]]

    def original_edge(self, imaginary_vertex: int) -> tuple[int, int]:
        try:
            return self.edge_of_vertex[imaginary_vertex]
        except KeyError:
            raise GraphError(
                f"vertex {imaginary_vertex} is not an imaginary edge-vertex"
            ) from None


def reify_edge_attributes(
    graph: AttributedGraph,
    payloads: Iterable[EdgePayload],
    name: str = "",
) -> ReifiedGraph:
    """Replace each payload-carrying edge by an imaginary vertex.

    Edges not mentioned in ``payloads`` are copied through untouched.
    Raises :class:`GraphError` if a payload references a missing edge
    or if two payloads target the same edge.
    """
    out = graph.copy(name or f"{graph.name}-reified")
    next_id = (max(graph.vertex_ids()) + 1) if graph.vertex_count else 0
    edge_of_vertex: dict[int, tuple[int, int]] = {}
    seen: set[tuple[int, int]] = set()
    for payload in payloads:
        edge = payload.edge
        if edge in seen:
            raise GraphError(f"duplicate payload for edge {edge}")
        seen.add(edge)
        if not out.has_edge(*edge):
            raise GraphError(f"edge {edge} does not exist in the graph")
        out.remove_edge(*edge)
        out.add_vertex(next_id, payload.vertex_type, payload.labels)
        out.add_edge(edge[0], next_id)
        out.add_edge(next_id, edge[1])
        edge_of_vertex[next_id] = edge
        next_id += 1
    return ReifiedGraph(graph=out, edge_of_vertex=edge_of_vertex)


def reify_query_edge(
    query: AttributedGraph,
    u: int,
    v: int,
    vertex_type: str,
    labels: LabelMap | None = None,
) -> AttributedGraph:
    """Reify one query edge with a constraint on the relationship.

    Convenience for query authors: ``reify_query_edge(q, a, b,
    "employment", {"since": ["2010"]})`` asks for an ``a — b``
    relationship whose reified edge-vertex carries those labels.
    """
    reified = reify_edge_attributes(
        query, [EdgePayload(u, v, vertex_type, labels)]
    )
    return reified.graph
