"""Graph schema: vertex types, attributes and label universes.

The attributed graph model (Definition 1 of the paper) requires that

* every vertex has exactly one *vertex type*;
* every vertex type has a fixed set of *vertex attributes*, and two
  distinct types never share an attribute set;
* every attribute has a universe of *vertex labels* (attribute values),
  and a vertex may carry one or more labels per attribute.

:class:`GraphSchema` captures the (type, attribute, label-universe)
structure and validates vertices against it.  The schema is also the
unit the anonymizer operates on: label groups are formed *within* a
single ``(vertex type, attribute)`` label universe, mirroring the
paper's Label Correspondence Table where e.g. group ``A`` only contains
``COMPANY TYPE`` values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.exceptions import SchemaError


@dataclass(frozen=True)
class AttributeSpec:
    """One attribute of a vertex type and its label universe."""

    name: str
    labels: frozenset[str]

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if not self.labels:
            raise SchemaError(f"attribute {self.name!r} has an empty label universe")


@dataclass
class TypeSpec:
    """One vertex type with its attributes."""

    name: str
    attributes: dict[str, AttributeSpec] = field(default_factory=dict)

    def attribute(self, name: str) -> AttributeSpec:
        try:
            return self.attributes[name]
        except KeyError:
            raise SchemaError(
                f"type {self.name!r} has no attribute {name!r}"
            ) from None


class GraphSchema:
    """The set of vertex types with their attributes and label universes.

    Build a schema either incrementally with :meth:`add_type` or in one
    shot from a nested mapping with :meth:`from_dict`::

        schema = GraphSchema.from_dict({
            "person": {"gender": ["male", "female"],
                       "occupation": ["engineer", "manager", "hr"]},
            "company": {"company_type": ["internet", "software"]},
        })
    """

    def __init__(self) -> None:
        self._types: dict[str, TypeSpec] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_type(self, type_name: str, attributes: Mapping[str, Iterable[str]]) -> None:
        """Register ``type_name`` with ``attributes`` (name -> labels)."""
        if type_name in self._types:
            raise SchemaError(f"duplicate vertex type {type_name!r}")
        if not attributes:
            raise SchemaError(f"type {type_name!r} must declare at least one attribute")
        spec = TypeSpec(type_name)
        for attr_name, labels in attributes.items():
            label_set = frozenset(labels)
            spec.attributes[attr_name] = AttributeSpec(attr_name, label_set)
        self._types[type_name] = spec

    @classmethod
    def from_dict(cls, data: Mapping[str, Mapping[str, Iterable[str]]]) -> "GraphSchema":
        schema = cls()
        for type_name, attributes in data.items():
            schema.add_type(type_name, attributes)
        return schema

    def to_dict(self) -> dict[str, dict[str, list[str]]]:
        """Inverse of :meth:`from_dict` (labels sorted for determinism)."""
        return {
            t.name: {a.name: sorted(a.labels) for a in t.attributes.values()}
            for t in self._types.values()
        }

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def type_names(self) -> list[str]:
        return sorted(self._types)

    def __contains__(self, type_name: str) -> bool:
        return type_name in self._types

    def __len__(self) -> int:
        return len(self._types)

    def type_spec(self, type_name: str) -> TypeSpec:
        try:
            return self._types[type_name]
        except KeyError:
            raise SchemaError(f"unknown vertex type {type_name!r}") from None

    def attributes_of(self, type_name: str) -> list[str]:
        return sorted(self.type_spec(type_name).attributes)

    def labels_of(self, type_name: str, attribute: str) -> frozenset[str]:
        return self.type_spec(type_name).attribute(attribute).labels

    def label_count(self) -> int:
        """Total number of distinct labels across the whole schema."""
        return sum(
            len(attr.labels)
            for t in self._types.values()
            for attr in t.attributes.values()
        )

    def attribute_count(self) -> int:
        return sum(len(t.attributes) for t in self._types.values())

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate_vertex(
        self,
        vertex_type: str,
        labels: Mapping[str, frozenset[str]],
    ) -> None:
        """Raise :class:`SchemaError` if a vertex payload is ill-formed.

        A vertex must use a known type, may only carry attributes of
        that type, and every label must belong to the attribute's
        universe.  Vertices are allowed to omit attributes (a missing
        attribute simply means "no label published"), matching the
        noise vertices the k-automorphism transform introduces.
        """
        spec = self.type_spec(vertex_type)
        for attr_name, attr_labels in labels.items():
            attr_spec = spec.attribute(attr_name)
            unknown = attr_labels - attr_spec.labels
            if unknown:
                raise SchemaError(
                    f"labels {sorted(unknown)} not in universe of "
                    f"{vertex_type}.{attr_name}"
                )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphSchema):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GraphSchema(types={len(self._types)}, "
            f"attributes={self.attribute_count()}, labels={self.label_count()})"
        )
