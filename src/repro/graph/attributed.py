"""The attributed graph model (Definition 1 of the paper).

An :class:`AttributedGraph` is an undirected graph whose vertices carry
a *vertex type* and, per attribute, a set of *vertex labels* (attribute
values).  The same class models

* the original data graph ``G`` (raw labels),
* the anonymized/published graphs ``Gk`` and ``Go`` (label-group ids in
  place of raw labels), and
* query graphs ``Q`` / ``Qo``.

The label-containment semantics of subgraph matching (Definition 2:
``L(q) ⊆ L(g(q))`` plus equal vertex type) is provided by
:meth:`VertexData.matches`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.exceptions import GraphError

LabelMap = Mapping[str, Iterable[str]]


def _freeze_labels(labels: LabelMap | None) -> dict[str, frozenset[str]]:
    if not labels:
        return {}
    frozen = {}
    for attr, values in labels.items():
        value_set = frozenset(values)
        if value_set:
            frozen[attr] = value_set
    return frozen


@dataclass(frozen=True)
class VertexData:
    """Payload of one vertex: its type and per-attribute label sets."""

    vertex_id: int
    vertex_type: str
    labels: dict[str, frozenset[str]] = field(default_factory=dict)

    def matches(self, data_vertex: "VertexData") -> bool:
        """Return True if ``self`` (a query vertex) can map to ``data_vertex``.

        Implements condition (1) of Definition 2: same vertex type and,
        for every attribute the query vertex constrains, the query
        labels are a subset of the data vertex's labels.
        """
        if self.vertex_type != data_vertex.vertex_type:
            return False
        for attr, wanted in self.labels.items():
            have = data_vertex.labels.get(attr)
            if have is None or not wanted <= have:
                return False
        return True

    def label_items(self) -> Iterator[tuple[str, str]]:
        """Yield every (attribute, label) pair on this vertex."""
        for attr, values in self.labels.items():
            for value in values:
                yield attr, value

    def with_labels(self, labels: LabelMap) -> "VertexData":
        """Return a copy of this vertex carrying ``labels`` instead."""
        return VertexData(self.vertex_id, self.vertex_type, _freeze_labels(labels))


class AttributedGraph:
    """An undirected vertex-attributed graph with O(1) adjacency tests.

    Vertices are integer ids.  Edges are unordered pairs without self
    loops or parallel edges.  The class is deliberately small and
    dictionary-backed: every published artifact in the pipeline (``G``,
    ``Gk``, ``Go``, queries) reuses it.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._vertices: dict[int, VertexData] = {}
        self._adj: dict[int, set[int]] = {}
        self._edge_count = 0

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_vertex(
        self,
        vertex_id: int,
        vertex_type: str,
        labels: LabelMap | None = None,
    ) -> VertexData:
        """Add a vertex; re-adding an existing id is an error."""
        if vertex_id in self._vertices:
            raise GraphError(f"vertex {vertex_id} already exists")
        data = VertexData(vertex_id, vertex_type, _freeze_labels(labels))
        self._vertices[vertex_id] = data
        self._adj[vertex_id] = set()
        return data

    def set_vertex_labels(self, vertex_id: int, labels: LabelMap) -> None:
        """Replace the label sets of an existing vertex."""
        old = self.vertex(vertex_id)
        self._vertices[vertex_id] = old.with_labels(labels)

    def add_edge(self, u: int, v: int) -> bool:
        """Add undirected edge (u, v); returns False if it already existed."""
        if u == v:
            raise GraphError(f"self loop on vertex {u} is not allowed")
        if u not in self._vertices or v not in self._vertices:
            raise GraphError(f"edge ({u}, {v}) references a missing vertex")
        if v in self._adj[u]:
            return False
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._edge_count += 1
        return True

    def remove_edge(self, u: int, v: int) -> None:
        if v not in self._adj.get(u, ()):
            raise GraphError(f"edge ({u}, {v}) does not exist")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._edge_count -= 1

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def vertex_count(self) -> int:
        return len(self._vertices)

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def __contains__(self, vertex_id: int) -> bool:
        return vertex_id in self._vertices

    def __len__(self) -> int:
        return len(self._vertices)

    def vertex(self, vertex_id: int) -> VertexData:
        try:
            return self._vertices[vertex_id]
        except KeyError:
            raise GraphError(f"unknown vertex {vertex_id}") from None

    def vertices(self) -> Iterator[VertexData]:
        return iter(self._vertices.values())

    def vertex_ids(self) -> Iterator[int]:
        return iter(self._vertices)

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._adj.get(u, ())

    def neighbors(self, vertex_id: int) -> set[int]:
        try:
            return self._adj[vertex_id]
        except KeyError:
            raise GraphError(f"unknown vertex {vertex_id}") from None

    def degree(self, vertex_id: int) -> int:
        return len(self.neighbors(vertex_id))

    def edges(self) -> Iterator[tuple[int, int]]:
        """Yield each undirected edge exactly once as (min, max)."""
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if u < v:
                    yield (u, v)

    def average_degree(self) -> float:
        if not self._vertices:
            return 0.0
        return 2.0 * self._edge_count / len(self._vertices)

    def edge_set(self) -> set[tuple[int, int]]:
        return set(self.edges())

    def vertex_id_set(self) -> set[int]:
        return set(self._vertices)

    # ------------------------------------------------------------------
    # structure helpers
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """BFS connectivity check (empty graph counts as connected)."""
        if not self._vertices:
            return True
        start = next(iter(self._vertices))
        seen = {start}
        frontier = [start]
        while frontier:
            nxt = []
            for u in frontier:
                for v in self._adj[u]:
                    if v not in seen:
                        seen.add(v)
                        nxt.append(v)
            frontier = nxt
        return len(seen) == len(self._vertices)

    def connected_components(self) -> list[set[int]]:
        components: list[set[int]] = []
        unseen = set(self._vertices)
        while unseen:
            start = unseen.pop()
            comp = {start}
            frontier = [start]
            while frontier:
                nxt = []
                for u in frontier:
                    for v in self._adj[u]:
                        if v in unseen:
                            unseen.discard(v)
                            comp.add(v)
                            nxt.append(v)
                frontier = nxt
            components.append(comp)
        return components

    def induced_subgraph(self, vertex_ids: Iterable[int], name: str = "") -> "AttributedGraph":
        """Subgraph on ``vertex_ids`` with every edge between them."""
        keep = set(vertex_ids)
        sub = AttributedGraph(name or f"{self.name}[induced]")
        for vid in keep:
            data = self.vertex(vid)
            sub._vertices[vid] = data
            sub._adj[vid] = set()
        for vid in keep:
            for nbr in self._adj[vid] & keep:
                if nbr > vid:
                    sub.add_edge(vid, nbr)
        return sub

    def copy(self, name: str = "") -> "AttributedGraph":
        clone = AttributedGraph(name or self.name)
        clone._vertices = dict(self._vertices)
        clone._adj = {vid: set(nbrs) for vid, nbrs in self._adj.items()}
        clone._edge_count = self._edge_count
        return clone

    def relabeled(self, mapping: Mapping[int, int], name: str = "") -> "AttributedGraph":
        """Return an isomorphic copy with vertex ids mapped through ``mapping``."""
        clone = AttributedGraph(name or f"{self.name}[relabeled]")
        for vid, data in self._vertices.items():
            new_id = mapping[vid]
            clone.add_vertex(new_id, data.vertex_type, data.labels)
        for u, v in self.edges():
            clone.add_edge(mapping[u], mapping[v])
        return clone

    # ------------------------------------------------------------------
    # equality / hashing aids
    # ------------------------------------------------------------------
    def structure_equal(self, other: "AttributedGraph") -> bool:
        """Same vertex ids, types, labels and edges (ignores names)."""
        if self.vertex_id_set() != other.vertex_id_set():
            return False
        for vid, data in self._vertices.items():
            other_data = other.vertex(vid)
            if data.vertex_type != other_data.vertex_type:
                return False
            if data.labels != other_data.labels:
                return False
        return self.edge_set() == other.edge_set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AttributedGraph(name={self.name!r}, |V|={self.vertex_count}, "
            f"|E|={self.edge_count})"
        )
