"""Validation of graphs and queries against the attributed model."""

from __future__ import annotations

from repro.exceptions import QueryError, SchemaError
from repro.graph.attributed import AttributedGraph
from repro.graph.schema import GraphSchema


def validate_graph(graph: AttributedGraph, schema: GraphSchema) -> None:
    """Check every vertex of ``graph`` against ``schema``.

    Raises :class:`SchemaError` on the first violation.  Edge sanity
    (no self loops, endpoints exist) is enforced by
    :class:`AttributedGraph` itself at mutation time.
    """
    for data in graph.vertices():
        if data.vertex_type not in schema:
            raise SchemaError(
                f"vertex {data.vertex_id} has unknown type {data.vertex_type!r}"
            )
        schema.validate_vertex(data.vertex_type, data.labels)


def validate_query(query: AttributedGraph, schema: GraphSchema | None = None) -> None:
    """Check that ``query`` is a usable subgraph-matching query.

    A query must be non-empty and connected (the paper's workload
    generator produces connected query graphs; a disconnected query is
    a cartesian product of independent queries and is rejected).
    If ``schema`` is given, labels are validated against it too.
    """
    if query.vertex_count == 0:
        raise QueryError("query graph is empty")
    if not query.is_connected():
        raise QueryError("query graph must be connected")
    if schema is not None:
        try:
            validate_graph(query, schema)
        except SchemaError as exc:
            raise QueryError(str(exc)) from exc


def assert_supergraph(small: AttributedGraph, big: AttributedGraph) -> None:
    """Raise if ``small`` is not an id-preserving subgraph of ``big``.

    Used to verify the paper's guarantee that ``G ⊆ Gk`` (the transform
    never deletes vertices or edges, unlike edge-deletion anonymizers).
    """
    missing_vertices = small.vertex_id_set() - big.vertex_id_set()
    if missing_vertices:
        raise SchemaError(f"vertices missing from supergraph: {sorted(missing_vertices)[:5]}")
    for u, v in small.edges():
        if not big.has_edge(u, v):
            raise SchemaError(f"edge ({u}, {v}) missing from supergraph")
