"""Serialization of attributed graphs and schemas.

Two formats are provided:

* a JSON document (human readable, used for persistence and examples);
* a compact dict form used by :mod:`repro.core.protocol` to measure the
  bytes actually shipped between the data owner, the cloud and the
  client — the paper's communication-cost experiments (Figure 33) rely
  on these sizes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.exceptions import GraphError
from repro.graph.attributed import AttributedGraph
from repro.graph.schema import GraphSchema

FORMAT_VERSION = 1


def graph_to_dict(graph: AttributedGraph) -> dict[str, Any]:
    """Compact JSON-serializable representation of ``graph``."""
    vertices = []
    for data in graph.vertices():
        entry: dict[str, Any] = {"id": data.vertex_id, "type": data.vertex_type}
        if data.labels:
            entry["labels"] = {a: sorted(v) for a, v in sorted(data.labels.items())}
        vertices.append(entry)
    vertices.sort(key=lambda e: e["id"])
    return {
        "version": FORMAT_VERSION,
        "name": graph.name,
        "vertices": vertices,
        "edges": sorted(graph.edges()),
    }


def graph_from_dict(data: dict[str, Any]) -> AttributedGraph:
    """Inverse of :func:`graph_to_dict`."""
    version = data.get("version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise GraphError(f"unsupported graph format version {version}")
    graph = AttributedGraph(data.get("name", ""))
    for entry in data["vertices"]:
        graph.add_vertex(entry["id"], entry["type"], entry.get("labels"))
    for u, v in data["edges"]:
        graph.add_edge(u, v)
    return graph


def graph_to_json(graph: AttributedGraph, indent: int | None = None) -> str:
    return json.dumps(graph_to_dict(graph), indent=indent, sort_keys=True)


def graph_from_json(text: str) -> AttributedGraph:
    return graph_from_dict(json.loads(text))


def save_graph(graph: AttributedGraph, path: str | Path) -> None:
    Path(path).write_text(graph_to_json(graph, indent=2))


def load_graph(path: str | Path) -> AttributedGraph:
    return graph_from_json(Path(path).read_text())


def schema_to_json(schema: GraphSchema, indent: int | None = None) -> str:
    return json.dumps(schema.to_dict(), indent=indent, sort_keys=True)


def schema_from_json(text: str) -> GraphSchema:
    return GraphSchema.from_dict(json.loads(text))


def save_schema(schema: GraphSchema, path: str | Path) -> None:
    Path(path).write_text(schema_to_json(schema, indent=2))


def load_schema(path: str | Path) -> GraphSchema:
    return schema_from_json(Path(path).read_text())


def serialized_size(graph: AttributedGraph) -> int:
    """Number of bytes of the compact JSON encoding of ``graph``.

    This is the size used when accounting for upload cost of ``Go``
    versus ``Gk`` in the space/communication experiments.
    """
    return len(graph_to_json(graph).encode("utf-8"))
