"""Legacy metric records, redesigned as *views* over spans/counters.

Historically these four dataclasses were hand-threaded through four
different call paths, each assignment a chance to drift from what the
pipeline actually did.  They are now computed from the observability
substrate: :meth:`QueryMetrics.from_trace` and
:meth:`PublishMetrics.from_trace` read the named spans of
:mod:`repro.obs.names` (durations, byte counts, candidate counts) and
produce the exact field surface the benchmark harness has always
printed.  The classes remain plain dataclasses — picklable, stable,
and importable from their historical home ``repro.core.metrics``.

Field names mirror the quantities the paper reports so the benchmark
harness can print paper-shaped tables directly (see
:mod:`repro.bench.reporting`).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any

from repro.obs import names
from repro.obs.tracing import Trace


def format_percent(value: float | None, missing: str = "n/a") -> str:
    """``0.421 -> '42.1%'``; ``None -> 'n/a'``.

    The shared-cache hit rate is ``None`` for the process batch backend
    (the children own the cache copies), so every printer of a rate
    must go through this instead of ``f"{rate:.1%}"`` — formatting
    ``None`` raises ``TypeError`` (regression-tested).
    """
    if value is None:
        return missing
    return f"{value * 100:.1f}%"


@dataclass
class PublishMetrics:
    """One data-owner publish run (Figures 10, 11, 12, 13)."""

    method: str = ""
    k: int = 0
    theta: int = 0
    # timings (seconds)
    lct_seconds: float = 0.0
    gk_seconds: float = 0.0
    go_seconds: float = 0.0
    upload_network_seconds: float = 0.0
    index_seconds: float = 0.0
    # sizes
    original_vertices: int = 0
    original_edges: int = 0
    gk_vertices: int = 0
    gk_edges: int = 0
    uploaded_vertices: int = 0
    uploaded_edges: int = 0
    noise_vertices: int = 0
    noise_edges: int = 0
    upload_bytes: int = 0
    index_bytes: int = 0

    @property
    def generation_seconds(self) -> float:
        """Time to generate ``Gk`` incl. label generalization (Fig 10)."""
        return self.lct_seconds + self.gk_seconds

    @classmethod
    def from_trace(cls, trace: Trace | None) -> "PublishMetrics":
        """Derive the publish record from the spans of one publish run."""
        if trace is None:
            return cls()
        root = trace.first(names.PUBLISH)
        attrs = root.attributes if root is not None else {}
        kauto = trace.first(names.PUBLISH_KAUTO)
        kattrs = kauto.attributes if kauto is not None else {}
        out = trace.first(names.PUBLISH_OUTSOURCE)
        oattrs = out.attributes if out is not None else {}
        return cls(
            method=attrs.get("method", ""),
            k=attrs.get("k", 0),
            theta=attrs.get("theta", 0),
            lct_seconds=trace.duration(names.PUBLISH_LCT),
            gk_seconds=trace.duration(names.PUBLISH_KAUTO),
            go_seconds=trace.duration(names.PUBLISH_OUTSOURCE),
            upload_network_seconds=trace.attr(
                names.NETWORK_UPLOAD, "simulated_seconds", 0.0
            ),
            index_seconds=trace.attr(names.CLOUD_INDEX_BUILD, "build_seconds", 0.0),
            original_vertices=attrs.get("original_vertices", 0),
            original_edges=attrs.get("original_edges", 0),
            gk_vertices=kattrs.get("gk_vertices", 0),
            gk_edges=kattrs.get("gk_edges", 0),
            uploaded_vertices=oattrs.get("uploaded_vertices", 0),
            uploaded_edges=oattrs.get("uploaded_edges", 0),
            noise_vertices=kattrs.get("noise_vertices", 0),
            noise_edges=kattrs.get("noise_edges", 0),
            upload_bytes=trace.attr(names.ENCODE_UPLOAD, "bytes", 0),
            index_bytes=trace.attr(names.CLOUD_INDEX_BUILD, "index_bytes", 0),
        )

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PublishMetrics":
        return cls(**data)


@dataclass
class QueryMetrics:
    """One end-to-end query (Figures 14-22, 31-34)."""

    method: str = ""
    k: int = 0
    query_edges: int = 0
    # cloud side
    cloud_seconds: float = 0.0
    decomposition_seconds: float = 0.0
    star_matching_seconds: float = 0.0
    join_seconds: float = 0.0
    rs_size: int = 0
    rin_size: int = 0
    # network
    query_bytes: int = 0
    answer_bytes: int = 0
    network_seconds: float = 0.0
    # client side
    client_seconds: float = 0.0
    expansion_seconds: float = 0.0
    filter_seconds: float = 0.0
    candidate_count: int = 0
    result_count: int = 0

    @property
    def total_seconds(self) -> float:
        """End-to-end: cloud + network + client (Figure 22)."""
        return self.cloud_seconds + self.network_seconds + self.client_seconds

    @classmethod
    def from_trace(cls, trace: Trace | None) -> "QueryMetrics":
        """Derive the per-query record from the spans of one query.

        Network seconds are the *simulated* transmission times the
        channel's cost model reports (span attributes), not the wall
        duration of the transmit call — exactly the paper's accounting.
        """
        if trace is None:
            return cls()
        root = trace.first(names.QUERY)
        attrs = root.attributes if root is not None else {}
        expansion_seconds = trace.duration(names.CLIENT_EXPAND)
        filter_seconds = trace.duration(names.CLIENT_FILTER)
        return cls(
            method=attrs.get("method", ""),
            k=attrs.get("k", 0),
            query_edges=attrs.get("query_edges", 0),
            cloud_seconds=trace.duration(names.CLOUD_ANSWER)
            + trace.duration(names.CLOUD_EXPAND),
            decomposition_seconds=trace.duration(names.CLOUD_DECOMPOSE),
            star_matching_seconds=trace.duration(names.CLOUD_STAR_MATCHING),
            join_seconds=trace.duration(names.CLOUD_JOIN),
            rs_size=trace.attr(names.CLOUD_ANSWER, "rs_size", 0),
            rin_size=trace.attr(names.CLOUD_ANSWER, "rin_size", 0),
            query_bytes=trace.attr(names.NETWORK_QUERY, "bytes", 0),
            answer_bytes=trace.attr(names.NETWORK_ANSWER, "bytes", 0),
            network_seconds=trace.attr(names.NETWORK_QUERY, "simulated_seconds", 0.0)
            + trace.attr(names.NETWORK_ANSWER, "simulated_seconds", 0.0),
            client_seconds=expansion_seconds + filter_seconds,
            expansion_seconds=expansion_seconds,
            filter_seconds=filter_seconds,
            candidate_count=trace.attr(names.CLIENT_FILTER, "candidates", 0),
            result_count=trace.attr(names.CLIENT_FILTER, "results", 0),
        )

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "QueryMetrics":
        return cls(**data)


@dataclass
class BatchMetrics:
    """One ``query_batch`` run: per-query records + batch aggregates.

    ``wall_seconds`` is the real elapsed time of the whole batch — with
    a worker pool it is *less* than the sum of per-query times, and
    ``throughput_qps`` / ``speedup_vs(serial_wall)`` quantify by how
    much.  Cache counters are deltas over the batch, measured on the
    shared (locked) star cache, i.e. the hit rate *under contention*;
    with the process backend the children own the cache copies, so the
    parent-side delta reads zero and the field is reported as ``None``
    (format it with :func:`format_percent`, never ``%``-style).
    """

    backend: str = "thread"
    worker_count: int = 1
    wall_seconds: float = 0.0
    per_query: list[QueryMetrics] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    cache_shared: bool = True

    @property
    def query_count(self) -> int:
        return len(self.per_query)

    @property
    def throughput_qps(self) -> float:
        """Completed queries per second of wall time."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.query_count / self.wall_seconds

    @property
    def cache_hit_rate(self) -> float | None:
        """Batch-wide hit rate on the shared cache (None if not shared)."""
        if not self.cache_shared:
            return None
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def mean_query_seconds(self) -> float:
        if not self.per_query:
            return 0.0
        return sum(q.total_seconds for q in self.per_query) / len(self.per_query)

    @property
    def cloud_seconds_total(self) -> float:
        return sum(q.cloud_seconds for q in self.per_query)

    def speedup_vs(self, serial_wall_seconds: float) -> float:
        """How much faster than a serial loop that took ``serial_wall_seconds``."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return serial_wall_seconds / self.wall_seconds

    def aggregated(self) -> "AggregatedMetrics":
        """The batch as an :class:`AggregatedMetrics` (mean-based views)."""
        aggregate = AggregatedMetrics()
        for run in self.per_query:
            aggregate.add(run)
        return aggregate

    def to_dict(self) -> dict[str, Any]:
        return {
            "backend": self.backend,
            "worker_count": self.worker_count,
            "wall_seconds": self.wall_seconds,
            "per_query": [run.to_dict() for run in self.per_query],
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_shared": self.cache_shared,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "BatchMetrics":
        data = dict(data)
        data["per_query"] = [
            QueryMetrics.from_dict(run) for run in data.get("per_query", [])
        ]
        return cls(**data)


@dataclass
class AggregatedMetrics:
    """Mean of several :class:`QueryMetrics` (the paper averages 100 queries)."""

    runs: list[QueryMetrics] = field(default_factory=list)
    # queries skipped because they tripped the cloud's result budget
    skipped: int = 0

    def add(self, metrics: QueryMetrics) -> None:
        self.runs.append(metrics)

    def _mean(self, attr: str) -> float:
        if not self.runs:
            return 0.0
        return sum(getattr(run, attr) for run in self.runs) / len(self.runs)

    @property
    def cloud_seconds(self) -> float:
        # the per-run field shares the canonical metric's name; using
        # the constant keeps the view keyed to the taxonomy (R2)
        return self._mean(names.M_CLOUD_SECONDS)

    @property
    def star_matching_seconds(self) -> float:
        return self._mean("star_matching_seconds")

    @property
    def join_seconds(self) -> float:
        return self._mean("join_seconds")

    @property
    def client_seconds(self) -> float:
        return self._mean(names.M_CLIENT_SECONDS)

    @property
    def network_seconds(self) -> float:
        return self._mean("network_seconds")

    @property
    def total_seconds(self) -> float:
        return self._mean("total_seconds")

    @property
    def rs_size(self) -> float:
        return self._mean("rs_size")

    @property
    def rin_size(self) -> float:
        return self._mean("rin_size")

    @property
    def answer_bytes(self) -> float:
        return self._mean("answer_bytes")

    @property
    def result_count(self) -> float:
        return self._mean("result_count")

    def to_dict(self) -> dict[str, Any]:
        return {
            "runs": [run.to_dict() for run in self.runs],
            "skipped": self.skipped,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "AggregatedMetrics":
        return cls(
            runs=[QueryMetrics.from_dict(run) for run in data.get("runs", [])],
            skipped=data.get("skipped", 0),
        )
