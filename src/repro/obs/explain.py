"""Per-query EXPLAIN: one report answering "where did this query go?".

An :class:`ExplainReport` is a *view* over a (possibly stitched,
cross-process) :class:`~repro.obs.tracing.Trace` — the same derivation
discipline as :mod:`repro.obs.views`: every field reads named spans of
the canonical taxonomy (:mod:`repro.obs.names`), never a hand-threaded
ledger.  Because the trace may chain client -> gateway -> cloud ->
shards -> fork children (see ``Tracer.absorb``), the report can
attribute time, bytes, candidate sizes and admission outcomes across
all four process boundaries of the serving path.

Surfaces: ``QueryOptions(explain=True)`` attaches one per outcome, the
``repro explain`` CLI command renders one for an ad-hoc query, and the
telemetry server's ``/traces/<query_id>`` endpoint serves the raw
trace it derives from.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any

from repro.obs import names
from repro.obs.tracing import Trace

#: The per-phase timing rows of the text report, in pipeline order.
#: Only phases that actually appear in the trace are rendered.
PHASE_SPANS = (
    names.CLIENT_SUBMIT,
    names.GATEWAY_REQUEST,
    names.GATEWAY_DISPATCH,
    names.QUERY,
    names.CLIENT_ANONYMIZE,
    names.CLOUD_ANSWER,
    names.CLOUD_DECOMPOSE,
    names.CLOUD_STAR_MATCHING,
    names.CLOUD_SCATTER,
    names.CLOUD_SHARD_MATCH,
    names.CLOUD_GATHER,
    names.CLOUD_JOIN,
    names.CLOUD_EXPAND,
    names.CLIENT_EXPAND,
    names.CLIENT_FILTER,
)


@dataclass
class ShardWork:
    """One shard's (or fork child's) slice of the star matching."""

    shard: int
    results: int
    seconds: float
    pid: int = 0

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


@dataclass
class PhaseTiming:
    """Total wall seconds spent in one named phase (across its spans)."""

    name: str
    seconds: float
    count: int = 1

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


@dataclass
class ExplainReport:
    """What one query cost, phase by phase and boundary by boundary.

    Derived entirely from the stitched trace; ``from_trace`` is total
    (missing spans degrade to zeros/empties, never raise), so a report
    can always be rendered — even for a partial or untraced run.
    """

    query_id: str = ""
    status: str = ""
    # -- plan ----------------------------------------------------------
    stars: int = 0
    shards: int = 0
    dispatched: bool = False  # False: answer served from a coalesced leader
    # -- result/candidate sizes ---------------------------------------
    rs_size: int = 0
    rin_size: int = 0
    matches: int = 0
    candidates: int = 0
    results: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    # -- wire ----------------------------------------------------------
    bytes_by_direction: dict[str, int] = field(default_factory=dict)
    # -- timings -------------------------------------------------------
    phases: list[PhaseTiming] = field(default_factory=list)
    per_shard: list[ShardWork] = field(default_factory=list)
    total_seconds: float = 0.0
    span_count: int = 0
    process_count: int = 0

    @classmethod
    def from_trace(cls, trace: Trace | None, query_id: str = "") -> "ExplainReport":
        """Derive the report from one (stitched) query trace."""
        if trace is None or not len(trace):
            return cls(query_id=query_id)
        if not query_id:
            query_id = next(
                (span.query_id for span in trace if span.query_id), ""
            )
        gateway_root = trace.first(names.GATEWAY_REQUEST)
        cloud_root = trace.first(names.CLOUD_ANSWER)
        cattrs = cloud_root.attributes if cloud_root is not None else {}
        bytes_by_direction = {
            direction: int(trace.sum_attr(span_name, "bytes"))
            for direction, span_name in names.NETWORK_SPANS.items()
            if trace.first(span_name) is not None
        }
        phases = [
            PhaseTiming(
                name=name,
                seconds=trace.duration(name),
                count=len(trace.named(name)),
            )
            for name in PHASE_SPANS
            if trace.first(name) is not None
        ]
        per_shard = [
            ShardWork(
                shard=int(span.attributes.get("shard", -1)),
                results=int(span.attributes.get("results", 0)),
                seconds=span.duration,
                pid=span.pid,
            )
            for span in trace.named(names.CLOUD_SHARD_MATCH)
        ]
        per_shard.sort(key=lambda work: work.shard)
        return cls(
            query_id=query_id,
            status=(
                str(gateway_root.attributes.get("status", ""))
                if gateway_root is not None
                else ""
            ),
            stars=int(trace.attr(names.CLOUD_DECOMPOSE, "stars", 0)),
            shards=int(cattrs.get("shards", 0)),
            dispatched=trace.first(names.GATEWAY_DISPATCH) is not None,
            rs_size=int(cattrs.get("rs_size", 0)),
            rin_size=int(cattrs.get("rin_size", 0)),
            matches=int(cattrs.get("matches", 0)),
            candidates=int(trace.attr(names.CLIENT_FILTER, "candidates", 0)),
            results=int(trace.attr(names.CLIENT_FILTER, "results", 0)),
            cache_hits=int(
                trace.attr(names.CLOUD_STAR_MATCHING, "cache_hits", 0)
            ),
            cache_misses=int(
                trace.attr(names.CLOUD_STAR_MATCHING, "cache_misses", 0)
            ),
            bytes_by_direction=bytes_by_direction,
            phases=phases,
            per_shard=per_shard,
            total_seconds=trace.total_seconds,
            span_count=len(trace),
            process_count=len({span.pid for span in trace if span.pid}),
        )

    # -- renderers -----------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "query_id": self.query_id,
            "status": self.status,
            "stars": self.stars,
            "shards": self.shards,
            "dispatched": self.dispatched,
            "rs_size": self.rs_size,
            "rin_size": self.rin_size,
            "matches": self.matches,
            "candidates": self.candidates,
            "results": self.results,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "bytes_by_direction": dict(self.bytes_by_direction),
            "phases": [phase.to_dict() for phase in self.phases],
            "per_shard": [work.to_dict() for work in self.per_shard],
            "total_seconds": self.total_seconds,
            "span_count": self.span_count,
            "process_count": self.process_count,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ExplainReport":
        data = dict(data)
        data["phases"] = [
            PhaseTiming(**entry) for entry in data.get("phases", [])
        ]
        data["per_shard"] = [
            ShardWork(**entry) for entry in data.get("per_shard", [])
        ]
        return cls(**data)

    def render_text(self) -> str:
        """The human report: plan, sizes, wire, phases, shard lanes."""
        lines = [
            f"EXPLAIN query {self.query_id or '<untraced>'}"
            + (f"  status={self.status}" if self.status else ""),
            f"  plan: {self.stars} star(s)"
            + (f" over {self.shards} shard(s)" if self.shards else "")
            # only a gateway-served request can be coalesced: it has a
            # gateway.request span (status) but no gateway.dispatch
            + ("  [coalesced]" if self.status and not self.dispatched else ""),
            f"  sizes: |RS|={self.rs_size}  |Rin|={self.rin_size}  "
            f"matches={self.matches}  candidates={self.candidates}  "
            f"results={self.results}",
            f"  cache: {self.cache_hits} hit(s) / "
            f"{self.cache_misses} miss(es)",
        ]
        if self.bytes_by_direction:
            parts = "  ".join(
                f"{direction}={count}"
                for direction, count in sorted(self.bytes_by_direction.items())
            )
            lines.append(f"  wire bytes: {parts}")
        if self.phases:
            lines.append("  phases:")
            width = max(len(phase.name) for phase in self.phases)
            for phase in self.phases:
                suffix = f"  x{phase.count}" if phase.count > 1 else ""
                lines.append(
                    f"    {phase.name:<{width}}  "
                    f"{phase.seconds * 1000:9.3f} ms{suffix}"
                )
        if self.per_shard:
            lines.append("  shards:")
            for work in self.per_shard:
                lines.append(
                    f"    shard {work.shard}: results={work.results}  "
                    f"pid={work.pid}  {work.seconds * 1000:.3f} ms"
                )
        lines.append(
            f"  total: {self.total_seconds * 1000:.3f} ms over "
            f"{self.span_count} span(s) in {self.process_count} process(es)"
        )
        return "\n".join(lines)


__all__ = ["ExplainReport", "PhaseTiming", "ShardWork", "PHASE_SPANS"]
