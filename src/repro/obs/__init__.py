"""repro.obs — the unified observability layer.

One coherent surface for everything the paper's evaluation (Section 6)
measures: where the time and the bytes go.  The pieces:

* :class:`~repro.obs.tracing.Tracer` — nested spans (context-manager
  API, thread-safe, fork-aware) around every pipeline phase;
* :class:`~repro.obs.registry.MetricsRegistry` — named counters /
  gauges / histograms (cache hits, candidates, wire bytes, peaks);
* exporters — JSON trace files, Prometheus text format, human tables;
* :mod:`~repro.obs.views` — the legacy metric dataclasses
  (``PublishMetrics`` …), now computed from spans instead of
  hand-threaded assignments;
* :class:`Observability` — the facade components carry around.

Cost model: the default ``Observability()`` records spans at *phase*
granularity only (a dozen per query — the same perf-counter pairs the
hand-rolled timing used).  ``Observability(record=False)`` measures
without retaining (standalone components).  ``Observability.disabled()``
is a true no-op — the hot path sees a shared null span and a null
registry, nothing else.
"""

from __future__ import annotations

from typing import Iterable

from repro.obs import names
from repro.obs.events import NULL_EVENTS, EventLog, NullEventLog, new_query_id
from repro.obs.explain import ExplainReport
from repro.obs.exporters import (
    chrome_trace_dict,
    export_chrome_trace,
    export_dict,
    export_json,
    format_summary,
    prometheus_text,
    write_prometheus,
)
from repro.obs.profiling import SpanProfiler
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)
from repro.obs.tracing import (
    NULL_SPAN,
    NULL_TRACER,
    NullSpan,
    NullTracer,
    Span,
    Trace,
    Tracer,
)
from repro.obs.serve import TelemetryServer, TraceRing
from repro.obs.views import (
    AggregatedMetrics,
    BatchMetrics,
    PublishMetrics,
    QueryMetrics,
    format_percent,
)
from repro.obs.windows import SlidingWindow, quantile_inclusive


class Observability:
    """Tracer + metrics registry, bundled for threading through the stack.

    Parameters
    ----------
    record:
        ``True`` (default): the tracer retains spans and
        :meth:`for_query` hands each query its own recording tracer.
        ``False``: spans are timed but not retained (standalone
        component default — costs what the replaced hand timing cost).
    profile:
        ``True`` profiles every top-level span with :mod:`cProfile`;
        an iterable of span names profiles just those.
    events:
        Optional :class:`~repro.obs.events.EventLog` sink shared by
        every scope forked from this one (default: the null sink).
    """

    def __init__(
        self,
        *,
        record: bool = True,
        profile: bool | Iterable[str] | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | NullTracer | None = None,
        max_spans: int = 100_000,
        events: "EventLog | NullEventLog | None" = None,
    ) -> None:
        if profile is True:
            self.profiler: SpanProfiler | None = SpanProfiler()
        elif profile:
            self.profiler = SpanProfiler(profile)
        else:
            self.profiler = None
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.max_spans = max_spans
        self.events = events if events is not None else NULL_EVENTS
        self.tracer = (
            tracer
            if tracer is not None
            else Tracer(record=record, max_spans=max_spans, profiler=self.profiler)
        )

    @property
    def enabled(self) -> bool:
        """False only for the null (fully disabled) instance."""
        return True

    @property
    def recording(self) -> bool:
        return self.tracer.recording

    @property
    def query_id(self) -> str:
        """The query id of a per-query scope ("" on a base scope)."""
        return self.tracer.query_id

    def for_query(self, query_id: str | None = None) -> "Observability":
        """A fresh per-query scope: its own tracer, the shared registry.

        Per-query tracers keep concurrent batch queries from
        interleaving spans in one buffer and make ``QueryOutcome.trace``
        self-contained (and picklable, for the process backend).  Each
        scope carries a ``query_id`` (allocated here unless supplied)
        stamped onto every span it records and onto the structured
        events derived from them.
        """
        scope = Observability(
            registry=self.metrics,
            tracer=Tracer(
                record=True,
                max_spans=self.max_spans,
                profiler=self.profiler,
                query_id=query_id or new_query_id(),
            ),
            profile=None,
            events=self.events,
        )
        return scope

    @classmethod
    def disabled(cls) -> "Observability":
        """The shared no-op instance: null tracer, null registry."""
        return NULL_OBS

    @classmethod
    def measuring(cls) -> "Observability":
        """Measure-only: real span durations, nothing retained."""
        return Observability(record=False)


class _NullObservability(Observability):
    """Fully disabled: shared null tracer + null registry, no per-query forks."""

    def __init__(self) -> None:
        super().__init__(
            registry=NULL_REGISTRY, tracer=NULL_TRACER, events=NULL_EVENTS
        )

    @property
    def enabled(self) -> bool:
        return False

    def for_query(self, query_id: str | None = None) -> "Observability":
        return self


NULL_OBS = _NullObservability()


__all__ = [
    "Observability",
    "NULL_OBS",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "Trace",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "SpanProfiler",
    "EventLog",
    "NullEventLog",
    "NULL_EVENTS",
    "new_query_id",
    "SlidingWindow",
    "quantile_inclusive",
    "TelemetryServer",
    "TraceRing",
    "names",
    "ExplainReport",
    "chrome_trace_dict",
    "export_chrome_trace",
    "export_dict",
    "export_json",
    "format_summary",
    "prometheus_text",
    "write_prometheus",
    "PublishMetrics",
    "QueryMetrics",
    "BatchMetrics",
    "AggregatedMetrics",
    "format_percent",
]
