"""Serving-grade telemetry exposition over HTTP (stdlib only).

A long-lived ``repro serve`` process must be observable from the
outside: a Prometheus scraper pulls ``/metrics``, an orchestrator
probes ``/healthz`` (liveness) and ``/readyz`` (readiness — flips true
once the deployment is published and the index is built), and an
operator tails ``/traces`` for the last N query traces as JSON.

:class:`TelemetryServer` wraps a :class:`http.server.ThreadingHTTPServer`
running on a daemon thread.  Everything it serves is computed at
request time from the live :class:`~repro.obs.registry.MetricsRegistry`
(including the pull-style window callbacks of
:mod:`repro.obs.windows`), so the query hot path never notices a
scrape.

Endpoints
---------
``GET /metrics``
    :func:`~repro.obs.exporters.prometheus_text` of the registry —
    every line matches ``PROM_LINE_RE``.
``GET /healthz``
    Liveness JSON: ``{"status": "ok", "uptime_seconds": ...,
    "queries_total": ...}`` (registry-backed) plus any extras from the
    ``health`` callable.
``GET /readyz``
    ``200 {"ready": true}`` once the ``ready`` callable reports the
    deployment published; ``503`` before that.
``GET /traces``
    The :class:`TraceRing` contents: the last N recorded query traces
    (query id, totals, spans) as one JSON document.
``GET /traces/<query_id>``
    The newest retained trace for one query id; ``404`` with a JSON
    error body when the ring holds no trace for that id.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

from repro.obs import names
from repro.obs.exporters import prometheus_text
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Trace

PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
DEFAULT_TRACE_RING_CAPACITY = 64


class TraceRing:
    """Thread-safe ring buffer of the last N query traces (as dicts)."""

    def __init__(self, capacity: int = DEFAULT_TRACE_RING_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: deque[dict[str, Any]] = deque(maxlen=capacity)  #: guarded by _lock
        self._pushed = 0  #: guarded by _lock
        self._lock = threading.Lock()

    def push(
        self,
        trace: Trace | None,
        query_id: str = "",
        **summary: Any,
    ) -> None:
        """Retain one query's trace (drops the oldest past capacity)."""
        doc: dict[str, Any] = {
            "query_id": query_id,
            "recorded_at": time.time(),
        }
        doc.update(summary)
        if trace is not None:
            doc["total_seconds"] = trace.total_seconds
            doc["spans"] = [span.to_dict() for span in trace]
        else:
            doc["spans"] = []
        with self._lock:
            self._entries.append(doc)
            self._pushed += 1

    def snapshot(self) -> list[dict[str, Any]]:
        """Oldest-to-newest copies of the retained trace documents."""
        with self._lock:
            return [dict(entry) for entry in self._entries]

    def find(self, query_id: str) -> dict[str, Any] | None:
        """The newest retained trace for ``query_id`` (else ``None``).

        Newest wins: a re-submitted query id (e.g. a retry) shadows the
        earlier recording, matching what an operator debugging "what
        just happened to query X" wants to see.
        """
        with self._lock:
            for entry in reversed(self._entries):
                if entry.get("query_id") == query_id:
                    return dict(entry)
        return None

    @property
    def pushed(self) -> int:
        """Lifetime pushes, including traces already evicted."""
        with self._lock:
            return self._pushed

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class _TelemetryHandler(BaseHTTPRequestHandler):
    """Routes one GET to the owning :class:`TelemetryServer`."""

    server_version = "repro-telemetry/1"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        return None  # scrapes must not spam the serving process's stderr

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, doc: dict[str, Any]) -> None:
        self._send(
            status,
            json.dumps(doc, sort_keys=True, default=str).encode("utf-8"),
            "application/json; charset=utf-8",
        )

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        telemetry: "TelemetryServer" = self.server.telemetry  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/metrics":
                body = prometheus_text(telemetry.registry).encode("utf-8")
                self._send(200, body, PROM_CONTENT_TYPE)
            elif path == "/healthz":
                self._send_json(200, telemetry.health_doc())
            elif path == "/readyz":
                ready = telemetry.is_ready()
                self._send_json(200 if ready else 503, {"ready": ready})
            elif path == "/traces":
                traces = telemetry.traces.snapshot()
                self._send_json(
                    200, {"count": len(traces), "traces": traces}
                )
            elif path.startswith("/traces/"):
                query_id = path[len("/traces/"):]
                entry = telemetry.traces.find(query_id)
                if entry is None:
                    self._send_json(
                        404,
                        {
                            "error": f"no retained trace for query {query_id!r}",
                            "query_id": query_id,
                            "retained": len(telemetry.traces),
                        },
                    )
                else:
                    self._send_json(200, entry)
            else:
                self._send_json(404, {"error": f"unknown path {path!r}"})
        except BrokenPipeError:  # pragma: no cover - client went away
            pass


class TelemetryServer:
    """The exposition endpoint: bind, serve on a daemon thread, stop.

    Parameters
    ----------
    registry:
        The live metrics registry ``/metrics`` renders.
    ready:
        Zero-argument callable for ``/readyz``; defaults to
        always-ready.  ``repro serve`` passes a closure that flips
        true once the deployment is loaded and the index is built.
    health:
        Optional callable returning extra ``/healthz`` fields.
    traces:
        The :class:`TraceRing` behind ``/traces`` (a fresh default
        ring when omitted).
    host / port:
        Bind address.  ``port=0`` asks the OS for a free port; read
        :attr:`port` after :meth:`start`.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        ready: Callable[[], bool] | None = None,
        health: Callable[[], dict[str, Any]] | None = None,
        traces: TraceRing | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry
        self.traces = traces if traces is not None else TraceRing()
        self._ready = ready
        self._health = health
        self._host = host
        self._requested_port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._started_at = time.time()

    # -- state the handler reads ---------------------------------------
    def is_ready(self) -> bool:
        if self._ready is None:
            return True
        try:
            return bool(self._ready())
        except Exception:  # pragma: no cover - defensive
            return False

    def health_doc(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "status": "ok",
            "uptime_seconds": time.time() - self._started_at,
        }
        counter = self.registry.get(names.M_QUERIES)
        if counter is not None:
            doc[names.M_QUERIES] = counter.total  # type: ignore[union-attr]
        if self._health is not None:
            try:
                doc.update(self._health())
            except Exception:  # pragma: no cover - defensive
                doc["status"] = "degraded"
        return doc

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "TelemetryServer":
        """Bind and serve on a daemon thread; idempotent."""
        if self._httpd is not None:
            return self
        httpd = ThreadingHTTPServer(
            (self._host, self._requested_port), _TelemetryHandler
        )
        httpd.daemon_threads = True
        httpd.telemetry = self  # type: ignore[attr-defined]
        self._httpd = httpd
        self._started_at = time.time()
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name="repro-telemetry",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the endpoint down (idempotent; joins the thread)."""
        httpd, self._httpd = self._httpd, None
        thread, self._thread = self._thread, None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    @property
    def running(self) -> bool:
        return self._httpd is not None

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
