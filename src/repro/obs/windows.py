"""Sliding-window SLO views: ring-buffer quantiles and rates.

The cumulative histograms of :mod:`repro.obs.registry` answer "what
happened since the process started"; a serving system also needs
"what is happening *now*": p50/p95/p99 latency and request rate over
the last N observations (optionally time-bounded).  A
:class:`SlidingWindow` is a bounded ring buffer of ``(timestamp,
value)`` pairs that computes those views on demand, so the observe
path stays one deque append under a lock.

Windows plug into a :class:`~repro.obs.registry.MetricsRegistry` as
**pull callbacks** (:meth:`SlidingWindow.register`): the quantiles are
computed at scrape/snapshot time only, and therefore show up on the
``/metrics`` endpoint of :mod:`repro.obs.serve` for free.

Quantiles use the *inclusive* method (linear interpolation between
closest ranks, ``h = (n-1) q``) — identical to
``statistics.quantiles(data, method="inclusive")``, which the property
tests pin down.

Windows are picklable (the lock is dropped and re-created) and
mergeable: the fork-based batch backend observes into per-child
windows whose merged union is exactly the window a shared-memory run
would have produced.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Any, Callable

from repro.obs.registry import MetricsRegistry

#: The standard SLO quantiles exported by :meth:`SlidingWindow.register`.
SLO_QUANTILES = (("p50", 0.5), ("p95", 0.95), ("p99", 0.99))


def quantile_inclusive(data: list[float], q: float) -> float:
    """The ``q``-quantile of ``data`` by the inclusive (R-7) method.

    Matches ``statistics.quantiles(data, n=..., method="inclusive")``
    cut points: sort, take ``h = (len-1) * q`` and interpolate
    linearly between ``data[floor(h)]`` and ``data[ceil(h)]``.
    Returns ``0.0`` for empty data.
    """
    if not data:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be within [0, 1], got {q!r}")
    ordered = sorted(data)
    if len(ordered) == 1:
        return float(ordered[0])
    h = (len(ordered) - 1) * q
    lo = math.floor(h)
    hi = math.ceil(h)
    lower = float(ordered[lo])
    if lo == hi:
        return lower
    return lower + (float(ordered[hi]) - lower) * (h - lo)


class SlidingWindow:
    """Bounded ring of timestamped observations with SLO views.

    Parameters
    ----------
    capacity:
        Maximum retained observations; the oldest fall off first.
    window_seconds:
        Optional time bound: observations older than this are excluded
        from every view (and pruned on the way).  ``None`` keeps the
        window purely count-bounded.
    clock:
        Timestamp source (``time.monotonic`` by default; injectable
        for tests).
    """

    def __init__(
        self,
        capacity: int = 1024,
        window_seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if window_seconds is not None and window_seconds <= 0:
            raise ValueError("window_seconds must be positive or None")
        self.capacity = capacity
        self.window_seconds = window_seconds
        self._clock = clock
        self._entries: deque[tuple[float, float]] = deque(maxlen=capacity)  #: guarded by _lock
        #: guarded by _lock
        self._total = 0  # lifetime observation count (survives eviction)
        self._lock = threading.Lock()

    # -- observe --------------------------------------------------------
    def observe(self, value: float, now: float | None = None) -> None:
        """Record one observation (one append; O(1))."""
        ts = self._clock() if now is None else now
        with self._lock:
            self._entries.append((ts, float(value)))
            self._total += 1

    # -- views ----------------------------------------------------------
    def _current(self, now: float | None = None) -> list[tuple[float, float]]:
        """The in-window entries, pruning expired ones under the lock."""
        with self._lock:
            if self.window_seconds is not None:
                ts = self._clock() if now is None else now
                floor = ts - self.window_seconds
                while self._entries and self._entries[0][0] < floor:
                    self._entries.popleft()
            return list(self._entries)

    def values(self, now: float | None = None) -> list[float]:
        return [value for _, value in self._current(now)]

    def count(self, now: float | None = None) -> int:
        """Observations currently inside the window."""
        return len(self._current(now))

    @property
    def total_observations(self) -> int:
        """Lifetime observations, including those evicted from the ring."""
        with self._lock:
            return self._total

    def mean(self, now: float | None = None) -> float:
        values = self.values(now)
        return sum(values) / len(values) if values else 0.0

    def quantile(self, q: float, now: float | None = None) -> float:
        return quantile_inclusive(self.values(now), q)

    def p50(self, now: float | None = None) -> float:
        return self.quantile(0.5, now)

    def p95(self, now: float | None = None) -> float:
        return self.quantile(0.95, now)

    def p99(self, now: float | None = None) -> float:
        return self.quantile(0.99, now)

    def rate(self, now: float | None = None) -> float:
        """Observations per second over the (time or observed) window.

        With ``window_seconds`` set this is ``count / window_seconds``
        — the steady-state arrival rate.  Without it, the count over
        the observed span (newest - oldest timestamp); 0.0 when fewer
        than two observations exist.
        """
        entries = self._current(now)
        if self.window_seconds is not None:
            return len(entries) / self.window_seconds
        if len(entries) < 2:
            return 0.0
        spread = entries[-1][0] - entries[0][0]
        return len(entries) / spread if spread > 0 else 0.0

    def snapshot(self, now: float | None = None) -> dict[str, float]:
        """All views at once (one prune pass)."""
        entries = self._current(now)
        values = [value for _, value in entries]
        return {
            "count": float(len(values)),
            "mean": sum(values) / len(values) if values else 0.0,
            "p50": quantile_inclusive(values, 0.5),
            "p95": quantile_inclusive(values, 0.95),
            "p99": quantile_inclusive(values, 0.99),
            "rate": self.rate(now),
        }

    # -- SLO breach probing ---------------------------------------------
    def breached(
        self,
        threshold: float,
        quantile: float = 0.99,
        min_count: int = 1,
        now: float | None = None,
    ) -> bool:
        """True when the windowed ``quantile`` exceeds ``threshold``.

        The admission-control primitive: an SLO of "p99 under 250 ms"
        is ``breached(0.25, quantile=0.99)``.  ``min_count`` guards the
        cold start — with fewer in-window observations than that the
        window has no statistical opinion and reports no breach, so a
        freshly started server never sheds its first requests.
        """
        values = [value for _, value in self._current(now)]
        if len(values) < max(1, min_count):
            return False
        return quantile_inclusive(values, quantile) > threshold

    def shed_probe(
        self, threshold: float, quantile: float = 0.99, min_count: int = 1
    ) -> Callable[[], bool]:
        """A zero-argument :meth:`breached` closure for load shedders.

        Handed to admission controllers (e.g.
        :class:`repro.gateway.AdmissionController`) so the shed
        decision stays driven by this live window without the
        controller holding a window reference itself.
        """

        def probe() -> bool:
            return self.breached(
                threshold, quantile=quantile, min_count=min_count
            )

        return probe

    # -- registry integration -------------------------------------------
    def register(
        self, registry: MetricsRegistry, prefix: str, help: str = ""
    ) -> None:
        """Expose the window as pull gauges ``{prefix}_{p50,p95,p99,rate,count}``.

        Evaluated at snapshot/scrape time only; the observe path is
        untouched.  A :class:`~repro.obs.registry.NullRegistry` ignores
        the registration entirely.
        """
        what = help or prefix
        for suffix, q in SLO_QUANTILES:
            registry.register_callback(
                f"{prefix}_{suffix}",
                (lambda q=q: self.quantile(q)),
                help=f"{what} — sliding-window {suffix}.",
            )
        registry.register_callback(
            f"{prefix}_rate",
            self.rate,
            help=f"{what} — observations/second over the window.",
        )
        registry.register_callback(
            f"{prefix}_count",
            (lambda: float(self.count())),
            help=f"{what} — observations inside the window.",
        )

    # -- merging / pickling ---------------------------------------------
    def merge(self, other: "SlidingWindow") -> "SlidingWindow":
        """Fold another window's entries into this one (timestamp order).

        The merged ring holds the newest ``capacity`` entries of the
        union — exactly what one shared window observing both streams
        would retain.  Used to combine per-child windows shipped back
        from the fork-based batch backend.
        """
        with other._lock:
            theirs = list(other._entries)
            their_total = other._total
        with self._lock:
            merged = sorted(list(self._entries) + theirs)
            self._entries = deque(merged[-self.capacity:], maxlen=self.capacity)
            self._total += their_total
        return self

    def __getstate__(self) -> dict[str, Any]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "window_seconds": self.window_seconds,
                "entries": list(self._entries),
                "total": self._total,
            }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.capacity = state["capacity"]
        self.window_seconds = state["window_seconds"]
        self._clock = time.monotonic
        self._entries = deque(state["entries"], maxlen=self.capacity)
        self._total = state["total"]
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SlidingWindow(capacity={self.capacity}, "
            f"window_seconds={self.window_seconds}, len={len(self)})"
        )
