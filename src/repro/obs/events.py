"""Structured JSON-lines event log for long-lived serving processes.

A running ``repro serve`` process needs to be *tailable*: operators
follow what the system is doing per query without attaching a
debugger or waiting for a trace export.  :class:`EventLog` appends one
JSON object per line to a file (or any text stream), each event
carrying

* ``ts`` — wall-clock UNIX timestamp of the emission,
* ``level`` — ``"info"`` (phase boundaries) or ``"debug"`` (per-star
  detail),
* ``event`` — the event kind (``"span"``, ``"query"``, ``"publish"``,
  ``"batch"``, ``"serve"``, ...),
* ``query_id`` — the owning query's id (empty outside a query scope),

plus event-specific fields.  The phase-boundary events mirror the span
taxonomy of :mod:`repro.obs.names` — decompose, star matching, join,
expansion, filtering, network send/recv — and are derived *from the
trace after the query completes*, so the hot path never formats JSON:
with sampling rate ``0.0`` (or the :data:`NULL_EVENTS` sink) the only
per-query cost is a single predicate call.

Sampling is **deterministic by query id** (a CRC of the id against the
rate), so re-running a workload logs the same subset and distributed
components sampling independently agree on which queries to keep.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
import zlib
from pathlib import Path
from typing import IO, Any, Iterable

from repro.obs import names
from repro.obs.tracing import Trace

LEVELS = ("debug", "info")

#: Span names logged only at ``level="debug"`` — per-star detail is
#: high-volume (one event per star per query) and off by default.
DEBUG_SPANS = frozenset({names.CLOUD_STAR_MATCH})

#: The phase boundaries an ``"info"`` event log records, in pipeline
#: order: every span name in a query/publish trace *except* the
#: per-star detail above.  Kept as an explicit allowlist so a renamed
#: phase fails the event-log tests instead of silently vanishing.
INFO_SPANS = frozenset(names.ALL_SPANS) - DEBUG_SPANS


def new_query_id() -> str:
    """A fresh, process-unique query identifier (``"q-" + 12 hex``)."""
    return "q-" + uuid.uuid4().hex[:12]


def _sampled(query_id: str, rate: float) -> bool:
    """Deterministic per-query coin flip: CRC32(query_id) / 2**32 < rate."""
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    return (zlib.crc32(query_id.encode("utf-8")) / 2**32) < rate


class NullEventLog:
    """The disabled sink: accepts everything, writes nothing.

    ``enabled`` is ``False`` so emitters can skip even the event
    *construction* — the hot path sees one attribute read.
    """

    enabled = False
    level = "info"
    sample_rate = 0.0
    emitted = 0

    def should_log(self, query_id: str = "") -> bool:
        return False

    def emit(self, event: str, query_id: str = "", **fields: Any) -> None:
        return None

    def emit_spans(self, trace: Trace | None, query_id: str = "") -> int:
        return 0

    def emit_query(
        self, trace: Trace | None, query_id: str, **fields: Any
    ) -> int:
        return 0

    def flush(self) -> None:
        return None

    def close(self) -> None:
        return None

    def __enter__(self) -> "NullEventLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


NULL_EVENTS = NullEventLog()


class EventLog(NullEventLog):
    """Thread-safe JSON-lines event sink.

    Parameters
    ----------
    target:
        A path (opened in append mode, parents created) or an already
        open text stream (e.g. ``sys.stderr``; not closed by
        :meth:`close`).
    level:
        ``"info"`` (default) records phase boundaries; ``"debug"``
        additionally records per-star spans.
    sample_rate:
        Fraction of queries whose events are written, decided
        deterministically per ``query_id``.  ``0.0`` writes nothing
        and costs one predicate call per query; non-query events
        (``publish``, ``serve``, ...) are always written.
    """

    enabled = True

    def __init__(
        self,
        target: str | Path | IO[str],
        *,
        level: str = "info",
        sample_rate: float = 1.0,
    ) -> None:
        if level not in LEVELS:
            raise ValueError(f"level must be one of {LEVELS}, got {level!r}")
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be within [0, 1], got {sample_rate!r}"
            )
        self.level = level
        self.sample_rate = sample_rate
        self.emitted = 0  #: guarded by _lock
        self._lock = threading.Lock()
        if isinstance(target, (str, Path)):
            self.path: Path | None = Path(target)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream: IO[str] = self.path.open("a", encoding="utf-8")
            self._owns_stream = True
        else:
            self.path = None
            self._stream = target
            self._owns_stream = False

    # -- predicates -----------------------------------------------------
    def should_log(self, query_id: str = "") -> bool:
        """Whether this query's events will be written (cheap, no I/O)."""
        return _sampled(query_id, self.sample_rate)

    def _span_visible(self, name: str) -> bool:
        return self.level == "debug" or name not in DEBUG_SPANS

    # -- emission -------------------------------------------------------
    def emit(self, event: str, query_id: str = "", **fields: Any) -> None:
        """Write one event line (unconditionally — callers sample)."""
        doc: dict[str, Any] = {
            "ts": time.time(),
            "level": fields.pop("level", "info"),
            "event": event,
        }
        if query_id:
            doc["query_id"] = query_id
        doc.update(fields)
        line = json.dumps(doc, sort_keys=True, default=str)
        with self._lock:
            self._stream.write(line + "\n")
            self._stream.flush()
            self.emitted += 1

    def emit_spans(self, trace: Trace | None, query_id: str = "") -> int:
        """One ``span`` event per phase boundary of ``trace``.

        Returns the number of events written.  Per-star spans
        (:data:`DEBUG_SPANS`) are included only at ``level="debug"``.
        """
        if trace is None:
            return 0
        written = 0
        for span in trace:
            if not self._span_visible(span.name):
                continue
            self.emit(
                "span",
                query_id=query_id or span.query_id,
                level="debug" if span.name in DEBUG_SPANS else "info",
                span=span.name,
                seconds=span.duration,
                attrs=dict(span.attributes),
            )
            written += 1
        return written

    def emit_query(
        self, trace: Trace | None, query_id: str, **fields: Any
    ) -> int:
        """The per-query emission: phase events + one ``query`` summary.

        Applies the sampling decision; returns the number of events
        written (0 when the query is not sampled).
        """
        if not self.should_log(query_id):
            return 0
        written = self.emit_spans(trace, query_id=query_id)
        summary: dict[str, Any] = dict(fields)
        if trace is not None:
            summary.setdefault("seconds", trace.total_seconds)
        self.emit("query", query_id=query_id, **summary)
        return written + 1

    # -- lifecycle ------------------------------------------------------
    def flush(self) -> None:
        with self._lock:
            self._stream.flush()

    def close(self) -> None:
        with self._lock:
            if self._owns_stream and not self._stream.closed:
                self._stream.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_events(path: str | Path) -> list[dict[str, Any]]:
    """Parse a JSONL event file back into dicts (tests, tooling)."""
    out: list[dict[str, Any]] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            out.append(json.loads(line))
    return out


def query_ids(events: Iterable[dict[str, Any]]) -> set[str]:
    """The distinct query ids appearing in an event stream."""
    return {e["query_id"] for e in events if e.get("query_id")}
