"""Named counters, gauges and histograms with pluggable export.

A :class:`MetricsRegistry` is the process-wide (or system-wide) home
of the quantities the paper's evaluation charts: cache hits, candidate
counts, false positives filtered, bytes on the wire, intermediate
result peaks.  Metrics support optional label sets (e.g.
``network_bytes_total{direction="answer"}``), are thread-safe, and are
updated only at phase granularity — never inside matching inner loops
— so the serving hot path stays flat.

Pull-style *callbacks* cover values a component already tracks itself
(the star cache's hit/miss counters): the callable is evaluated at
snapshot/export time and costs nothing in between.

:class:`NullRegistry` is the no-op twin used by
``Observability.disabled()``.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable

LabelKey = tuple[tuple[str, str], ...]

#: Default histogram buckets: exponential, spanning microseconds to
#: minutes for timings and 1..1M for sizes.
DEFAULT_BUCKETS = (
    0.0001,
    0.001,
    0.01,
    0.1,
    1.0,
    10.0,
    100.0,
    1000.0,
    10000.0,
    100000.0,
    1000000.0,
)


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Shared plumbing: name, help text, per-label children, one lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "kind": self.kind, "help": self.help}


class Counter(_Metric):
    """Monotonically increasing value (optionally per label set)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def present(self, **labels: Any) -> bool:
        """True once the labeled series has been incremented at least once."""
        with self._lock:
            return _label_key(labels) in self._values

    @property
    def total(self) -> float:
        with self._lock:
            return sum(self._values.values())

    def items(self) -> list[tuple[LabelKey, float]]:
        with self._lock:
            return sorted(self._values.items())


class Gauge(_Metric):
    """A point-in-time value; ``set_max`` tracks peaks (e.g. |join| peak)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def set_max(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            current = self._values.get(key)
            if current is None or value > current:
                self._values[key] = float(value)

    def value(self, **labels: Any) -> float:
        """The gauge's value; ``0.0`` when never set.

        Unified with :meth:`Counter.value` (which has always defaulted
        to ``0.0``): callers that must distinguish "never set" from "set
        to zero" ask :meth:`present` explicitly instead of sniffing for
        ``None``.
        """
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def present(self, **labels: Any) -> bool:
        """True once the labeled series has been set at least once."""
        with self._lock:
            return _label_key(labels) in self._values

    def remove(self, **labels: Any) -> bool:
        """Drop one labeled series; True if it existed.

        Gauges with unbounded label values (per-query ids) must evict
        old series or the exposition grows without bound — see the
        privacy audit's cardinality cap.
        """
        with self._lock:
            return self._values.pop(_label_key(labels), None) is not None

    def items(self) -> list[tuple[LabelKey, float]]:
        with self._lock:
            return sorted(self._values.items())


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self._counts: dict[LabelKey, list[int]] = {}
        self._sums: dict[LabelKey, float] = {}
        self._totals: dict[LabelKey, int] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = [0] * len(self.buckets)
                self._counts[key] = counts
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value
            self._totals[key] = self._totals.get(key, 0) + 1

    def snapshot_one(self, key: LabelKey) -> dict[str, Any]:
        with self._lock:
            return {
                "buckets": dict(
                    zip([str(b) for b in self.buckets], self._counts.get(key, []))
                ),
                "sum": self._sums.get(key, 0.0),
                "count": self._totals.get(key, 0),
            }

    def keys(self) -> list[LabelKey]:
        with self._lock:
            return sorted(self._counts)

    def count(self, **labels: Any) -> int:
        with self._lock:
            return self._totals.get(_label_key(labels), 0)

    def sum(self, **labels: Any) -> float:
        with self._lock:
            return self._sums.get(_label_key(labels), 0.0)


class NullMetric:
    """Accepts every update and stores nothing."""

    __slots__ = ()
    name = ""
    help = ""
    kind = "null"
    buckets = ()

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        return None

    def set(self, value: float, **labels: Any) -> None:
        return None

    def set_max(self, value: float, **labels: Any) -> None:
        return None

    def observe(self, value: float, **labels: Any) -> None:
        return None

    def value(self, **labels: Any) -> float:
        return 0.0

    def present(self, **labels: Any) -> bool:
        return False

    def remove(self, **labels: Any) -> bool:
        return False

    @property
    def total(self) -> float:
        return 0.0

    def items(self) -> list:
        return []


NULL_METRIC = NullMetric()


class MetricsRegistry:
    """Get-or-create home for named metrics + pull-style callbacks."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}  #: guarded by _lock
        self._callbacks: dict[str, tuple[Callable[[], float], str]] = {}  #: guarded by _lock
        self._lock = threading.Lock()

    # -- creation -------------------------------------------------------
    def _get_or_create(
        self, name: str, cls: type, factory: Callable[[], _Metric]
    ) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
        if not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name, help))

    def histogram(
        self, name: str, help: str = "", buckets: Iterable[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, help, buckets)
        )

    def register_callback(
        self, name: str, fn: Callable[[], float], help: str = ""
    ) -> None:
        """Register a pull-style gauge evaluated at snapshot time."""
        with self._lock:
            self._callbacks[name] = (fn, help)

    # -- introspection --------------------------------------------------
    def names(self) -> list[str]:
        with self._lock:
            return sorted(set(self._metrics) | set(self._callbacks))

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def metrics(self) -> list[_Metric]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def callbacks(self) -> list[tuple[str, float, str]]:
        """Evaluate every callback: ``(name, value, help)`` triples."""
        with self._lock:
            items = list(self._callbacks.items())
        out = []
        for name, (fn, help) in sorted(items):
            try:
                out.append((name, float(fn()), help))
            except Exception:  # pragma: no cover - callback died with owner
                continue
        return out

    def snapshot(self) -> dict[str, Any]:
        """Everything, as a JSON-able dict (used by the JSON exporter)."""
        out: dict[str, Any] = {}
        for metric in self.metrics():
            if isinstance(metric, Histogram):
                out[metric.name] = {
                    "kind": metric.kind,
                    "series": [
                        {"labels": dict(key), **metric.snapshot_one(key)}
                        for key in metric.keys()
                    ],
                }
            else:
                out[metric.name] = {
                    "kind": metric.kind,
                    "series": [
                        {"labels": dict(key), "value": value}
                        for key, value in metric.items()
                    ],
                }
        for name, value, _help in self.callbacks():
            out[name] = {
                "kind": "gauge",
                "series": [{"labels": {}, "value": value}],
            }
        return out

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()
            self._callbacks.clear()


class NullRegistry(MetricsRegistry):
    """The disabled registry: every handle is the shared null metric."""

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, help: str = "") -> NullMetric:  # type: ignore[override]
        return NULL_METRIC

    def gauge(self, name: str, help: str = "") -> NullMetric:  # type: ignore[override]
        return NULL_METRIC

    def histogram(  # type: ignore[override]
        self, name: str, help: str = "", buckets: Iterable[float] = DEFAULT_BUCKETS
    ) -> NullMetric:
        return NULL_METRIC

    def register_callback(
        self, name: str, fn: Callable[[], float], help: str = ""
    ) -> None:
        return None


NULL_REGISTRY = NullRegistry()
