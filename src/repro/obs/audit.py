"""Privacy-audit reporter: the paper's leakage quantities as metrics.

The privacy story of the paper rests on quantifiable properties that
are usually checked offline (as in the CryptGraph/Peng-style analyses):

* **k-automorphism indistinguishability** — every vertex of the
  published graph sits in an AVT row of ``k`` mutually symmetric
  vertices, so an adversary locating a target has a candidate set of
  size ``>= k`` (success probability ``<= 1/k``);
* **θ-label generalization** — every LCT label group holds ``>= θ``
  raw labels, giving ``log2(|group|)`` bits of label uncertainty;
* **false-positive ratio** — Algorithm 3's client-side filter drops
  ``|R(Qo, Gk)| - |R(Q, G)|`` candidates per query; the ratio measures
  how much of what the cloud computes is noise it cannot distinguish
  from real results;
* **outsourced fraction** — ``|E(Go)| / |E(Gk)|``: how much of the
  symmetric graph actually leaves the owner.

:func:`build_audit` computes all four as one
:class:`PrivacyAuditReport`; :meth:`PrivacyAuditReport.register`
exports them as gauges on a :class:`~repro.obs.MetricsRegistry` so a
long-lived ``repro serve`` process exposes its privacy posture on
``/metrics`` next to its latency — continuously, the way an inference
stack exports quality counters.  ``python -m repro audit`` renders the
report as a summary table.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from repro.anonymize.lct import LabelCorrespondenceTable
from repro.kauto.avt import AlignmentVertexTable
from repro.obs import names
from repro.obs.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.system import PrivacyPreservingSystem, QueryOutcome

AUDIT_PREFIX = "privacy_audit"

#: Cardinality cap on the per-query FP-ratio gauge: only the newest N
#: audited query ids keep a labeled series; older ones are evicted on
#: re-register.  Without the cap a long-lived ``repro serve`` process
#: re-auditing after every batch would grow one label set per query id
#: forever — an unbounded ``/metrics`` exposition.
FP_GAUGE_MAX_QUERIES = 128


@dataclass
class QueryAuditEntry:
    """Algorithm 3's filter counts for one query."""

    query_id: str = ""
    candidates: int = 0  # |R(Qo, Gk)| — expanded Rin, pre-filter
    results: int = 0  # |R(Q, G)| — exact matches after filtering
    rin_size: int = 0  # |Rin| — what crossed the wire

    @property
    def false_positives(self) -> int:
        return self.candidates - self.results

    @property
    def false_positive_ratio(self) -> float:
        if self.candidates <= 0:
            return 0.0
        return self.false_positives / self.candidates

    def to_dict(self) -> dict[str, Any]:
        doc = asdict(self)
        doc["false_positives"] = self.false_positives
        doc["false_positive_ratio"] = self.false_positive_ratio
        return doc


@dataclass
class PrivacyAuditReport:
    """One point-in-time audit of a deployment's privacy posture."""

    k: int = 0
    theta: int = 0
    # k-automorphism: per-vertex candidate-set sizes under the AVT
    vertex_count: int = 0
    candidate_set_min: int = 0
    candidate_set_mean: float = 0.0
    candidate_set_max: int = 0
    # θ-generalization: LCT label-group sizes and entropies
    label_group_count: int = 0
    label_group_min_size: int = 0
    label_group_mean_size: float = 0.0
    label_group_min_entropy_bits: float = 0.0
    label_group_mean_entropy_bits: float = 0.0
    # outsourcing: how much of Gk leaves the owner
    gk_edges: int = 0
    outsourced_edges: int = 0
    # Algorithm 3 filter counts (aggregate + per query)
    candidates_total: int = 0
    matches_total: int = 0
    false_positives_total: int = 0
    per_query: list[QueryAuditEntry] = field(default_factory=list)

    # -- derived guarantees ---------------------------------------------
    @property
    def k_satisfied(self) -> bool:
        """Candidate set >= k for every vertex (the 1/k bound holds)."""
        return self.vertex_count == 0 or self.candidate_set_min >= self.k

    @property
    def theta_satisfied(self) -> bool:
        """Every label group holds >= θ labels."""
        return self.label_group_count == 0 or (
            self.label_group_min_size >= self.theta
        )

    @property
    def ok(self) -> bool:
        return self.k_satisfied and self.theta_satisfied

    @property
    def attack_probability_bound(self) -> float:
        """Worst-case re-identification probability (``1/min candidate set``)."""
        if self.candidate_set_min <= 0:
            return 1.0
        return 1.0 / self.candidate_set_min

    @property
    def outsourced_fraction(self) -> float:
        """``|E(Go)| / |E(Gk)|`` (1.0 for a full-Gk / BAS deployment)."""
        if self.gk_edges <= 0:
            return 0.0
        return self.outsourced_edges / self.gk_edges

    @property
    def false_positive_ratio(self) -> float:
        """Aggregate FP ratio over everything Algorithm 3 filtered."""
        if self.candidates_total <= 0:
            return 0.0
        return self.false_positives_total / self.candidates_total

    # -- export ---------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        doc = asdict(self)
        doc["per_query"] = [entry.to_dict() for entry in self.per_query]
        for prop in (
            "k_satisfied",
            "theta_satisfied",
            "ok",
            "attack_probability_bound",
            "outsourced_fraction",
            "false_positive_ratio",
        ):
            doc[prop] = getattr(self, prop)
        return doc

    def register(
        self, registry: MetricsRegistry, prefix: str = AUDIT_PREFIX
    ) -> None:
        """Export the report as gauges (``{prefix}_*``) for ``/metrics``."""
        def gauge(name: str, value: float, help: str) -> None:
            registry.gauge(f"{prefix}_{name}", help=help).set(value)

        gauge("k", self.k, "Configured k of the audited deployment.")
        gauge("theta", self.theta, "Configured theta of the audited deployment.")
        gauge(
            "candidate_set_min",
            self.candidate_set_min,
            "Smallest per-vertex candidate set under the AVT (must be >= k).",
        )
        gauge(
            "candidate_set_mean",
            self.candidate_set_mean,
            "Mean per-vertex candidate-set size under the AVT.",
        )
        gauge(
            "candidate_set_max",
            self.candidate_set_max,
            "Largest per-vertex candidate set under the AVT.",
        )
        gauge(
            "attack_probability_bound",
            self.attack_probability_bound,
            "Worst-case structural re-identification probability (<= 1/k).",
        )
        gauge(
            "label_group_count",
            self.label_group_count,
            "Label groups in the private LCT.",
        )
        gauge(
            "label_group_min_size",
            self.label_group_min_size,
            "Smallest LCT label group (must be >= theta).",
        )
        gauge(
            "label_group_mean_entropy_bits",
            self.label_group_mean_entropy_bits,
            "Mean label uncertainty per group, log2(|group|) bits.",
        )
        gauge(
            "label_group_min_entropy_bits",
            self.label_group_min_entropy_bits,
            "Smallest per-group label uncertainty in bits.",
        )
        gauge(
            "outsourced_fraction",
            self.outsourced_fraction,
            "|E(Go)| / |E(Gk)| — share of the symmetric graph outsourced.",
        )
        gauge(
            "false_positive_ratio",
            self.false_positive_ratio,
            "Aggregate Algorithm-3 filter drop ratio over audited queries.",
        )
        gauge("ok", 1.0 if self.ok else 0.0, "1 when k and theta both hold.")
        fp_gauge = registry.gauge(
            f"{prefix}_query_false_positive_ratio",
            help="Per-query Algorithm-3 filter drop ratio.",
        )
        # Bounded cardinality: only the newest FP_GAUGE_MAX_QUERIES
        # query ids keep a labeled series; everything older (including
        # series from earlier register() calls on the same registry) is
        # evicted so the exposition cannot grow one line per query id
        # forever.
        labeled = [entry for entry in self.per_query if entry.query_id]
        kept = labeled[-FP_GAUGE_MAX_QUERIES:]
        kept_ids = {entry.query_id for entry in kept}
        for key, _value in fp_gauge.items():
            labels = dict(key)
            if labels.get("query_id", "") not in kept_ids:
                fp_gauge.remove(**labels)
        for entry in kept:
            fp_gauge.set(entry.false_positive_ratio, query_id=entry.query_id)


# ----------------------------------------------------------------------
# computation
# ----------------------------------------------------------------------
def candidate_set_sizes(avt: AlignmentVertexTable) -> list[int]:
    """Per-vertex candidate-set size: the width of each vertex's AVI row.

    Every vertex of ``Gk`` appears in exactly one AVT row of ``k``
    mutually symmetric vertices; the row *is* the adversary's candidate
    set under k-automorphism.
    """
    return [len(avt.symmetric_group(vid)) for vid in sorted(avt.vertex_ids())]


def label_group_sizes(lct: LabelCorrespondenceTable) -> list[int]:
    """Labels per LCT group (>= θ when the guarantee holds)."""
    return [len(lct.members(gid)) for gid in lct.group_ids()]


def group_entropy_bits(size: int) -> float:
    """Label uncertainty of one group, assuming uniform labels."""
    return math.log2(size) if size > 0 else 0.0


def query_audit_entry(outcome: "QueryOutcome") -> QueryAuditEntry:
    """Algorithm 3's counts, read off one :class:`QueryOutcome`."""
    metrics = outcome.metrics
    return QueryAuditEntry(
        query_id=getattr(outcome, "query_id", "") or "",
        candidates=metrics.candidate_count,
        results=metrics.result_count,
        rin_size=metrics.rin_size,
    )


def build_audit(
    avt: AlignmentVertexTable,
    lct: LabelCorrespondenceTable | None = None,
    *,
    theta: int = 0,
    gk_edges: int = 0,
    outsourced_edges: int = 0,
    outcomes: Iterable["QueryOutcome"] = (),
    registry: MetricsRegistry | None = None,
) -> PrivacyAuditReport:
    """Compute the audit report from deployment artifacts.

    ``outcomes`` contributes per-query filter counts; ``registry``
    (when given) supplies the *aggregate* Algorithm-3 counters
    (``candidates_total`` / ``matches_total`` /
    ``false_positives_filtered_total``) accumulated by the live
    pipeline — they take precedence over summing the outcomes, so the
    exported FP-ratio gauge matches exactly what the filter counted.
    """
    sizes = candidate_set_sizes(avt)
    report = PrivacyAuditReport(k=avt.k, theta=theta)
    report.vertex_count = len(sizes)
    if sizes:
        report.candidate_set_min = min(sizes)
        report.candidate_set_max = max(sizes)
        report.candidate_set_mean = sum(sizes) / len(sizes)

    if lct is not None:
        group_sizes = label_group_sizes(lct)
        report.theta = theta or lct.theta
        report.label_group_count = len(group_sizes)
        if group_sizes:
            report.label_group_min_size = min(group_sizes)
            report.label_group_mean_size = sum(group_sizes) / len(group_sizes)
            entropies = [group_entropy_bits(size) for size in group_sizes]
            report.label_group_min_entropy_bits = min(entropies)
            report.label_group_mean_entropy_bits = sum(entropies) / len(
                entropies
            )

    report.gk_edges = gk_edges
    report.outsourced_edges = outsourced_edges

    report.per_query = [query_audit_entry(outcome) for outcome in outcomes]
    if registry is not None and _has_filter_counters(registry):
        report.candidates_total = int(
            registry.counter(names.M_CANDIDATES).total
        )
        report.matches_total = int(registry.counter(names.M_MATCHES).total)
        report.false_positives_total = int(
            registry.counter(names.M_FALSE_POSITIVES).total
        )
    else:
        report.candidates_total = sum(e.candidates for e in report.per_query)
        report.matches_total = sum(e.results for e in report.per_query)
        report.false_positives_total = sum(
            e.false_positives for e in report.per_query
        )
    return report


def _has_filter_counters(registry: MetricsRegistry) -> bool:
    counter = registry.get(names.M_CANDIDATES)
    return counter is not None and counter.kind == "counter"


def audit_system(
    system: "PrivacyPreservingSystem",
    outcomes: Iterable["QueryOutcome"] = (),
) -> PrivacyAuditReport:
    """Audit a live :class:`PrivacyPreservingSystem` deployment."""
    published = system.published
    return build_audit(
        published.transform.avt,
        published.lct,
        theta=system.config.theta,
        gk_edges=published.metrics.gk_edges
        or published.transform.gk.edge_count,
        outsourced_edges=published.upload_graph.edge_count,
        outcomes=outcomes,
        registry=system.obs.metrics,
    )


def register_live_false_positive_ratio(
    registry: MetricsRegistry, prefix: str = AUDIT_PREFIX
) -> None:
    """A pull callback tracking the FP ratio as the pipeline runs.

    Unlike the point-in-time gauge of :meth:`PrivacyAuditReport.
    register`, this recomputes from the live Algorithm-3 counters at
    every scrape, so ``/metrics`` shows the current ratio without
    re-auditing.
    """

    def live_ratio() -> float:
        counter = registry.get(names.M_CANDIDATES)
        if counter is None or counter.kind != "counter":
            return 0.0
        candidates = counter.total
        if candidates <= 0:
            return 0.0
        dropped = registry.counter(names.M_FALSE_POSITIVES).total
        return dropped / candidates

    registry.register_callback(
        f"{prefix}_false_positive_ratio_live",
        live_ratio,
        help="Live Algorithm-3 filter drop ratio (from the counters).",
    )


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def format_audit(report: PrivacyAuditReport, title: str = "privacy audit") -> str:
    """The report as a fixed-width summary table."""
    def mark(ok: bool) -> str:
        return "PASS" if ok else "FAIL"

    rows: list[tuple[str, str]] = [
        ("k (automorphism)", str(report.k)),
        ("theta (label groups)", str(report.theta)),
        ("vertices audited", str(report.vertex_count)),
        (
            "candidate set min/mean/max",
            f"{report.candidate_set_min}/"
            f"{report.candidate_set_mean:.2f}/{report.candidate_set_max}",
        ),
        (
            "attack probability bound",
            f"{report.attack_probability_bound:.4f}",
        ),
        ("k guarantee", mark(report.k_satisfied)),
        ("label groups", str(report.label_group_count)),
        (
            "group size min/mean",
            f"{report.label_group_min_size}/{report.label_group_mean_size:.2f}",
        ),
        (
            "group entropy min/mean (bits)",
            f"{report.label_group_min_entropy_bits:.3f}/"
            f"{report.label_group_mean_entropy_bits:.3f}",
        ),
        ("theta guarantee", mark(report.theta_satisfied)),
        (
            "outsourced edges |E(Go)|/|E(Gk)|",
            f"{report.outsourced_edges}/{report.gk_edges} "
            f"({report.outsourced_fraction:.1%})",
        ),
        ("queries audited", str(len(report.per_query))),
        ("candidates inspected", str(report.candidates_total)),
        ("exact matches", str(report.matches_total)),
        ("false positives filtered", str(report.false_positives_total)),
        ("false-positive ratio", f"{report.false_positive_ratio:.1%}"),
        ("overall", mark(report.ok)),
    ]
    width = max(len(label) for label, _ in rows)
    lines = [title, "-" * len(title)]
    lines.extend(f"{label.ljust(width)}  {value}" for label, value in rows)
    return "\n".join(lines)
