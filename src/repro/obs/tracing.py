"""Nested spans: the timing substrate of the observability layer.

Three tracer grades cover the whole cost/fidelity spectrum:

* :class:`Tracer` (``record=True``) — full tracing: spans carry ids,
  parent links, depths and thread attribution, and are retained in an
  in-order buffer that :meth:`Tracer.trace` snapshots.  This is what
  ``PrivacyPreservingSystem.query`` uses per query (one fresh tracer
  per query, so concurrent batch queries never interleave spans).
* :class:`Tracer` (``record=False``) — *measure-only*: ``span()``
  still returns a real :class:`Span` whose ``duration`` is set on
  exit (components read it to fill their telemetry), but nothing is
  retained, no ids are allocated and no locks are taken.  This is the
  default for standalone components and costs exactly what the
  hand-rolled ``time.perf_counter()`` pairs it replaced cost.
* :class:`NullTracer` — a true no-op: ``span()`` hands back a shared
  :class:`NullSpan` context manager.  Zero allocations, zero clock
  reads; the hot path stays flat (``Observability.disabled()``).

Thread-safety: each thread nests spans on its own ``threading.local``
stack; the completed-span buffer is appended under a lock.  A span may
be parented explicitly (``tracer.span(name, parent=span)``) which is
how the per-star spans of ``star_workers > 1`` attach to the
``cloud.star_matching`` span that was opened on the submitting thread.

Fork-awareness (the ``process`` batch backend): a tracer detects that
it is running in a forked child (pid change) and resets its buffer and
stacks before recording, so the child starts from a clean trace
instead of appending to a copy of the parent's.  Traces produced in
children are plain picklable dataclasses and travel back to the parent
inside each ``QueryOutcome``.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Iterator


@dataclass
class Span:
    """One timed phase.  Picklable; ``attributes`` hold JSON-able scalars."""

    name: str
    span_id: int = 0
    parent_id: int | None = None
    depth: int = 0
    started_at: float = 0.0  # seconds since the tracer's epoch
    duration: float = 0.0  # wall seconds (perf_counter)
    thread: str = ""
    pid: int = 0
    query_id: str = ""  # the owning query's id ("" outside a query scope)
    attributes: dict[str, Any] = field(default_factory=dict)

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes; chainable inside a ``with`` block."""
        self.attributes.update(attrs)
        return self

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        return cls(**data)


class NullSpan:
    """The span handed out by :class:`NullTracer`: immutable, zero cost."""

    __slots__ = ()

    name = ""
    span_id = 0
    parent_id = None
    depth = 0
    started_at = 0.0
    duration = 0.0
    thread = ""
    pid = 0
    query_id = ""
    attributes: dict[str, Any] = {}

    def set(self, **attrs: Any) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


NULL_SPAN = NullSpan()


@dataclass
class Trace:
    """A completed (or snapshotted) collection of spans.

    Spans appear in *completion* order; ``started_at`` restores the
    start order and ``parent_id``/``depth`` restore the nesting.
    """

    spans: list[Span] = field(default_factory=list)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    def __len__(self) -> int:
        return len(self.spans)

    def named(self, name: str) -> list[Span]:
        return [span for span in self.spans if span.name == name]

    def first(self, name: str) -> Span | None:
        for span in self.spans:
            if span.name == name:
                return span
        return None

    def duration(self, name: str) -> float:
        """Total wall seconds spent in spans called ``name``."""
        return sum(span.duration for span in self.spans if span.name == name)

    def attr(self, name: str, key: str, default: Any = None) -> Any:
        """The attribute ``key`` of the first span called ``name``."""
        span = self.first(name)
        if span is None:
            return default
        return span.attributes.get(key, default)

    def sum_attr(self, name: str, key: str) -> float:
        """Sum attribute ``key`` over every span called ``name``."""
        return sum(
            span.attributes.get(key, 0) or 0
            for span in self.spans
            if span.name == name
        )

    def roots(self) -> list[Span]:
        return [span for span in self.spans if span.parent_id is None]

    def children(self, parent: Span) -> list[Span]:
        kids = [s for s in self.spans if s.parent_id == parent.span_id]
        kids.sort(key=lambda s: s.started_at)
        return kids

    @property
    def total_seconds(self) -> float:
        """Wall seconds covered by the root spans (nesting not double-counted)."""
        return sum(span.duration for span in self.roots())

    def extend(self, other: "Trace") -> "Trace":
        self.spans.extend(other.spans)
        return self

    def merge(self, other: "Trace", *, parent_id: int | None = None) -> "Trace":
        """Graft ``other``'s spans into this trace under fresh span ids.

        Unlike :meth:`extend` (a naive concatenation), ``merge`` is
        safe across id spaces: every tracer counts span ids from 1, so
        a fork child's or remote process's ids collide with the local
        ones.  All of ``other``'s ids are remapped past this trace's
        maximum, internal ``parent_id`` links are rewritten through the
        mapping, and ``other``'s root spans (``parent_id is None``) are
        re-parented under ``parent_id`` when given — stitching the
        remote tree under a local span.  ``other`` is not mutated.
        """
        base = max((span.span_id for span in self.spans), default=0)
        if parent_id:
            base = max(base, parent_id)
        parent = None
        if parent_id:
            parent = next(
                (s for s in self.spans if s.span_id == parent_id), None
            )
        base_depth = parent.depth + 1 if parent is not None else 0
        mapping = {
            span.span_id: base + offset
            for offset, span in enumerate(other.spans, start=1)
        }
        for span in other.spans:
            new_parent = (
                mapping.get(span.parent_id)
                if span.parent_id is not None
                else None
            )
            if new_parent is None:
                new_parent = parent_id if parent_id else None
            self.spans.append(
                replace(
                    span,
                    span_id=mapping[span.span_id],
                    parent_id=new_parent,
                    depth=span.depth + base_depth,
                    attributes=dict(span.attributes),
                )
            )
        return self

    def to_dict(self) -> dict[str, Any]:
        return {"spans": [span.to_dict() for span in self.spans]}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Trace":
        return cls(spans=[Span.from_dict(entry) for entry in data["spans"]])


class _SpanContext:
    """Context manager that opens/closes one :class:`Span`."""

    __slots__ = ("_tracer", "span", "_profile")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span
        self._profile = None

    def __enter__(self) -> Span:
        tracer = self._tracer
        span = self.span
        if tracer._record:
            tracer._open(span)
            if tracer._profiler is not None:
                self._profile = tracer._profiler.enter(span)
        span.started_at = time.perf_counter() - tracer._epoch
        return span

    def __exit__(self, *exc_info: object) -> None:
        tracer = self._tracer
        span = self.span
        span.duration = time.perf_counter() - tracer._epoch - span.started_at
        if tracer._record:
            if self._profile is not None:
                tracer._profiler.exit(span, self._profile)
            tracer._close(span)


class NullTracer:
    """The no-op tracer: every ``span()`` is the shared :class:`NullSpan`."""

    recording = False
    enabled = False
    query_id = ""

    def span(
        self, name: str, parent: "Span | NullSpan | None" = None, **attrs: Any
    ) -> "NullSpan | _SpanContext":
        return NULL_SPAN

    def trace(self) -> Trace:
        return Trace()

    def take_trace(self) -> Trace:
        return Trace()

    def reset(self) -> None:
        return None

    def snapshot(self, span: Span) -> Span:
        return span

    def absorb(self, trace: Trace, parent: Span | None = None) -> list[Span]:
        return []


NULL_TRACER = NullTracer()


class Tracer(NullTracer):
    """Produces nested spans; see the module docstring for the grades.

    Parameters
    ----------
    record:
        ``True`` retains completed spans for :meth:`trace`; ``False``
        (measure-only) just times them.
    max_spans:
        Retention cap; the oldest spans are dropped past it so a
        long-lived tracer cannot grow without bound.
    profiler:
        Optional :class:`repro.obs.profiling.SpanProfiler`; profiled
        spans carry a ``profile`` attribute with their hottest frames.
    query_id:
        Identifier stamped onto every recorded span — set by
        ``Observability.for_query`` so one query's spans (and the
        structured events derived from them) are correlatable across
        traces, the event log and the ``/traces`` endpoint.
    """

    enabled = True

    def __init__(
        self,
        *,
        record: bool = True,
        max_spans: int = 100_000,
        profiler: "Any | None" = None,
        query_id: str = "",
    ) -> None:
        self._record = record
        self._max_spans = max_spans
        self._profiler = profiler
        self.query_id = query_id
        self._spans: list[Span] = []  #: guarded by _lock
        self._ids = itertools.count(1)
        self._stacks = threading.local()
        self._lock = threading.Lock()
        self._pid = os.getpid()
        self._epoch = time.perf_counter()

    # -- public surface -------------------------------------------------
    @property
    def recording(self) -> bool:  # type: ignore[override]
        return self._record

    def span(
        self, name: str, parent: "Span | NullSpan | None" = None, **attrs: Any
    ) -> _SpanContext:
        """Open a span; use as ``with tracer.span("phase") as sp:``.

        ``parent`` overrides the implicit (thread-local) parent — pass
        the enclosing span when the body runs on a worker thread.
        """
        if not self._record:
            # measure-only: a bare span, no ids, no retention, no locks
            span = Span(name)
            if attrs:
                span.attributes.update(attrs)
            return _SpanContext(self, span)
        if os.getpid() != self._pid:
            self._reset_for_fork()
        span = Span(
            name,
            pid=self._pid,
            thread=threading.current_thread().name,
            query_id=self.query_id,
        )
        if attrs:
            span.attributes.update(attrs)
        if parent is not None and parent.span_id:
            span.parent_id = parent.span_id
            span.depth = parent.depth + 1
        return _SpanContext(self, span)

    def trace(self) -> Trace:
        """A snapshot of the spans completed so far (completion order)."""
        with self._lock:
            return Trace(spans=list(self._spans))

    def take_trace(self) -> Trace:
        """Like :meth:`trace` but clears the buffer (one-shot export)."""
        with self._lock:
            spans, self._spans = self._spans, []
        return Trace(spans=spans)

    def reset(self) -> None:
        with self._lock:
            self._spans.clear()

    def snapshot(self, span: Span) -> Span:
        """A copy of a still-open span with its duration as of now.

        The gateway encodes its answer while its request root span is
        still open; the returned trace carries this synthesized
        snapshot so the client sees the (near-final) root duration.
        """
        return replace(
            span,
            duration=time.perf_counter() - self._epoch - span.started_at,
            attributes=dict(span.attributes),
        )

    def absorb(self, trace: Trace, parent: Span | None = None) -> list[Span]:
        """Merge a remote/fork-child trace into this tracer's buffer.

        Every absorbed span receives a fresh id from this tracer's own
        counter (so future local spans can never collide with it),
        internal ``parent_id`` links are rewritten through the id
        mapping, and the remote roots are re-parented under ``parent``
        when given.  Returns the grafted copies; the input trace is not
        mutated.  No-op (empty list) on a measure-only tracer.
        """
        if not self._record:
            return []
        parent_id = (
            parent.span_id if parent is not None and parent.span_id else None
        )
        base_depth = parent.depth + 1 if parent_id is not None else 0
        mapping = {span.span_id: next(self._ids) for span in trace.spans}
        grafted: list[Span] = []
        for span in trace.spans:
            new_parent = (
                mapping.get(span.parent_id)
                if span.parent_id is not None
                else None
            )
            if new_parent is None:
                new_parent = parent_id
            grafted.append(
                replace(
                    span,
                    span_id=mapping[span.span_id],
                    parent_id=new_parent,
                    depth=span.depth + base_depth,
                    attributes=dict(span.attributes),
                )
            )
        with self._lock:
            self._spans.extend(grafted)
            if len(self._spans) > self._max_spans:
                del self._spans[: len(self._spans) - self._max_spans]
        return grafted

    # -- internals ------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = []
            self._stacks.stack = stack
        return stack

    def _open(self, span: Span) -> None:
        span.span_id = next(self._ids)
        stack = self._stack()
        if span.parent_id is None and stack:
            top = stack[-1]
            span.parent_id = top.span_id
            span.depth = top.depth + 1
        stack.append(span)

    def _close(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - defensive (mismatched exits)
            stack.remove(span)
        with self._lock:
            self._spans.append(span)
            if len(self._spans) > self._max_spans:
                del self._spans[: len(self._spans) - self._max_spans]

    def _reset_for_fork(self) -> None:
        """First span in a forked child: start from a clean buffer."""
        with self._lock:
            self._pid = os.getpid()
            self._spans = []
            self._stacks = threading.local()
