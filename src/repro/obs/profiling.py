"""Optional per-span cProfile hook.

When a recording tracer is built with a :class:`SpanProfiler`, every
span whose name matches the profiler's selection runs under its own
``cProfile.Profile``; on exit the hottest frames (by cumulative time)
are attached to the span as the ``profile`` attribute — a list of
``"cumtime seconds  ncalls  function"`` strings ready for the human
summary exporter or the JSON trace.

Only one profiler can be active per thread (cProfile's own
restriction), so nested selected spans are profiled at the outermost
level and inner ones are skipped — their cost is inside the outer
profile anyway.
"""

from __future__ import annotations

import cProfile
import pstats
import threading
from typing import Iterable

from repro.obs.tracing import Span


class SpanProfiler:
    """Profile spans selected by name (or all root-level spans).

    Parameters
    ----------
    names:
        Span names to profile; ``None`` profiles every span that is not
        nested inside an already-profiled one.
    top:
        How many functions (by cumulative time) to attach per span.
    """

    def __init__(self, names: Iterable[str] | None = None, top: int = 10) -> None:
        self.names = None if names is None else frozenset(names)
        self.top = top
        self._local = threading.local()

    def wants(self, span: Span) -> bool:
        if getattr(self._local, "active", False):
            return False  # cProfile cannot nest on one thread
        return self.names is None or span.name in self.names

    def enter(self, span: Span) -> cProfile.Profile | None:
        if not self.wants(span):
            return None
        profile = cProfile.Profile()
        self._local.active = True
        profile.enable()
        return profile

    def exit(self, span: Span, profile: cProfile.Profile | None) -> None:
        if profile is None:
            return
        profile.disable()
        self._local.active = False
        span.set(profile=self.top_functions(profile, self.top))

    @staticmethod
    def top_functions(profile: cProfile.Profile, top: int) -> list[str]:
        stats = pstats.Stats(profile)
        rows = []
        for func, (cc, nc, _tt, ct, _callers) in stats.stats.items():  # type: ignore[attr-defined]
            filename, lineno, name = func
            where = f"{filename.rsplit('/', 1)[-1]}:{lineno}:{name}"
            rows.append((ct, nc, where))
        rows.sort(reverse=True)
        return [
            f"{ct:.6f}s  {nc:>6}  {where}" for ct, nc, where in rows[:top]
        ]
