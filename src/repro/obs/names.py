"""Canonical span and metric names of the observability taxonomy.

Every pipeline phase the paper's evaluation (Section 6) accounts for
emits exactly one span with one of these names; the legacy metric
views (:mod:`repro.obs.views`) and the exporters key off them.  Use
the constants instead of string literals so a renamed phase fails at
import time rather than silently producing an empty metric.

Span tree (one ``query``, client expansion site)::

    query
    ├── client.anonymize          Q -> Qo through the private LCT
    ├── protocol.encode_query     bytes=|payload|
    ├── network.query             simulated_seconds, bytes
    ├── protocol.decode_query
    ├── cloud.answer              rs_size, rin_size
    │   ├── cloud.decompose       stars
    │   ├── cloud.star_matching   rs_size, cache_hits, cache_misses
    │   │   └── cloud.star_match  (one per star; center, results)
    │   └── cloud.join            rin_size, intermediate_peak
    ├── cloud.expand              (expansion_site="cloud" only)
    ├── protocol.encode_answer    bytes=|payload|
    ├── network.answer            simulated_seconds, bytes
    ├── protocol.decode_answer
    ├── client.expand             rin -> R(Qo, Gk) through the AVT
    └── client.filter             candidates, results, dropped

and one setup/publish trace (the owner's ``publish`` root, followed by
the upload + index-build roots ``PrivacyPreservingSystem.setup``
appends)::

    publish                       method, k, theta, original sizes
    ├── publish.lct               LCT construction + verification
    │   └── anonymize.grouping    the grouping strategy (labels, groups)
    ├── publish.kauto             label generalization + Gk transform
    │   ├── kauto.partition
    │   ├── kauto.alignment
    │   └── kauto.edge_copy
    └── publish.outsource         Gk -> Go extraction (or Gk passthrough)
    protocol.encode_upload        bytes=|payload|
    network.upload                simulated_seconds, bytes
    cloud.index_build             index_bytes, build_seconds

``batch`` wraps one ``query_batch`` run (backend, workers, queries).
"""

from __future__ import annotations

# -- roots --------------------------------------------------------------
QUERY = "query"
PUBLISH = "publish"
BATCH = "batch"

# -- owner/publish phases ----------------------------------------------
ANON_GROUPING = "anonymize.grouping"
PUBLISH_LCT = "publish.lct"
PUBLISH_KAUTO = "publish.kauto"
PUBLISH_OUTSOURCE = "publish.outsource"
KAUTO_PARTITION = "kauto.partition"
KAUTO_ALIGNMENT = "kauto.alignment"
KAUTO_EDGE_COPY = "kauto.edge_copy"
CLOUD_INDEX_BUILD = "cloud.index_build"

# -- client phases ------------------------------------------------------
CLIENT_ANONYMIZE = "client.anonymize"
CLIENT_EXPAND = "client.expand"
CLIENT_FILTER = "client.filter"
# Root span a GatewayClient opens around one submit() round trip; the
# gateway's remote trace (when requested) is stitched under it.
CLIENT_SUBMIT = "client.submit"

# -- cloud phases -------------------------------------------------------
CLOUD_ANSWER = "cloud.answer"
CLOUD_DECOMPOSE = "cloud.decompose"
CLOUD_STAR_MATCHING = "cloud.star_matching"
CLOUD_STAR_MATCH = "cloud.star_match"
CLOUD_JOIN = "cloud.join"
CLOUD_EXPAND = "cloud.expand"

# -- sharded cloud phases (repro.cloud.sharding) ------------------------
# Under ``cloud.star_matching``, a sharded deployment replaces the
# per-star loop with scatter -> per-shard match -> gather:
#   cloud.scatter      shards, bytes (channel mode)
#   cloud.shard_match  one per shard; shard, stars, results
#   cloud.gather       rs_size, deduped
CLOUD_SCATTER = "cloud.scatter"
CLOUD_SHARD_MATCH = "cloud.shard_match"
CLOUD_GATHER = "cloud.gather"

# -- protocol / wire ----------------------------------------------------
ENCODE_QUERY = "protocol.encode_query"
DECODE_QUERY = "protocol.decode_query"
ENCODE_ANSWER = "protocol.encode_answer"
DECODE_ANSWER = "protocol.decode_answer"
ENCODE_UPLOAD = "protocol.encode_upload"
NETWORK_QUERY = "network.query"
NETWORK_ANSWER = "network.answer"
NETWORK_UPLOAD = "network.upload"
NETWORK_SHARD_QUERY = "network.shard_query"
NETWORK_SHARD_ANSWER = "network.shard_answer"
NETWORK_GATEWAY_QUERY = "network.gateway_query"
NETWORK_GATEWAY_ANSWER = "network.gateway_answer"

# -- gateway serving path (repro.gateway) -------------------------------
# One ``gateway.request`` root per request frame a gateway connection
# handles (client_id, queries, status); ``gateway.dispatch`` wraps the
# bounded-pool cloud computation under it (coalesced followers skip
# the dispatch span — they await the leader's result).
GATEWAY_REQUEST = "gateway.request"
GATEWAY_DISPATCH = "gateway.dispatch"

#: Wire direction -> canonical network span name, for call sites that
#: receive the direction as data (:meth:`NetworkChannel.transmit`).
NETWORK_SPANS = {
    "upload": NETWORK_UPLOAD,
    "query": NETWORK_QUERY,
    "answer": NETWORK_ANSWER,
    "shard_query": NETWORK_SHARD_QUERY,
    "shard_answer": NETWORK_SHARD_ANSWER,
    "gateway_query": NETWORK_GATEWAY_QUERY,
    "gateway_answer": NETWORK_GATEWAY_ANSWER,
}

#: Every span name above, for validation and documentation tests.
ALL_SPANS = tuple(
    value
    for key, value in sorted(globals().items())
    if key.isupper() and isinstance(value, str) and key != "ALL_SPANS"
)

# -- registry metric names ---------------------------------------------
M_QUERIES = "queries_total"
M_MATCHES = "matches_total"
M_CANDIDATES = "candidates_total"
M_FALSE_POSITIVES = "false_positives_filtered_total"
M_STAR_MATCHES = "star_matches_total"
M_SHARD_MATCHES = "shard_star_matches_total"
M_CACHE_HITS = "star_cache_hits_total"
M_CACHE_MISSES = "star_cache_misses_total"
M_NETWORK_BYTES = "network_bytes_total"
M_INTERMEDIATE_PEAK = "join_intermediate_peak"
M_QUERY_SECONDS = "query_seconds"
M_CLOUD_SECONDS = "cloud_seconds"
M_CLIENT_SECONDS = "client_seconds"

# -- gateway serving metrics (repro.gateway) ----------------------------
M_GATEWAY_REQUESTS = "gateway_requests_total"
M_GATEWAY_SHED = "gateway_shed_total"
M_GATEWAY_COALESCED = "gateway_coalesced_total"
#: Serialized trace bytes shipped back on gateway answer frames.
M_TRACE_BYTES = "trace_bytes_total"

# -- sliding-window SLO view prefixes (repro.obs.windows) ---------------
# Each expands into pull gauges `<prefix>_{p50,p95,p99,rate,count}`.
W_QUERY_WINDOW = "query_seconds_window"
W_CLOUD_WINDOW = "cloud_seconds_window"
W_GATEWAY_WINDOW = "gateway_seconds_window"
