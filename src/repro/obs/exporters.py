"""Exporters: JSON trace files, Prometheus text format, human tables.

Three formats cover the consumers named in the evaluation plan:

* :func:`export_json` — everything (spans + metrics snapshot) in one
  JSON document, for offline analysis and the CLI ``--trace`` flag;
* :func:`prometheus_text` — the metrics registry in the Prometheus
  text exposition format (one parseable line per sample), for
  scraping a long-running serving process;
* :func:`format_summary` — a fixed-width per-phase table (count,
  total, mean, share of wall time), for terminals and the
  ``python -m repro profile`` command;
* :func:`export_chrome_trace` — the Chrome/Perfetto trace-event JSON
  (``chrome://tracing``, https://ui.perfetto.dev) with one lane per
  (process, thread), so a stitched cross-process trace renders as
  client, gateway, coordinator and fork-child swimlanes.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Mapping

from repro.obs.registry import Histogram, MetricsRegistry
from repro.obs.tracing import Trace

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")
PROM_PREFIX = "repro"

#: One Prometheus text-format line: comment or ``name{labels} value``.
PROM_LINE_RE = re.compile(
    r"^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9eE+.\-]+(\s[0-9]+)?)$"
)


def prom_name(name: str) -> str:
    """``cloud.star_cache_hits_total`` -> ``repro_cloud_star_cache_hits_total``."""
    return f"{PROM_PREFIX}_{_NAME_RE.sub('_', name)}"


def _labels_text(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    def escape(value: str) -> str:
        # The Prometheus text format requires escaping backslash, the
        # double quote *and* the line feed inside label values — an
        # unescaped newline would split one sample across two
        # unparseable lines (PROM_LINE_RE is line-anchored).
        return (
            str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
        )

    inner = ",".join(
        f'{key}="{escape(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for metric in registry.metrics():
        name = prom_name(metric.name)
        lines.append(f"# HELP {name} {metric.help or metric.name}")
        lines.append(f"# TYPE {name} {metric.kind}")
        if isinstance(metric, Histogram):
            for key in metric.keys():
                labels = dict(key)
                snap = metric.snapshot_one(key)
                for bound, count in snap["buckets"].items():
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = bound
                    lines.append(
                        f"{name}_bucket{_labels_text(bucket_labels)} {count}"
                    )
                inf_labels = dict(labels)
                inf_labels["le"] = "+Inf"
                lines.append(
                    f"{name}_bucket{_labels_text(inf_labels)} {snap['count']}"
                )
                lines.append(f"{name}_sum{_labels_text(labels)} {_fmt(snap['sum'])}")
                lines.append(f"{name}_count{_labels_text(labels)} {snap['count']}")
        else:
            items = metric.items() or [((), 0.0)]
            for key, value in items:
                lines.append(f"{name}{_labels_text(dict(key))} {_fmt(value)}")
    for cb_name, value, help in registry.callbacks():
        name = prom_name(cb_name)
        lines.append(f"# HELP {name} {help or cb_name}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_fmt(value)}")
    return "\n".join(lines) + "\n"


def write_prometheus(registry: MetricsRegistry, path: str | Path) -> Path:
    path = Path(path)
    # same courtesy as export_json: create missing parent directories
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(prometheus_text(registry), encoding="utf-8")
    return path


def export_dict(
    trace: Trace | None = None,
    registry: MetricsRegistry | None = None,
    extra: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """The combined JSON document (also the ``--trace`` file layout)."""
    doc: dict[str, Any] = {"version": 1}
    if extra:
        doc.update(extra)
    if trace is not None:
        doc["trace"] = trace.to_dict()
        doc["trace"]["total_seconds"] = trace.total_seconds
    if registry is not None:
        doc["metrics"] = registry.snapshot()
    return doc


def export_json(
    path: str | Path,
    trace: Trace | None = None,
    registry: MetricsRegistry | None = None,
    extra: Mapping[str, Any] | None = None,
) -> Path:
    path = Path(path)
    # --trace out/dir/t.json must work on a fresh checkout: create the
    # parent directories instead of crashing with FileNotFoundError.
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(export_dict(trace, registry, extra), indent=2, sort_keys=True),
        encoding="utf-8",
    )
    return path


def chrome_trace_dict(trace: Trace) -> dict[str, Any]:
    """The trace as a Chrome/Perfetto trace-event document.

    Every span becomes one complete ("X") event on a (pid, tid) lane;
    timestamps are microseconds relative to the earliest span, so the
    viewer's timeline starts at zero.  Span ids, parent links and the
    query id ride along in ``args`` for drill-down.  Metadata ("M")
    events name each process and thread lane.
    """
    spans = list(trace)
    origin = min((span.started_at for span in spans), default=0.0)
    # The trace-event format wants integer thread ids; span.thread is a
    # name, so assign stable small tids per (pid, thread name) pair.
    tids: dict[tuple[int, str], int] = {}
    events: list[dict[str, Any]] = []
    for span in spans:
        lane = (span.pid, span.thread)
        if lane not in tids:
            tids[lane] = len(tids) + 1
        args: dict[str, Any] = {
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "depth": span.depth,
        }
        if span.query_id:
            args["query_id"] = span.query_id
        args.update(span.attributes)
        events.append(
            {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "ts": (span.started_at - origin) * 1e6,
                "dur": span.duration * 1e6,
                "pid": span.pid,
                "tid": tids[lane],
                "args": args,
            }
        )
    # Perfetto sorts events itself, but a started_at ordering keeps the
    # raw JSON readable and diffs deterministic.
    events.sort(key=lambda event: (event["pid"], event["tid"], event["ts"]))
    for (pid, thread), tid in sorted(tids.items(), key=lambda item: item[1]):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": f"{PROM_PREFIX} pid {pid}"},
            }
        )
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": thread or f"thread {tid}"},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def export_chrome_trace(path: str | Path, trace: Trace) -> Path:
    """Write :func:`chrome_trace_dict` JSON (load in Perfetto/Chrome)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(chrome_trace_dict(trace), indent=2, sort_keys=True),
        encoding="utf-8",
    )
    return path


def format_summary(
    trace: Trace,
    registry: MetricsRegistry | None = None,
    title: str = "span summary",
) -> str:
    """A fixed-width per-phase table, grouped by span name."""
    wall = trace.total_seconds
    groups: dict[str, tuple[int, float]] = {}
    order: list[str] = []
    for span in trace:
        if span.name not in groups:
            groups[span.name] = (0, 0.0)
            order.append(span.name)
        count, total = groups[span.name]
        groups[span.name] = (count + 1, total + span.duration)

    headers = ["span", "count", "total ms", "mean ms", "% wall"]
    rows = []
    for name in order:
        count, total = groups[name]
        share = (100.0 * total / wall) if wall > 0 else 0.0
        rows.append(
            [
                name,
                str(count),
                f"{total * 1000:.3f}",
                f"{total * 1000 / count:.3f}",
                f"{share:5.1f}",
            ]
        )
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    lines.append(f"wall (root spans): {wall * 1000:.3f} ms")

    if registry is not None:
        lines.append("")
        lines.append("metrics")
        lines.append("-------")
        for metric in registry.metrics():
            if isinstance(metric, Histogram):
                for key in metric.keys():
                    snap = metric.snapshot_one(key)
                    labels = _labels_text(dict(key))
                    lines.append(
                        f"{metric.name}{labels}: count={snap['count']} "
                        f"sum={snap['sum']:.6f}"
                    )
            else:
                for key, value in metric.items():
                    lines.append(
                        f"{metric.name}{_labels_text(dict(key))}: {_fmt(value)}"
                    )
        for cb_name, value, _help in registry.callbacks():
            lines.append(f"{cb_name}: {_fmt(value)}")
    return "\n".join(lines)
