"""Label-inference analysis: what a group id reveals about raw labels.

Label generalization hides each raw label inside a group of >= θ
alternatives, but an adversary with *background knowledge of the global
label distribution* (often public: census data, tag popularity...) can
form a posterior over the group's members.  For a vertex published with
group ``g``, the Bayesian posterior of raw label ``l ∈ g`` is::

    P(l | g) = f(l) / Σ_{m ∈ g} f(m)

where ``f`` are the (background) label frequencies.  The *disclosure
risk* of a group is ``max_l P(l | g)``; θ only guarantees ``risk <= 1``
with equality when one member label dominates the group.  Strategies
that balance group masses (EFF does, as a side effect of minimizing
Definition 7 on correlated workloads) also reduce this risk, while
FSIM's similar-frequency groups approach the ideal ``1/θ``.

This analysis is an *extension* of the paper (which treats the θ floor
as the label-privacy guarantee); it is reported by
``benchmarks/bench_label_disclosure.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.anonymize.lct import LabelCorrespondenceTable
from repro.graph.stats import GraphStatistics


@dataclass
class LabelDisclosure:
    """Disclosure risk profile of one LCT against background knowledge."""

    per_group: dict[str, float]

    @property
    def worst(self) -> float:
        return max(self.per_group.values(), default=0.0)

    @property
    def mean(self) -> float:
        if not self.per_group:
            return 0.0
        return sum(self.per_group.values()) / len(self.per_group)


def group_posterior(
    lct: LabelCorrespondenceTable,
    gid: str,
    background: GraphStatistics,
) -> dict[str, float]:
    """Posterior over the raw labels of group ``gid``.

    ``background`` supplies the adversary's label-frequency knowledge
    (typically statistics of the original graph, or public data).
    Zero-mass groups fall back to the uniform 1/|group| posterior.
    """
    keys = lct._members[gid]
    vertex_type, attribute = keys[0][0], keys[0][1]
    masses = {
        label: background.frequency_of_label(vertex_type, attribute, label)
        for (_, _, label) in keys
    }
    total = sum(masses.values())
    if total <= 0.0:
        uniform = 1.0 / len(masses)
        return {label: uniform for label in masses}
    return {label: mass / total for label, mass in masses.items()}


def label_disclosure_risk(
    lct: LabelCorrespondenceTable,
    background: GraphStatistics,
) -> LabelDisclosure:
    """Per-group worst-case posterior (the disclosure risk profile)."""
    per_group = {
        gid: max(group_posterior(lct, gid, background).values())
        for gid in lct.group_ids()
    }
    return LabelDisclosure(per_group=per_group)


def ideal_risk(theta: int) -> float:
    """The best achievable risk for groups of exactly θ labels: 1/θ."""
    return 1.0 / theta
