"""Structural re-identification attacks (the paper's threat model).

The introduction and related work ([13, 24, 10] in the paper) describe
adversaries who know some structure around a target vertex and try to
locate it in the published graph:

* **degree attack** — the adversary knows the target's degree;
* **neighborhood attack** — the adversary knows the target's 1-hop
  neighbourhood (degrees/types of its neighbours);
* **subgraph attack** — the adversary knows an arbitrary subgraph
  around the target and finds its embeddings (the strongest attack;
  k-automorphism is designed to defeat *any* of these).

Each attack returns the *candidate set*: the published vertices
consistent with the adversary's knowledge.  The privacy guarantee is
that the candidate set always contains the target's full symmetric
group, so the adversary's success probability is at most
``1 / |candidates| <= 1/k``.

These are evaluation tools — they quantify the guarantee on real
artifacts (see ``tests/test_attacks.py`` and
``benchmarks/bench_privacy_attacks.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import VerificationError
from repro.graph.attributed import AttributedGraph
from repro.kauto.avt import AlignmentVertexTable
from repro.matching.isomorphism import iter_subgraph_matches


@dataclass
class AttackResult:
    """Outcome of one attack on one target."""

    target: int
    candidates: set[int]

    @property
    def success_probability(self) -> float:
        """The adversary's best-case probability of picking the target."""
        if not self.candidates:
            return 0.0
        if self.target not in self.candidates:
            return 0.0
        return 1.0 / len(self.candidates)


def degree_attack(published: AttributedGraph, target: int) -> AttackResult:
    """Adversary knows the target's degree (and type, which is public)."""
    degree = published.degree(target)
    vertex_type = published.vertex(target).vertex_type
    candidates = {
        v
        for v in published.vertex_ids()
        if published.degree(v) == degree
        and published.vertex(v).vertex_type == vertex_type
    }
    return AttackResult(target=target, candidates=candidates)


def _neighborhood_signature(graph: AttributedGraph, vertex: int) -> tuple:
    """Canonical 1-hop view: own degree/type + neighbour (type, degree) multiset."""
    own = (graph.vertex(vertex).vertex_type, graph.degree(vertex))
    neighbours = sorted(
        (graph.vertex(n).vertex_type, graph.degree(n))
        for n in graph.neighbors(vertex)
    )
    return (own, tuple(neighbours))


def neighborhood_attack(published: AttributedGraph, target: int) -> AttackResult:
    """Adversary knows the 1-hop neighbourhood signature of the target."""
    wanted = _neighborhood_signature(published, target)
    candidates = {
        v
        for v in published.vertex_ids()
        if _neighborhood_signature(published, v) == wanted
    }
    return AttackResult(target=target, candidates=candidates)


def subgraph_attack(
    published: AttributedGraph,
    knowledge: AttributedGraph,
    target_role: int,
    target: int,
    max_matches: int = 100_000,
) -> AttackResult:
    """Adversary knows a subgraph ``knowledge`` around the target.

    ``target_role`` is the knowledge-graph vertex corresponding to the
    target.  The candidate set is every published vertex playing that
    role in *some* embedding of the knowledge graph — the attack of
    Example 1 in the paper ("issue a subgraph query representing the
    local graph structure to find the matching position").
    """
    candidates: set[int] = set()
    for count, match in enumerate(iter_subgraph_matches(knowledge, published)):
        candidates.add(match[target_role])
        if count >= max_matches:
            break
    return AttackResult(target=target, candidates=candidates)


def hub_fingerprint_attack(
    published: AttributedGraph,
    target: int,
    hubs: list[int] | None = None,
    hub_count: int = 10,
) -> AttackResult:
    """Hub-fingerprint attack (Hay et al. [10]'s family) — a *seeded*
    attack, and a documented limit of pure structural anonymization.

    The adversary who has already re-identified a set of landmark
    vertices (``hubs``) can fingerprint every vertex by which hubs it
    touches; fingerprints are NOT invariant under the automorphic
    functions (``F_m`` moves the hubs too), so with correctly
    identified hubs this attack can beat the 1/k bound.

    k-automorphism's guarantee survives because the premise is
    unreachable: identifying any individual hub is itself a structural
    attack bounded by 1/k (each hub has k-1 perfect twins).  Pass
    ``hubs=None`` to model that honest adversary: the hub *positions*
    are then taken per degree rank with ties unresolved (all twins
    included), and the bound holds again.  Tests exercise both modes.
    """
    if hubs is None:
        # honest mode: the adversary knows only degree ranks; every
        # vertex tied on degree with a "hub" is an indistinguishable
        # hub candidate, so the fingerprint uses degree classes.
        by_degree = sorted(
            published.vertex_ids(), key=lambda v: (-published.degree(v), v)
        )[:hub_count]
        hub_degrees = {published.degree(v) for v in by_degree}
        hub_set = {
            v for v in published.vertex_ids() if published.degree(v) in hub_degrees
        }

        def fingerprint(vertex: int):
            # multiset of hub degrees adjacent to the vertex
            return tuple(
                sorted(
                    published.degree(n)
                    for n in published.neighbors(vertex)
                    if n in hub_set
                )
            )

    else:
        hub_list = list(hubs)

        def fingerprint(vertex: int):
            neighbors = published.neighbors(vertex)
            return tuple(hub in neighbors for hub in hub_list)

    wanted = fingerprint(target)
    vertex_type = published.vertex(target).vertex_type
    candidates = {
        v
        for v in published.vertex_ids()
        if published.vertex(v).vertex_type == vertex_type
        and fingerprint(v) == wanted
    }
    return AttackResult(target=target, candidates=candidates)


def friendship_attack(
    published: AttributedGraph,
    target: int,
    friend: int,
) -> AttackResult:
    """Friendship (degree-pair) attack (Tai et al. [21]).

    The adversary knows the target is connected to a friend and knows
    both degrees.  Candidates are the endpoints with the target's
    degree of every edge realizing the (deg(target), deg(friend))
    pair.
    """
    if not published.has_edge(target, friend):
        raise VerificationError(
            f"({target}, {friend}) is not an edge of the published graph"
        )
    d_target = published.degree(target)
    d_friend = published.degree(friend)
    candidates: set[int] = set()
    for u, v in published.edges():
        du, dv = published.degree(u), published.degree(v)
        if (du, dv) == (d_target, d_friend):
            candidates.add(u)
        if (dv, du) == (d_target, d_friend):
            candidates.add(v)
    return AttackResult(target=target, candidates=candidates)


def extract_knowledge(
    graph: AttributedGraph,
    target: int,
    radius: int = 1,
    with_labels: bool = False,
) -> tuple[AttributedGraph, int]:
    """Build the adversary's knowledge: the ``radius``-hop ball at ``target``.

    Labels are stripped by default (structural knowledge only).
    Returns the knowledge graph (vertex ids renumbered from 0) and the
    id playing the target's role.
    """
    ball = {target}
    frontier = {target}
    for _ in range(radius):
        frontier = {n for v in frontier for n in graph.neighbors(v)} - ball
        ball |= frontier
    renumber = {v: i for i, v in enumerate(sorted(ball))}
    knowledge = AttributedGraph(f"knowledge@{target}")
    for vid in sorted(ball):
        data = graph.vertex(vid)
        knowledge.add_vertex(
            renumber[vid],
            data.vertex_type,
            data.labels if with_labels else None,
        )
    for vid in sorted(ball):
        for nbr in graph.neighbors(vid):
            if nbr in ball and renumber[nbr] > renumber[vid]:
                knowledge.add_edge(renumber[vid], renumber[nbr])
    return knowledge, renumber[target]


def multi_release_intersection(
    published_graphs: list[AttributedGraph],
    target: int,
    attack=neighborhood_attack,
) -> AttackResult:
    """Intersection attack across multiple independent releases.

    A known hazard of re-publishing (Tai et al. [20]): if the same
    graph is anonymized twice with *independent* randomness, the
    target's symmetric twins differ between releases, so intersecting
    the per-release candidate sets can shrink the anonymity set below
    k — each release alone honors 1/k, their combination does not.

    ``repro.kauto.dynamic.DynamicRelease`` exists precisely to avoid
    this: one continuous release keeps one AVT, so every subsequent
    view presents the *same* twins and the intersection never shrinks
    (tested in ``tests/test_attacks.py::TestMultiReleaseIntersection``).
    """
    candidates: set[int] | None = None
    for published in published_graphs:
        result = attack(published, target)
        candidates = (
            set(result.candidates)
            if candidates is None
            else candidates & result.candidates
        )
    return AttackResult(target=target, candidates=candidates or set())


def verify_attack_resistance(
    published: AttributedGraph,
    avt: AlignmentVertexTable,
    targets: list[int] | None = None,
    radius: int = 1,
) -> dict[int, float]:
    """Run the subgraph attack against ``published`` for each target.

    The adversary is given the target's true ``radius``-hop ball from
    the *published* graph (the strongest consistent knowledge) and the
    resulting success probability per target is returned.  For a valid
    k-automorphic release every probability is <= 1/k.
    """
    if targets is None:
        targets = sorted(published.vertex_ids())
    probabilities: dict[int, float] = {}
    for target in targets:
        knowledge, role = extract_knowledge(published, target, radius=radius)
        result = subgraph_attack(published, knowledge, role, target)
        probabilities[target] = result.success_probability
    return probabilities
