"""Re-identification and inference attacks (evaluation tooling)."""

from repro.attacks.label_inference import (
    LabelDisclosure,
    group_posterior,
    ideal_risk,
    label_disclosure_risk,
)
from repro.attacks.structural import (
    AttackResult,
    degree_attack,
    extract_knowledge,
    friendship_attack,
    hub_fingerprint_attack,
    multi_release_intersection,
    neighborhood_attack,
    subgraph_attack,
    verify_attack_resistance,
)

__all__ = [
    "AttackResult",
    "degree_attack",
    "neighborhood_attack",
    "subgraph_attack",
    "hub_fingerprint_attack",
    "friendship_attack",
    "multi_release_intersection",
    "extract_knowledge",
    "verify_attack_resistance",
    "LabelDisclosure",
    "group_posterior",
    "label_disclosure_risk",
    "ideal_risk",
]
