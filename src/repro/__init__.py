"""repro — Privacy Preserving Subgraph Matching on Large Graphs in Cloud.

A full reproduction of Chang, Zou and Li (SIGMOD 2016).  The library
answers exact subgraph-matching queries over a sensitive attributed
graph through an honest-but-curious cloud, without revealing structure
(k-automorphism) or labels (label generalization) to the cloud.

Quickstart::

    from repro import PrivacyPreservingSystem, SystemConfig
    from repro.graph import example_social_network, example_query

    graph, schema = example_social_network()
    system = PrivacyPreservingSystem.setup(graph, schema, SystemConfig(k=2))
    outcome = system.query(example_query())
    print(outcome.matches)          # exact R(Q, G)
    print(outcome.metrics.total_seconds)

Subpackages
-----------
``repro.graph``      attributed graph model, generators, statistics
``repro.matching``   VF2-style matcher (oracle/BAS), stars, match records
``repro.kauto``      k-automorphism: partitioner, AVT, alignment, edge copy
``repro.anonymize``  LCT, grouping strategies (EFF/RAN/FSIM), cost model
``repro.outsource``  the outsourced graph ``Go``
``repro.cloud``      cloud engine: bit index, decomposition, star join
``repro.client``     client post-processing (expand + filter)
``repro.core``       owner/cloud/client orchestration + protocol
``repro.workloads``  dataset analogues and query generators
``repro.bench``      experiment harness used by ``benchmarks/``
"""

from repro.core import (
    AggregatedMetrics,
    BatchMetrics,
    BatchOutcome,
    MethodConfig,
    NetworkChannel,
    PrivacyPreservingSystem,
    PublishMetrics,
    QueryMetrics,
    QueryOptions,
    QueryOutcome,
    SystemConfig,
)
from repro.exceptions import (
    AnonymizationError,
    ConfigError,
    GatewayError,
    GatewayRejected,
    GraphError,
    PartitionError,
    ProtocolError,
    QueryError,
    ReproError,
    SchemaError,
    VerificationError,
)
from repro.graph import AttributedGraph, GraphSchema
from repro.obs import (
    MetricsRegistry,
    Observability,
    Span,
    Trace,
    Tracer,
    export_json,
    format_summary,
    prometheus_text,
)

__version__ = "1.0.0"

__all__ = [
    "PrivacyPreservingSystem",
    "SystemConfig",
    "MethodConfig",
    "QueryOptions",
    "QueryOutcome",
    "BatchOutcome",
    "NetworkChannel",
    "AttributedGraph",
    "GraphSchema",
    # observability surface
    "Observability",
    "Tracer",
    "Trace",
    "Span",
    "MetricsRegistry",
    "export_json",
    "prometheus_text",
    "format_summary",
    # metric views
    "PublishMetrics",
    "QueryMetrics",
    "BatchMetrics",
    "AggregatedMetrics",
    # errors
    "ReproError",
    "ConfigError",
    "GraphError",
    "SchemaError",
    "PartitionError",
    "AnonymizationError",
    "QueryError",
    "ProtocolError",
    "GatewayError",
    "GatewayRejected",
    "VerificationError",
    "__version__",
]
