"""Query anonymization and workload statistics.

At query time the client replaces every raw label of a query graph
``Q`` by its label group from the (private) LCT, producing the
outsourced query ``Qo`` that is safe to send to the cloud
(Section 4.2).  ``Qo`` has exactly the same vertices and edges as
``Q`` — only labels are generalized.

This module also derives the workload-average frequencies
``F^l_Savg`` (Section 5.2) from a sample of query graphs; the EFF
strategy consumes them through :class:`StrategyContext`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.anonymize.lct import LabelCorrespondenceTable
from repro.graph.attributed import AttributedGraph
from repro.graph.stats import GraphStatistics, compute_statistics, merge_statistics
from repro.graph.validation import validate_query


def anonymize_query(
    query: AttributedGraph,
    lct: LabelCorrespondenceTable,
) -> AttributedGraph:
    """Build the outsourced query ``Qo`` (labels -> label groups)."""
    validate_query(query)
    return lct.apply_to_graph(query, name=f"{query.name}-anonymized")


def workload_statistics(queries: Iterable[AttributedGraph]) -> GraphStatistics:
    """``F_Savg``-style frequency profile of a sample query workload.

    Each query contributes its own conditional frequency profile with
    equal weight, following the averaged definitions of Section 5.2
    (frequencies are averaged per query, not pooled by raw counts, so
    one big query cannot dominate the estimate).
    """
    return merge_statistics(compute_statistics(q) for q in queries)


def star_workload_statistics(
    queries: Iterable[AttributedGraph],
) -> GraphStatistics:
    """Workload statistics over the *stars* of the sample queries.

    Section 5.2 defines ``F_Savg`` over the set of possible star
    queries; decomposing each sample query into its per-vertex stars
    and averaging over those is the finite-sample version.
    """
    from repro.matching.star import star_as_graph, star_of

    parts: list[GraphStatistics] = []
    for query in queries:
        for center in query.vertex_ids():
            if query.degree(center) == 0:
                continue
            star_graph = star_as_graph(query, star_of(query, center))
            parts.append(compute_statistics(star_graph))
    return merge_statistics(parts)


def average_center_degree(queries: Sequence[AttributedGraph]) -> float:
    """``Dc(S_avg)``: mean star-center degree across the workload."""
    degrees = [
        query.degree(center)
        for query in queries
        for center in query.vertex_ids()
        if query.degree(center) > 0
    ]
    if not degrees:
        return 0.0
    return sum(degrees) / len(degrees)
