"""EFF: cost-model based label combination (Section 5.2).

The paper's heuristic: start from a random permutation, then repeatedly
try swapping two labels that live in different groups; keep a swap when
it lowers the Definition-7 cost

    cost(P) = Σ_groups (Σ_m F^l_G) (Σ_m F^l_Savg)

and stop when no swap improves (the paper observes convergence within
~10 iterations on its datasets).  Swap deltas are evaluated in O(1) by
maintaining per-group frequency masses.

Intuition for why this beats FSIM: the cost is a sum of products of
group masses; with total masses fixed, it is minimized when high
graph-frequency labels share a group with low query-frequency labels
and vice versa — exactly the pairing FSIM's "similar frequency"
grouping destroys whenever graph and query frequencies correlate.
"""

from __future__ import annotations

from typing import Sequence

from repro.anonymize.strategies import (
    StrategyContext,
    chunk_permutation,
    group_sizes,
)

DEFAULT_MAX_ROUNDS = 10


def cost_based_grouping(
    labels: Sequence[str],
    theta: int,
    context: StrategyContext,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> list[list[str]]:
    """**EFF**: iterative pairwise-swap minimization of cost(P)."""
    permutation = list(labels)
    context.rng.shuffle(permutation)
    sizes = group_sizes(len(permutation), theta)
    if len(sizes) <= 1:
        return chunk_permutation(permutation, theta)

    g_freq = context.graph_frequency
    s_freq = context.workload_frequency

    # group index of every position in the permutation
    group_of_position: list[int] = []
    for gi, size in enumerate(sizes):
        group_of_position.extend([gi] * size)

    g_mass = [0.0] * len(sizes)
    s_mass = [0.0] * len(sizes)
    for pos, label in enumerate(permutation):
        gi = group_of_position[pos]
        g_mass[gi] += g_freq.get(label, 0.0)
        s_mass[gi] += s_freq.get(label, 0.0)

    def swap_delta(pos_a: int, pos_b: int) -> float:
        ga, gb = group_of_position[pos_a], group_of_position[pos_b]
        la, lb = permutation[pos_a], permutation[pos_b]
        dga, dsa = g_freq.get(la, 0.0), s_freq.get(la, 0.0)
        dgb, dsb = g_freq.get(lb, 0.0), s_freq.get(lb, 0.0)
        before = g_mass[ga] * s_mass[ga] + g_mass[gb] * s_mass[gb]
        after = (g_mass[ga] - dga + dgb) * (s_mass[ga] - dsa + dsb) + (
            g_mass[gb] - dgb + dga
        ) * (s_mass[gb] - dsb + dsa)
        return after - before

    def apply_swap(pos_a: int, pos_b: int) -> None:
        ga, gb = group_of_position[pos_a], group_of_position[pos_b]
        la, lb = permutation[pos_a], permutation[pos_b]
        g_mass[ga] += g_freq.get(lb, 0.0) - g_freq.get(la, 0.0)
        s_mass[ga] += s_freq.get(lb, 0.0) - s_freq.get(la, 0.0)
        g_mass[gb] += g_freq.get(la, 0.0) - g_freq.get(lb, 0.0)
        s_mass[gb] += s_freq.get(la, 0.0) - s_freq.get(lb, 0.0)
        permutation[pos_a], permutation[pos_b] = lb, la

    n = len(permutation)
    epsilon = 1e-15
    for _ in range(max_rounds):
        improved = False
        for pos_a in range(n):
            for pos_b in range(pos_a + 1, n):
                if group_of_position[pos_a] == group_of_position[pos_b]:
                    continue
                if swap_delta(pos_a, pos_b) < -epsilon:
                    apply_swap(pos_a, pos_b)
                    improved = True
        if not improved:
            break
    return chunk_permutation(permutation, theta)
