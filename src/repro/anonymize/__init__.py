"""Label anonymization: LCT, grouping strategies, cost model (Section 5)."""

from repro.anonymize.cost_model import (
    StarCardinalityEstimator,
    average_star_search_space,
    estimator_from_outsourced,
    label_combination_cost,
    measure_delta_k,
)
from repro.anonymize.eff import cost_based_grouping
from repro.anonymize.lct import LabelCorrespondenceTable, group_id
from repro.anonymize.query_anonymizer import (
    anonymize_query,
    average_center_degree,
    star_workload_statistics,
    workload_statistics,
)
from repro.anonymize.strategies import (
    GroupingStrategy,
    StrategyContext,
    build_lct,
    chunk_permutation,
    frequency_similar_grouping,
    group_sizes,
    random_grouping,
)

STRATEGIES: dict[str, GroupingStrategy] = {
    "EFF": cost_based_grouping,
    "RAN": random_grouping,
    "FSIM": frequency_similar_grouping,
}
"""Named grouping strategies as compared in the paper's evaluation.

``BAS`` is not a grouping strategy: it shares EFF's grouping but
uploads the whole ``Gk`` (see :mod:`repro.core.config`).
"""

__all__ = [
    "LabelCorrespondenceTable",
    "group_id",
    "GroupingStrategy",
    "StrategyContext",
    "build_lct",
    "group_sizes",
    "chunk_permutation",
    "random_grouping",
    "frequency_similar_grouping",
    "cost_based_grouping",
    "label_combination_cost",
    "measure_delta_k",
    "average_star_search_space",
    "StarCardinalityEstimator",
    "estimator_from_outsourced",
    "anonymize_query",
    "workload_statistics",
    "star_workload_statistics",
    "average_center_degree",
    "STRATEGIES",
]
