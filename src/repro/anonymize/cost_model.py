"""The cost model of Section 5.

Two estimators live here:

* :func:`label_combination_cost` — Definition 7: the component of the
  average-case star search space (Expression 5/6) that depends on how
  raw labels are combined into groups.  Minimized by the EFF strategy.
* :class:`StarCardinalityEstimator` — Expression 4 specialized to one
  concrete star query: estimates ``|R(S)|``, the number of star matches
  over the outsourced graph.  Used by the cloud's query decomposition
  (Definition 6) and by the result-join ordering (Algorithm 2).

The estimator runs cloud-side and therefore works purely in *group*
space: the statistics it consumes come from the anonymized block ``B1``
(which, by the symmetry of ``Gk``, has the same label distribution as
``Gk`` — the observation the paper uses to justify estimating over the
first block).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.graph.attributed import AttributedGraph
from repro.graph.stats import GraphStatistics


def label_combination_cost(
    groups: Sequence[Sequence[str]],
    graph_frequency: Mapping[str, float],
    workload_frequency: Mapping[str, float],
) -> float:
    """Definition 7: ``cost(P) = Σ_groups (Σ F^l_G)(Σ F^l_Savg)``.

    ``groups`` partitions the labels of one (vertex type, attribute)
    universe; the two frequency maps give ``F^l_G(j, i)`` on the
    original graph and ``F^l_Savg(j, i)`` on the average star query.
    """
    total = 0.0
    for group in groups:
        g_mass = sum(graph_frequency.get(label, 0.0) for label in group)
        s_mass = sum(workload_frequency.get(label, 0.0) for label in group)
        total += g_mass * s_mass
    return total


def average_star_search_space(
    per_attribute_costs: Mapping[tuple[str, str], float],
    type_frequency_product: float,
    vertex_count: int,
    average_degree: float,
    average_center_degree: float,
    k: int,
) -> float:
    """Expression 5: the average-case bound on ``|R(S_avg)|``.

    ``per_attribute_costs`` are Definition-7 costs per (type, attr);
    the remaining arguments supply the structural factors
    ``|V(Gk)| * D(Gk)^{Dc}/k`` and the type-match probability.  Only
    used for reporting/ablation — the decomposition uses the concrete
    per-star estimator below.
    """
    label_term = sum(per_attribute_costs.values()) * type_frequency_product
    structural = vertex_count * (average_degree ** average_center_degree) / max(k, 1)
    return (label_term ** (average_center_degree + 1)) * structural


@dataclass
class StarCardinalityEstimator:
    """Estimate ``|R(S)|`` for a concrete star over the outsourced graph.

    Parameters
    ----------
    block_stats:
        Frequency profile of the published block ``B1`` (group space).
    gk_vertex_count:
        ``|V(Gk)| = k * |B1|``.
    average_degree:
        ``D(Gk)``: average degree of ``B1`` vertices inside ``Go``
        (every ``Gk`` edge incident to ``B1`` is present in ``Go``, so
        this equals their true ``Gk`` degree).
    k:
        The privacy parameter.
    """

    block_stats: GraphStatistics
    gk_vertex_count: int
    average_degree: float
    k: int

    def _vertex_match_probability(self, vertex) -> float:
        """P(a random Gk vertex matches query vertex ``vertex``).

        Type probability times the product of its label-group
        frequencies (independence assumption, as in the paper).
        """
        p = self.block_stats.frequency_of_type(vertex.vertex_type)
        for attr, groups in vertex.labels.items():
            for group in groups:
                p *= self.block_stats.frequency_of_label(
                    vertex.vertex_type, attr, group
                )
        return p

    def estimate(self, star_graph: AttributedGraph, center: int) -> float:
        """Expression 4 for a star rooted at ``center``.

        First factor: expected number of candidate centers inside
        ``B1`` — ``(|V(Gk)|/k) * P(center matches)``.
        Second factor: the neighbour search space —
        ``Π_leaves D(Gk) * P(leaf matches)``.
        """
        center_vertex = star_graph.vertex(center)
        candidates = (self.gk_vertex_count / self.k) * self._vertex_match_probability(
            center_vertex
        )
        neighbour_space = 1.0
        for leaf in star_graph.neighbors(center):
            leaf_vertex = star_graph.vertex(leaf)
            neighbour_space *= self.average_degree * self._vertex_match_probability(
                leaf_vertex
            )
        return candidates * neighbour_space


def measure_delta_k(
    original_stats: GraphStatistics,
    gk_stats: GraphStatistics,
    lct,
    aggregate: str = "max",
) -> float:
    """The paper's δ(k) (Section 5.1), measured on actual artifacts.

    The cost-model bound uses ``F^g_Gk(j,i) <= (1+δ(k)) · Σ_m
    F^l_G(j, p_m)``: the group frequency on the *published* graph can
    exceed the summed raw-label frequencies on the *original* graph
    only because the symmetric row-union copies groups onto (up to k-1)
    extra vertices.

    ``aggregate="max"`` is the literal constant of the paper's bound
    (worst group).  On any graph with rare groups it approaches its
    ceiling ``k-1`` — a rare group's carriers rarely coincide with
    their own twins — so the paper's empirical claim that δ(k) stays
    "far less than 1 when k is small" is better read against the
    *typical* inflation, ``aggregate="mean"``.  Groups with zero raw
    mass on the original graph are skipped (the bound is vacuous
    there).
    """
    if aggregate not in ("max", "mean"):
        raise ValueError("aggregate must be 'max' or 'mean'")
    inflations: list[float] = []
    for gid in lct.group_ids():
        keys = lct._members[gid]  # [(type, attr, label), ...]
        vertex_type, attribute = keys[0][0], keys[0][1]
        raw_mass = sum(
            original_stats.frequency_of_label(vertex_type, attribute, label)
            for (_, _, label) in keys
        )
        if raw_mass <= 0.0:
            continue
        group_mass = gk_stats.frequency_of_label(vertex_type, attribute, gid)
        inflations.append(max(0.0, group_mass / raw_mass - 1.0))
    if not inflations:
        return 0.0
    if aggregate == "max":
        return max(inflations)
    return sum(inflations) / len(inflations)


def estimator_from_outsourced(
    block_vertices: Sequence[int],
    outsourced_graph: AttributedGraph,
    k: int,
) -> StarCardinalityEstimator:
    """Build the estimator the cloud uses, from ``Go`` and ``B1``.

    Statistics are computed over the ``B1``-induced part of ``Go``
    only; degrees are taken from ``Go`` (complete for ``B1`` vertices).
    """
    from repro.graph.stats import compute_statistics

    block_graph = outsourced_graph.induced_subgraph(block_vertices, name="B1")
    stats = compute_statistics(block_graph)
    members = list(block_vertices)
    if members:
        avg_degree = sum(outsourced_graph.degree(v) for v in members) / len(members)
    else:
        avg_degree = 0.0
    return StarCardinalityEstimator(
        block_stats=stats,
        gk_vertex_count=k * len(members),
        average_degree=avg_degree,
        k=k,
    )
