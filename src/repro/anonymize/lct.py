"""Label Correspondence Table (LCT).

The LCT records how raw vertex labels are generalized into *label
groups* (Section 3, Figure 2).  Groups are formed within a single
``(vertex type, attribute)`` label universe — e.g. group ``A`` of the
running example only contains COMPANY TYPE values — and every group
holds at least ``theta`` distinct labels, the user-specified privacy
parameter.

The LCT is private: the data owner keeps it to anonymize query graphs;
the cloud only ever sees group ids.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.exceptions import AnonymizationError
from repro.graph.attributed import AttributedGraph

GroupKey = tuple[str, str, str]  # (vertex type, attribute, label)


def group_id(vertex_type: str, attribute: str, index: int) -> str:
    """Deterministic, collision-free group identifier."""
    return f"{vertex_type}.{attribute}#{index}"


class LabelCorrespondenceTable:
    """Bidirectional mapping between raw labels and label groups."""

    def __init__(self, theta: int):
        if theta < 1:
            raise AnonymizationError("theta must be >= 1")
        self.theta = theta
        self._group_of: dict[GroupKey, str] = {}
        self._members: dict[str, tuple[GroupKey, ...]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_group(
        self,
        vertex_type: str,
        attribute: str,
        labels: Iterable[str],
        gid: str | None = None,
    ) -> str:
        """Register one label group; returns its group id."""
        label_list = sorted(set(labels))
        if not label_list:
            raise AnonymizationError("a label group cannot be empty")
        if gid is None:
            gid = group_id(vertex_type, attribute, self._next_index(vertex_type, attribute))
        if gid in self._members:
            raise AnonymizationError(f"duplicate group id {gid!r}")
        keys = []
        for label in label_list:
            key = (vertex_type, attribute, label)
            if key in self._group_of:
                raise AnonymizationError(
                    f"label {label!r} of {vertex_type}.{attribute} already grouped"
                )
            self._group_of[key] = gid
            keys.append(key)
        self._members[gid] = tuple(keys)
        return gid

    def _next_index(self, vertex_type: str, attribute: str) -> int:
        prefix = f"{vertex_type}.{attribute}#"
        return sum(1 for gid in self._members if gid.startswith(prefix))

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def group_of(self, vertex_type: str, attribute: str, label: str) -> str:
        try:
            return self._group_of[(vertex_type, attribute, label)]
        except KeyError:
            raise AnonymizationError(
                f"label {label!r} of {vertex_type}.{attribute} is not in the LCT"
            ) from None

    def members(self, gid: str) -> list[str]:
        """Raw labels inside group ``gid``."""
        try:
            return [label for (_, _, label) in self._members[gid]]
        except KeyError:
            raise AnonymizationError(f"unknown group id {gid!r}") from None

    def group_ids(self) -> list[str]:
        return sorted(self._members)

    def group_count(self) -> int:
        return len(self._members)

    def groups_for(self, vertex_type: str, attribute: str) -> list[str]:
        prefix = f"{vertex_type}.{attribute}#"
        return sorted(gid for gid in self._members if gid.startswith(prefix))

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def generalize_label_map(
        self,
        vertex_type: str,
        labels: Mapping[str, frozenset[str]],
    ) -> dict[str, set[str]]:
        """Replace each raw label by its group id, per attribute."""
        generalized: dict[str, set[str]] = {}
        for attr, values in labels.items():
            generalized[attr] = {
                self.group_of(vertex_type, attr, label) for label in values
            }
        return generalized

    def apply_to_graph(self, graph: AttributedGraph, name: str = "") -> AttributedGraph:
        """A copy of ``graph`` whose labels are group ids (``G'``/``Qo``)."""
        out = AttributedGraph(name or f"{graph.name}-generalized")
        for data in graph.vertices():
            out.add_vertex(
                data.vertex_id,
                data.vertex_type,
                self.generalize_label_map(data.vertex_type, data.labels),
            )
        for u, v in graph.edges():
            out.add_edge(u, v)
        return out

    # ------------------------------------------------------------------
    # verification & serialization
    # ------------------------------------------------------------------
    def verify(self, allow_small_groups: bool = False) -> None:
        """Check the theta guarantee: every group has >= theta labels.

        ``allow_small_groups`` permits a universe smaller than theta to
        form a single undersized group (privacy is then bounded by the
        universe size, which the caller opted into).
        """
        for gid, keys in self._members.items():
            if len(keys) < self.theta and not allow_small_groups:
                raise AnonymizationError(
                    f"group {gid!r} has {len(keys)} labels, below theta={self.theta}"
                )
            pairs = {(t, a) for (t, a, _) in keys}
            if len(pairs) != 1:
                raise AnonymizationError(
                    f"group {gid!r} mixes attributes {sorted(pairs)}"
                )

    def to_dict(self) -> dict[str, Any]:
        return {
            "theta": self.theta,
            "groups": {
                gid: [list(key) for key in keys]
                for gid, keys in sorted(self._members.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LabelCorrespondenceTable":
        lct = cls(data["theta"])
        for gid, keys in data["groups"].items():
            if not keys:
                raise AnonymizationError(f"group {gid!r} is empty")
            vertex_type, attribute = keys[0][0], keys[0][1]
            lct.add_group(vertex_type, attribute, [k[2] for k in keys], gid=gid)
        return lct

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LabelCorrespondenceTable(theta={self.theta}, groups={len(self._members)})"
