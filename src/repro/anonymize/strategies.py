"""Label grouping strategies: RAN and FSIM, plus shared helpers.

A grouping strategy partitions the label universe of one
``(vertex type, attribute)`` pair into groups of at least ``theta``
labels.  The paper compares three strategies:

* **RAN** — random grouping (this module);
* **FSIM** — labels with *similar graph frequencies* grouped together
  (this module);
* **EFF** — cost-model-driven grouping (:mod:`repro.anonymize.eff`).

:func:`build_lct` assembles a full Label Correspondence Table by
running a strategy over every (type, attribute) universe of a schema.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.anonymize.lct import LabelCorrespondenceTable
from repro.exceptions import AnonymizationError
from repro.graph.schema import GraphSchema
from repro.graph.stats import GraphStatistics


@dataclass
class StrategyContext:
    """Everything a grouping strategy may consult."""

    vertex_type: str
    attribute: str
    graph_frequency: dict[str, float] = field(default_factory=dict)
    workload_frequency: dict[str, float] = field(default_factory=dict)
    rng: random.Random = field(default_factory=random.Random)


GroupingStrategy = Callable[[Sequence[str], int, StrategyContext], list[list[str]]]


def group_sizes(label_count: int, theta: int) -> list[int]:
    """Sizes of the groups a universe of ``label_count`` labels forms.

    ``h = floor(n / theta)`` groups; the remainder is spread one label
    at a time over the first groups, so every group has ``theta`` or
    ``theta + 1`` labels (all >= theta).  A universe smaller than
    ``theta`` forms a single undersized group (callers decide whether
    that is acceptable via :meth:`LabelCorrespondenceTable.verify`).
    """
    if label_count <= 0:
        raise AnonymizationError("cannot group an empty label universe")
    h = label_count // theta
    if h == 0:
        return [label_count]
    sizes = [theta] * h
    for i in range(label_count - h * theta):
        sizes[i % h] += 1
    return sizes


def chunk_permutation(permutation: Sequence[str], theta: int) -> list[list[str]]:
    """Cut a label permutation into consecutive groups of valid sizes."""
    sizes = group_sizes(len(permutation), theta)
    groups: list[list[str]] = []
    start = 0
    for size in sizes:
        groups.append(list(permutation[start : start + size]))
        start += size
    return groups


def random_grouping(
    labels: Sequence[str],
    theta: int,
    context: StrategyContext,
) -> list[list[str]]:
    """**RAN**: shuffle the universe, cut into consecutive groups."""
    permutation = list(labels)
    context.rng.shuffle(permutation)
    return chunk_permutation(permutation, theta)


def frequency_similar_grouping(
    labels: Sequence[str],
    theta: int,
    context: StrategyContext,
) -> list[list[str]]:
    """**FSIM**: group labels whose *data-graph* frequencies are close.

    Sort by frequency (descending, label as tiebreak) and cut into
    consecutive groups — adjacent labels have the most similar
    frequencies.
    """
    permutation = sorted(
        labels,
        key=lambda label: (-context.graph_frequency.get(label, 0.0), label),
    )
    return chunk_permutation(permutation, theta)


def build_lct(
    schema: GraphSchema,
    theta: int,
    strategy: GroupingStrategy,
    graph_stats: GraphStatistics | None = None,
    workload_stats: GraphStatistics | None = None,
    seed: int = 0,
    obs=None,
) -> LabelCorrespondenceTable:
    """Run ``strategy`` over every (type, attribute) universe of ``schema``.

    The label universes come from the *schema* (not just observed
    labels) so every possible query label has a group.  Frequencies of
    unobserved labels default to zero.

    ``obs`` (a :class:`repro.obs.Observability`, optional) wraps the
    construction in an ``anonymize.grouping`` span carrying the
    group/label counts; ``None`` uses the shared null tracer.
    """
    from repro.obs import names
    from repro.obs.tracing import NULL_TRACER

    tracer = obs.tracer if obs is not None else NULL_TRACER
    lct = LabelCorrespondenceTable(theta)
    rng = random.Random(seed)
    label_count = 0
    group_count = 0
    with tracer.span(names.ANON_GROUPING) as span:
        for vertex_type in schema.type_names:
            for attribute in schema.attributes_of(vertex_type):
                universe = sorted(schema.labels_of(vertex_type, attribute))
                context = StrategyContext(
                    vertex_type=vertex_type,
                    attribute=attribute,
                    graph_frequency=_frequency_map(
                        graph_stats, vertex_type, attribute, universe
                    ),
                    workload_frequency=_frequency_map(
                        workload_stats, vertex_type, attribute, universe
                    ),
                    rng=rng,
                )
                groups = strategy(universe, theta, context)
                _check_partition(universe, groups, vertex_type, attribute)
                label_count += len(universe)
                group_count += len(groups)
                for group in groups:
                    lct.add_group(vertex_type, attribute, group)
        span.set(labels=label_count, groups=group_count)
    return lct


def _frequency_map(
    stats: GraphStatistics | None,
    vertex_type: str,
    attribute: str,
    universe: Sequence[str],
) -> dict[str, float]:
    if stats is None:
        # no statistics: pretend uniform so strategies stay well defined
        uniform = 1.0 / len(universe) if universe else 0.0
        return {label: uniform for label in universe}
    return {
        label: stats.frequency_of_label(vertex_type, attribute, label)
        for label in universe
    }


def _check_partition(
    universe: Sequence[str],
    groups: list[list[str]],
    vertex_type: str,
    attribute: str,
) -> None:
    flattened = [label for group in groups for label in group]
    if sorted(flattened) != sorted(universe):
        raise AnonymizationError(
            f"strategy did not partition the universe of {vertex_type}.{attribute}"
        )
