"""Columnar match tables — the hot-path result representation.

The dict-based :data:`~repro.matching.match.Match` API is convenient at
the system boundary, but the per-query inner loops (Algorithm 1's star
matching, Algorithm 2's join, the AVT expansion, Algorithm 3's client
filter) touch millions of candidate matches per query; materializing
each one as a fresh ``dict[int, int]`` makes the per-row constant
factor — allocation, hashing, ``match_key`` re-sorting — the dominant
cost of the pipeline.

A :class:`MatchTable` stores a result set *columnar*: a fixed
``schema`` (the query vertex ids, in a canonical order) shared by every
row, plus flat tuple rows holding only the data vertex ids.  That buys

* **one schema per table** instead of one key set per match — a row is
  ``len(schema)`` machine ints, not a hash table;
* **O(1) canonical keys** — with a fixed column order the row tuple
  *is* the canonical key, so dedupe never re-sorts
  (:func:`~repro.matching.match.match_key` sorted every match);
* **positional kernels** — joins extract keys by column index, the AVT
  expansion remaps ids column-wise, and the client filter checks
  precomputed column pairs, all without dict lookups or merges;
* **structural sharing** — rows are immutable tuples, so tables can be
  sliced, cached and shipped across threads without defensive copies
  (the parallel batched engine's read-only contract holds for free).

Conversion to and from the dict form lives at the boundary
(:meth:`MatchTable.from_matches` / :meth:`MatchTable.to_matches`);
``CloudAnswer.matches``, ``QueryOutcome.matches`` and the star-cache
wire format are unchanged and bit-identical to the dict pipeline.
"""

from __future__ import annotations

from array import array
from operator import itemgetter
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.analysis.markers import hot_path
from repro.matching import vec
from repro.matching.match import Match

#: One match in tabular form: the data vertex ids, in schema order.
Row = tuple[int, ...]


def row_getter(indices: Sequence[int]) -> Callable[[Row], Row]:
    """A fast column extractor: ``getter(row) == tuple(row[i] for i in indices)``.

    Wraps :func:`operator.itemgetter`, papering over its scalar return
    for a single index and supporting the zero-column projection (which
    joins on fully shared schemas need).
    """
    if len(indices) == 1:
        index = indices[0]

        def single(row: Row) -> Row:
            return (row[index],)

        return single
    if not indices:

        def empty(row: Row) -> Row:
            return ()

        return empty
    # itemgetter already returns a tuple for two or more indices and is
    # the fastest projection primitive CPython offers (C-level).
    getter: Callable[[Row], Row] = itemgetter(*indices)
    return getter


@hot_path
def dedupe_rows(rows: Iterable[Row]) -> list[Row]:
    """Drop duplicate rows, preserving first-seen order.

    The columnar replacement for
    :func:`~repro.matching.match.dedupe_matches`: under a fixed schema
    the row tuple is already the canonical (sorted-column) key, so no
    per-match sort is ever performed.
    """
    seen: set[Row] = set()
    add = seen.add
    out: list[Row] = []
    append = out.append
    for row in rows:
        if row not in seen:
            add(row)
            append(row)
    return out


class RowInterner:
    """Share one tuple object per distinct row.

    Expansion multiplies every row ``k`` ways and different star tables
    of one workload repeat the same anchored rows; interning collapses
    the duplicates to a single object so later set operations hash each
    distinct row once and equality checks short-circuit on identity.
    """

    __slots__ = ("_pool",)

    def __init__(self) -> None:
        self._pool: dict[Row, Row] = {}

    @hot_path
    def intern(self, row: Row) -> Row:
        """The canonical shared instance of ``row``."""
        return self._pool.setdefault(row, row)

    @hot_path
    def intern_all(self, rows: Iterable[Row]) -> list[Row]:
        """Intern every row, preserving order (duplicates kept)."""
        setdefault = self._pool.setdefault
        return [setdefault(row, row) for row in rows]

    def __len__(self) -> int:
        return len(self._pool)


class MatchTable:
    """A result set ``R(·)`` in columnar form.

    ``schema`` is the tuple of query vertex ids defining the column
    order.  A table holds its matches in one of two physical layouts:

    * **tuple rows** — a list of equally wide tuples of data vertex
      ids (the reference layout every consumer understands), or
    * **flat columns** — one int64 vector per column
      (:mod:`repro.matching.vec`: ``array('q')`` or an ndarray), which
      is what the vectorized kernels produce and consume.

    The two are interchangeable: reading :attr:`rows` on a
    flat-column table materializes the tuple rows (as Python ints, so
    hashing, JSON framing and the cache codecs are bit-identical to
    the tuple pipeline) and the table stays rows-backed from then on.
    The constructor **trusts** its arguments on the hot path — rows
    must already be tuples of the schema's width (use
    :meth:`from_rows` for validated construction from untrusted data).

    Tables returned by the pipeline kernels are always freshly
    allocated and their rows are immutable, so sharing a table across
    threads (or caching it) needs no defensive copying.
    """

    __slots__ = ("schema", "_column", "_rows", "_cols", "_length")

    def __init__(
        self, schema: Iterable[int], rows: list[Row] | None = None
    ) -> None:
        self.schema: tuple[int, ...] = tuple(schema)
        if len(set(self.schema)) != len(self.schema):
            raise ValueError("duplicate query vertex in MatchTable schema")
        # the column-index map is built on first lookup: the star
        # matching kernel constructs one table per star call and many
        # of them are never probed by name
        self._column: dict[int, int] | None = None
        self._rows: list[Row] | None = rows if rows is not None else []
        self._cols: list[vec.Flat] | None = None
        self._length: int = len(self._rows) if self._rows is not None else 0

    # ------------------------------------------------------------------
    # physical layout
    # ------------------------------------------------------------------
    @property
    def rows(self) -> list[Row]:
        """The matches as tuple rows (materialized from columns lazily).

        The returned list is the table's own storage — callers that
        mutate it (the shard merge does) leave the table consistently
        rows-backed, because materialization drops the column vectors.
        """
        if self._rows is None:
            cols = self._cols
            assert cols is not None
            self._rows = vec.rows_from_columns(cols, self._length)
            self._cols = None
        return self._rows

    @rows.setter
    def rows(self, rows: list[Row]) -> None:
        self._rows = rows
        self._cols = None
        self._length = len(rows)

    def is_columnar(self) -> bool:
        """Whether the table currently holds flat column vectors."""
        return self._cols is not None

    def columns(self) -> list[vec.Flat] | None:
        """The flat column vectors, or ``None`` when rows-backed.

        The vectors are the table's storage — treat them as read-only.
        """
        return self._cols

    def as_columns(self) -> list[vec.Flat] | None:
        """Flat column vectors of this table, converting if needed.

        Rows-backed tables are converted (without caching, so a later
        ``rows.extend`` cannot go stale); ``None`` means the rows are
        not representable as int64 (untrusted decoded values) and the
        caller must stay on the tuple path.
        """
        if self._cols is not None:
            return self._cols
        rows = self._rows
        assert rows is not None
        return vec.columns_from_rows(rows, len(self.schema))

    # ------------------------------------------------------------------
    # construction / boundary adapters
    # ------------------------------------------------------------------
    @classmethod
    def from_matches(
        cls, matches: Iterable[Mapping[int, int]], schema: Iterable[int]
    ) -> "MatchTable":
        """Tabulate dict matches (each must cover every schema vertex)."""
        table = cls(schema)
        order = table.schema
        table.rows = [tuple(match[q] for q in order) for match in matches]
        return table

    @classmethod
    def from_rows(
        cls, schema: Iterable[int], rows: Iterable[Sequence[int]]
    ) -> "MatchTable":
        """Validated construction: rows are re-tupled and width-checked."""
        table = cls(schema)
        width = len(table.schema)
        out: list[Row] = []
        for row in rows:
            tup = tuple(row)
            if len(tup) != width:
                raise ValueError(
                    f"row width {len(tup)} does not match schema width {width}"
                )
            out.append(tup)
        table.rows = out
        return table

    @classmethod
    def from_columns(
        cls, schema: Iterable[int], cols: list[vec.Flat], length: int
    ) -> "MatchTable":
        """A flat-column table over per-column int64 vectors (trusted)."""
        table = cls(schema)
        if not cols:
            # width-0 tables stay rows-backed: there is no vector to
            # carry the row count, only the count itself.
            table.rows = [() for _ in range(length)]
            return table
        table._rows = None
        table._cols = cols
        table._length = length
        return table

    @classmethod
    def from_flat_rows(
        cls, schema: Iterable[int], buf: array, width: int
    ) -> "MatchTable":
        """A flat-column table from a row-major ``array('q')`` buffer."""
        if width == 0:
            return cls(tuple(schema), [])
        length, rem = divmod(len(buf), width)
        if rem:
            raise ValueError("row-major buffer length not a multiple of width")
        return cls.from_columns(
            schema, vec.columns_from_flat_rows(buf, width), length
        )

    @hot_path
    def to_matches(self) -> list[Match]:
        """The boundary adapter back to dict-form matches."""
        schema = self.schema
        return [dict(zip(schema, row)) for row in self.rows]

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    def _column_map(self) -> dict[int, int]:
        column = self._column
        if column is None:
            column = self._column = {
                q: i for i, q in enumerate(self.schema)
            }
        return column

    def column_of(self, q: int) -> int:
        """Column index of query vertex ``q`` (raises ``KeyError``)."""
        return self._column_map()[q]

    def has_column(self, q: int) -> bool:
        return q in self._column_map()

    def __len__(self) -> int:
        rows = self._rows
        if rows is not None:
            return len(rows)
        return self._length

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MatchTable):
            return NotImplemented
        return self.schema == other.schema and self.rows == other.rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MatchTable(schema={self.schema}, rows={len(self)})"

    # ------------------------------------------------------------------
    # columnar kernels
    # ------------------------------------------------------------------
    @hot_path
    def project_rows(self, order: Sequence[int]) -> list[Row]:
        """Rows with columns re-ordered to ``order`` (a schema subset)."""
        if tuple(order) == self.schema:
            return list(self.rows)
        column = self._column_map()
        indices = [column[q] for q in order]
        cols = self._cols
        if cols is not None:
            return vec.rows_from_columns(
                [cols[i] for i in indices], self._length
            )
        getter = row_getter(indices)
        return [getter(row) for row in self.rows]

    def projected(self, order: Sequence[int]) -> "MatchTable":
        """A new table over the same matches with columns in ``order``."""
        order_t = tuple(order)
        cols = self._cols
        if cols is not None:
            column = self._column_map()
            return MatchTable.from_columns(
                order_t, [cols[column[q]] for q in order_t], self._length
            )
        return MatchTable(order_t, self.project_rows(order_t))

    def deduped(self) -> "MatchTable":
        """A new table with duplicate rows dropped (first-seen order)."""
        cols = self._cols
        if cols is not None and vec.vectorize(self._length):
            nd_cols = [vec.as_ndarray(col) for col in cols]
            keep = vec.first_seen_row_indices(nd_cols)
            return MatchTable.from_columns(
                self.schema, [col[keep] for col in nd_cols], len(keep)
            )
        return MatchTable(self.schema, dedupe_rows(self.rows))

    def interned(self, interner: RowInterner) -> "MatchTable":
        """A new table whose rows are shared through ``interner``."""
        return MatchTable(self.schema, interner.intern_all(self.rows))
