"""Match records for subgraph matching.

A *match* maps every query vertex id to a distinct data vertex id
(Definition 2's injective function ``g``).  Matches are passed around
as plain ``dict[int, int]`` for speed; this module provides the small
amount of shared logic: canonical keys for deduplication, application
of vertex-id mappings (the automorphic functions ``F_m``), and
serialization for the client/cloud protocol.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

Match = dict[int, int]


def match_key(match: Mapping[int, int]) -> tuple[tuple[int, int], ...]:
    """Canonical hashable key of a match (sorted by query vertex)."""
    return tuple(sorted(match.items()))


def dedupe_matches(matches: Iterable[Match]) -> list[Match]:
    """Drop duplicate matches, preserving first-seen order."""
    seen: set[tuple[tuple[int, int], ...]] = set()
    result: list[Match] = []
    for match in matches:
        key = match_key(match)
        if key not in seen:
            seen.add(key)
            result.append(match)
    return result


def is_injective(match: Mapping[int, int]) -> bool:
    """True if no two query vertices map to the same data vertex."""
    return len(set(match.values())) == len(match)


def apply_mapping(match: Mapping[int, int], mapping: Callable[[int], int]) -> Match:
    """Apply a vertex-id mapping (e.g. an automorphic function) to a match."""
    return {q: mapping(v) for q, v in match.items()}


def matches_to_rows(matches: Iterable[Match], query_order: list[int]) -> list[list[int]]:
    """Tabular form: one row per match, columns in ``query_order``.

    This is the wire format for result sets (compact and measurable in
    bytes for the communication experiments).
    """
    return [[match[q] for q in query_order] for match in matches]


def rows_to_matches(rows: Iterable[Iterable[int]], query_order: list[int]) -> list[Match]:
    """Inverse of :func:`matches_to_rows`."""
    return [dict(zip(query_order, row)) for row in rows]
