"""Bitset-accelerated subgraph matching.

A drop-in alternative to :mod:`repro.matching.isomorphism` that
precomputes, per data graph,

* a dense vertex ordering,
* one adjacency bitmask per vertex (Python ints as arbitrary-width
  bitsets), and
* per-query-vertex *compatibility masks* (type + label containment +
  degree), computed once per query,

so the inner candidate step of the backtracking search becomes a few
bitwise ANDs instead of set intersections and per-vertex label checks.
On the evaluation graphs this is typically 2-5x faster than the
reference matcher; results are identical
(``tests/test_matching_bitset.py`` cross-checks, including a hypothesis
equivalence property).

Use :class:`BitsetMatcher` when many queries hit the same data graph
(the precomputation is per graph); for one-off matching the module
function :func:`find_subgraph_matches_bitset` wraps it.
"""

from __future__ import annotations

import threading

from repro.exceptions import QueryError
from repro.graph.attributed import AttributedGraph
from repro.matching.match import Match


class BitsetMatcher:
    """Reusable bitset index over one data graph."""

    def __init__(self, data: AttributedGraph) -> None:
        self.data = data
        self._order: list[int] = sorted(data.vertex_ids())
        self._position: dict[int, int] = {
            vid: i for i, vid in enumerate(self._order)
        }
        self._adjacency: list[int] = []
        for vid in self._order:
            mask = 0
            for nbr in data.neighbors(vid):
                mask |= 1 << self._position[nbr]
            self._adjacency.append(mask)
        self._degrees: list[int] = [data.degree(vid) for vid in self._order]
        # VBV-style masks built once per graph: per type and per
        # (attribute, label); query compatibility is then a few ANDs.
        self._type_masks: dict[str, int] = {}
        self._label_masks: dict[tuple[str, str], int] = {}
        for position, vid in enumerate(self._order):
            bit = 1 << position
            vertex = data.vertex(vid)
            self._type_masks[vertex.vertex_type] = (
                self._type_masks.get(vertex.vertex_type, 0) | bit
            )
            for attr, label in vertex.label_items():
                key = (attr, label)
                self._label_masks[key] = self._label_masks.get(key, 0) | bit
        # lazily filled per-degree masks: the only mutable state after
        # construction.  A matcher may be shared by the parallel batched
        # engine's star workers (whose contract is "shared structures
        # are read-only or internally locked"), so the memo is guarded.
        self._degree_masks: dict[int, int] = {}  #: guarded by _lock
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # per-query precomputation
    # ------------------------------------------------------------------
    def _degree_mask(self, minimum: int) -> int:
        """Bitmask of data vertices with degree >= ``minimum`` (cached).

        Thread-safe: the memo is read and filled under ``_lock`` (R3),
        so concurrent queries on a shared matcher never race the lazy
        build.  ``_degrees`` is immutable after construction, making it
        safe to compute while holding the lock.
        """
        if minimum <= 0:
            return (1 << len(self._order)) - 1
        with self._lock:
            mask = self._degree_masks.get(minimum)
            if mask is None:
                mask = 0
                for position, degree in enumerate(self._degrees):
                    if degree >= minimum:
                        mask |= 1 << position
                self._degree_masks[minimum] = mask
            return mask

    def _compatibility_mask(self, query: AttributedGraph, q: int) -> int:
        """Bitmask of data vertices that query vertex ``q`` may map to."""
        query_vertex = query.vertex(q)
        mask = self._type_masks.get(query_vertex.vertex_type, 0)
        if not mask:
            return 0
        for attr, label in query_vertex.label_items():
            mask &= self._label_masks.get((attr, label), 0)
            if not mask:
                return 0
        return mask & self._degree_mask(query.degree(q))

    @staticmethod
    def _search_order(query: AttributedGraph) -> list[int]:
        """Most-constrained-first ordering, extending along edges."""
        remaining = set(query.vertex_ids())
        if not remaining:
            raise QueryError("query graph is empty")

        def weight(q: int) -> tuple[int, int]:
            data_q = query.vertex(q)
            return (
                sum(len(v) for v in data_q.labels.values()),
                query.degree(q),
            )

        order = [max(remaining, key=weight)]
        remaining.discard(order[0])
        while remaining:
            frontier = {
                v for u in order for v in query.neighbors(u)
            } & remaining
            pool = frontier or remaining
            nxt = max(pool, key=weight)
            order.append(nxt)
            remaining.discard(nxt)
        return order

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------
    def find_matches(
        self,
        query: AttributedGraph,
        limit: int | None = None,
    ) -> list[Match]:
        """All subgraph matches of ``query`` (optionally capped)."""
        order = self._search_order(query)
        compatibility = {q: self._compatibility_mask(query, q) for q in order}
        if any(compatibility[q] == 0 for q in order):
            return []
        position_of = {q: i for i, q in enumerate(order)}
        placed_neighbors: list[list[int]] = [
            [n for n in query.neighbors(q) if position_of[n] < i]
            for i, q in enumerate(order)
        ]

        adjacency = self._adjacency
        vertices = self._order
        results: list[Match] = []
        assignment: list[int] = [0] * len(order)  # data positions
        used_mask = 0

        def backtrack(depth: int) -> bool:
            nonlocal used_mask
            if depth == len(order):
                results.append(
                    {
                        order[i]: vertices[assignment[i]]
                        for i in range(len(order))
                    }
                )
                return limit is not None and len(results) >= limit
            candidates = compatibility[order[depth]] & ~used_mask
            for anchor in placed_neighbors[depth]:
                candidates &= adjacency[assignment[position_of[anchor]]]
                if not candidates:
                    return False
            while candidates:
                low = candidates & -candidates
                candidates ^= low
                position = low.bit_length() - 1
                assignment[depth] = position
                used_mask |= low
                stop = backtrack(depth + 1)
                used_mask ^= low
                if stop:
                    return True
            return False

        backtrack(0)
        return results

    def count_matches(self, query: AttributedGraph) -> int:
        return len(self.find_matches(query))


def find_subgraph_matches_bitset(
    query: AttributedGraph,
    data: AttributedGraph,
    limit: int | None = None,
) -> list[Match]:
    """One-shot convenience wrapper around :class:`BitsetMatcher`."""
    return BitsetMatcher(data).find_matches(query, limit=limit)
