"""Subgraph matching substrate: VF2-style matcher, stars, match records."""

from repro.matching import vec
from repro.matching.bitset import BitsetMatcher, find_subgraph_matches_bitset
from repro.matching.isomorphism import (
    are_isomorphic,
    count_matches,
    find_subgraph_matches,
    has_subgraph_match,
    iter_subgraph_matches,
)
from repro.matching.match import (
    Match,
    apply_mapping,
    dedupe_matches,
    is_injective,
    match_key,
    matches_to_rows,
    rows_to_matches,
)
from repro.matching.star import Decomposition, Star, star_as_graph, star_of
from repro.matching.table import (
    MatchTable,
    Row,
    RowInterner,
    dedupe_rows,
    row_getter,
)

__all__ = [
    "Match",
    "match_key",
    "dedupe_matches",
    "is_injective",
    "apply_mapping",
    "matches_to_rows",
    "rows_to_matches",
    "MatchTable",
    "Row",
    "RowInterner",
    "dedupe_rows",
    "row_getter",
    "iter_subgraph_matches",
    "find_subgraph_matches",
    "BitsetMatcher",
    "find_subgraph_matches_bitset",
    "has_subgraph_match",
    "count_matches",
    "are_isomorphic",
    "Star",
    "star_of",
    "star_as_graph",
    "Decomposition",
    "vec",
]
