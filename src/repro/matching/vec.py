"""The vector backend shim: flat int64 columns, with or without numpy.

Every vectorized kernel in the pipeline (AVT LUT gathers, the columnar
hash join, the client filter's bulk membership tests, CSR candidate
intersection) reaches numpy through **this module only**.  That buys a
single point of policy:

* **numpy is optional.**  If it is not installed — or disabled via the
  ``REPRO_NO_NUMPY`` environment variable — :data:`np` is ``None`` and
  :func:`vectorize` never answers ``True``, so every kernel falls back
  to its tuple-row reference implementation.  Results are bit-identical
  either way; only the constant factor changes.
* **Storage degrades separately from kernels.**  Without numpy,
  :class:`~repro.matching.table.MatchTable` still stores flat
  ``array('q')`` columns (8 bytes per value, no per-row tuple or boxed
  int objects); the kernels simply materialize tuple rows lazily at
  the point a hash-based operation needs them.
* **Tests pin the arm.**  :func:`override` forces one of the three
  representations — ``"rows"`` (tuple kernels), ``"flat"``
  (``array('q')`` storage, tuple kernels), ``"numpy"`` (vector
  kernels) — so the equivalence suite can run the same workload
  through every arm and compare bytes.

The auto mode applies vector kernels only from
:data:`MIN_VECTOR_ROWS` rows upward: below that the numpy call
overhead exceeds the per-row savings and the tuple kernels win (the
selective-workload benchmark cell is exactly this regime).
"""

from __future__ import annotations

import os
from array import array
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence

from repro.analysis.markers import hot_path

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.matching.table import Row

#: A flat int64 vector: ``array('q')`` or a 1-D int64 ``ndarray``.
Flat = Any

np: Any = None
if os.environ.get("REPRO_NO_NUMPY", "").strip() not in ("", "0"):
    np = None
else:
    try:  # pragma: no cover - exercised by the no-numpy CI leg
        import numpy as _numpy
    except Exception:  # pragma: no cover - exercised by the no-numpy CI leg
        np = None
    else:
        np = _numpy

#: True when the numpy backend is importable and not disabled by env.
HAVE_NUMPY: bool = np is not None

#: Below this many rows the tuple kernels win on constant factor; the
#: auto mode keeps them (``override`` can force either way).
MIN_VECTOR_ROWS = 64

#: Dense LUTs (id -> value arrays) are only built while ``max_id`` stays
#: under this bound; sparser id spaces fall back to dict lookups.
DENSE_LUT_LIMIT = 1 << 22

#: Vertex ids must fit a packed ``(u, v)`` 63-bit edge/join key.
PACKED_ID_LIMIT = 1 << 31

_MODES = ("auto", "numpy", "flat", "rows")
_mode = "auto"


def mode() -> str:
    """The active representation mode (``auto`` unless overridden)."""
    return _mode


def backend() -> str:
    """The active storage backend: ``"numpy"`` or ``"flat"``."""
    if _mode == "flat" or _mode == "rows":
        return "flat"
    return "numpy" if HAVE_NUMPY else "flat"


def rows_only() -> bool:
    """True when the override pins the tuple-row reference arm."""
    return _mode == "rows"


def vectorize(n_rows: int) -> bool:
    """Whether the numpy kernels should run for an ``n_rows`` input.

    ``True`` only when numpy is importable *and* the mode allows it:
    always under ``override("numpy")``, never under ``"flat"``/
    ``"rows"``, and from :data:`MIN_VECTOR_ROWS` rows upward in auto
    mode (below that the tuple kernels win on constant factor).
    """
    if not HAVE_NUMPY:
        return False
    if _mode == "numpy":
        return True
    if _mode != "auto":
        return False
    return n_rows >= MIN_VECTOR_ROWS


@contextmanager
def override(new_mode: str) -> Iterator[None]:
    """Pin the representation arm (tests and the A/B benchmark).

    ``"rows"`` disables flat storage and vector kernels entirely,
    ``"flat"`` forces ``array('q')`` storage with tuple kernels, and
    ``"numpy"`` forces the vector kernels regardless of input size
    (raises if numpy is unavailable).  Process-global — meant for
    single-threaded test/bench scopes, not the serving path (which
    runs ``auto``).
    """
    global _mode
    if new_mode not in _MODES:
        raise ValueError(f"unknown vec mode {new_mode!r}")
    if new_mode == "numpy" and not HAVE_NUMPY:
        raise RuntimeError("numpy backend requested but numpy is unavailable")
    previous = _mode
    _mode = new_mode
    try:
        yield
    finally:
        _mode = previous


# ----------------------------------------------------------------------
# flat construction / conversion
# ----------------------------------------------------------------------
def flat_of(values: Iterable[int]) -> Flat:
    """A flat vector of ``values`` in the active storage backend."""
    if backend() == "numpy":
        return np.fromiter(values, dtype=np.int64)
    return array("q", values)


def as_ndarray(flat: Flat) -> Any:
    """``flat`` as an int64 ndarray (zero-copy for both storages)."""
    if isinstance(flat, array):
        if len(flat) == 0:
            return np.empty(0, dtype=np.int64)
        return np.frombuffer(flat, dtype=np.int64)
    return flat


def entry_count(flat: Flat) -> int:
    return len(flat)


def ints(flat: Flat) -> list[int]:
    """``flat`` as a list of Python ints (numpy scalars unboxed)."""
    if isinstance(flat, array):
        return flat.tolist()
    return flat.tolist()


@hot_path
def columns_from_rows(rows: Sequence["Row"], width: int) -> list[Flat] | None:
    """Flat per-column vectors of ``rows``, or ``None`` if unrepresentable.

    ``None`` signals a value outside int64 (possible on decoded,
    untrusted tables) — the caller stays on the tuple-row path.
    """
    try:
        if backend() == "numpy":
            if not rows:
                return [np.empty(0, dtype=np.int64) for _ in range(width)]
            mat = np.array(rows, dtype=np.int64)
            if mat.ndim != 2 or mat.shape[1] != width:
                return None
            return [np.ascontiguousarray(mat[:, i]) for i in range(width)]
        cols = [array("q", (row[i] for row in rows)) for i in range(width)]
        return cols
    except (OverflowError, TypeError, ValueError):
        return None


@hot_path
def columns_from_flat_rows(buf: array, width: int) -> list[Flat]:
    """Split a row-major ``array('q')`` emission buffer into columns."""
    if backend() == "numpy":
        mat = as_ndarray(buf)
        return [np.ascontiguousarray(mat[i::width]) for i in range(width)]
    return [buf[i::width] for i in range(width)]


@hot_path
def rows_from_columns(cols: Sequence[Flat], length: int) -> list["Row"]:
    """Materialize tuple rows from flat columns (the boundary adapter).

    Values come out as Python ints whatever the storage — the wire
    codecs and dict adapters downstream require JSON-serializable
    (and hash-compatible) ints.
    """
    if not cols:
        return [() for _ in range(length)]
    return list(zip(*(ints(col) for col in cols)))


# ----------------------------------------------------------------------
# bulk primitives (numpy arm)
# ----------------------------------------------------------------------
@hot_path
def first_seen_row_indices(cols: Sequence[Any]) -> Any:
    """Indices of the first occurrence of each distinct row, in order.

    numpy-only: ``cols`` are equally long int64 arrays describing rows
    column-wise; the result indexes rows exactly as the tuple-based
    ``dedupe_rows`` keeps them (first-seen order).

    When every value is a non-negative id small enough to pack all
    columns into one 63-bit key, the dedupe is a single stable argsort
    of that int64 key (an order of magnitude faster than sorting rows
    lexicographically); otherwise a stable ``lexsort`` over the raw
    columns does the same job for arbitrary values.
    """
    width = len(cols)
    n = len(cols[0]) if width else 0
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if width == 1:
        order = np.argsort(cols[0], kind="stable")
        sorted_cols = [cols[0][order]]
    else:
        order = None
        low = min(int(col.min()) for col in cols)
        if low >= 0:
            stride = max(int(col.max()) for col in cols) + 1
            if stride**width < 1 << 63:
                key = cols[0]
                for col in cols[1:]:
                    key = key * stride + col
                order = np.argsort(key, kind="stable")
                sorted_cols = [key[order]]
        if order is None:
            # lexsort keys run least-significant first and the sort is
            # stable, so equal rows keep their original order
            order = np.lexsort(cols[::-1])
            sorted_cols = [col[order] for col in cols]
    is_first = np.empty(n, dtype=bool)
    is_first[0] = True
    changed = sorted_cols[0][1:] != sorted_cols[0][:-1]
    for col in sorted_cols[1:]:
        changed |= col[1:] != col[:-1]
    is_first[1:] = changed
    # within an equal-run the stable sort keeps original order, so the
    # run's head is the earliest occurrence; re-sorting the heads
    # restores first-seen order
    first = order[is_first]
    first.sort()
    return first


@hot_path
def dense_lut(pairs: Iterable[tuple[int, int]], size: int, default: int) -> Any:
    """A dense int64 ``id -> value`` array (numpy-only)."""
    lut = np.full(size, default, dtype=np.int64)
    for key, value in pairs:
        lut[key] = value
    return lut


@hot_path
def membership_flags(ids: Iterable[int], size: int) -> Any:
    """A dense boolean ``id -> present`` array (numpy-only)."""
    flags = np.zeros(size, dtype=bool)
    for vid in ids:
        flags[vid] = True
    return flags


@hot_path
def bounded_lookup(lut: Any, col: Any, default: int) -> Any:
    """``lut[col]`` with out-of-range ids mapped to ``default``.

    Negative and past-the-end ids (noise vertices, malicious rows)
    never index the LUT — they produce ``default``, exactly like a
    failed dict lookup on the tuple path.
    """
    valid = (col >= 0) & (col < len(lut))
    out = lut[np.where(valid, col, 0)]
    return np.where(valid, out, default)


@hot_path
def bounded_flags(flags: Any, col: Any) -> Any:
    """``flags[col]`` with out-of-range ids reading ``False``."""
    valid = (col >= 0) & (col < len(flags))
    return valid & flags[np.where(valid, col, 0)]


@hot_path
def isin_sorted(values: Any, sorted_unique: Any) -> Any:
    """Boolean mask: which ``values`` occur in ``sorted_unique``."""
    if len(sorted_unique) == 0:
        return np.zeros(len(values), dtype=bool)
    pos = np.searchsorted(sorted_unique, values)
    pos_clipped = np.minimum(pos, len(sorted_unique) - 1)
    return sorted_unique[pos_clipped] == values


@hot_path
def intersect_sorted(a: Any, b: Any) -> Any:
    """Intersection of two sorted unique id arrays, sorted (numpy-only)."""
    if len(a) > len(b):
        a, b = b, a
    return a[isin_sorted(a, b)]


@hot_path
def distinct_within_rows(cols: Sequence[Any]) -> Any:
    """Per-row flag: all column values pairwise distinct (numpy-only)."""
    width = len(cols)
    n = len(cols[0]) if cols else 0
    if width <= 1:
        return np.ones(n, dtype=bool)
    mat = np.sort(np.column_stack(cols), axis=1)
    return np.all(mat[:, 1:] != mat[:, :-1], axis=1)
