"""VF2-style subgraph isomorphism for attributed graphs.

This is the library's reference matcher.  It serves three roles:

* the *correctness oracle*: ``R(Q, G)`` computed directly on the
  original graph, against which the whole privacy-preserving pipeline
  is validated;
* the engine behind the **BAS** baseline, which matches the anonymized
  query ``Qo`` over the full ``Gk`` in the cloud;
* a building block for tests (block isomorphism checks, etc.).

The algorithm is a standard backtracking search in VF2 style:

1. order query vertices so each one (after the first) is adjacent to an
   already-placed vertex, starting from the most selective vertex;
2. candidates for the next query vertex are the data neighbours of an
   already-matched neighbour, filtered by type/label containment,
   degree, and injectivity;
3. adjacency between the new pair and all previously placed pairs is
   verified before descending.

Label semantics follow Definition 2: a query vertex matches a data
vertex when types are equal and every query label set is contained in
the data vertex's label set for the same attribute.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.exceptions import QueryError
from repro.graph.attributed import AttributedGraph, VertexData
from repro.matching.match import Match

CandidateFilter = Callable[[int, int], bool]


def _selectivity_order(query: AttributedGraph, data: AttributedGraph) -> list[int]:
    """Order query vertices: most-constrained first, then by adjacency.

    The first vertex is the one with the most labels and the highest
    degree (cheap proxy for selectivity).  Every subsequent vertex is
    chosen among those adjacent to the already-ordered prefix, again
    preferring constrained vertices, so the search can always extend
    along an edge.
    """
    remaining = set(query.vertex_ids())
    if not remaining:
        return []

    def weight(q: int) -> tuple[int, int]:
        data_q = query.vertex(q)
        label_count = sum(len(v) for v in data_q.labels.values())
        return (label_count, query.degree(q))

    order = [max(remaining, key=weight)]
    remaining.discard(order[0])
    while remaining:
        frontier = {v for u in order for v in query.neighbors(u)} & remaining
        if not frontier:
            # Disconnected query: start a fresh component.  The matcher
            # handles this correctly (the new vertex simply has no
            # placed anchors); API-level query validation separately
            # rejects disconnected *user* queries.
            frontier = remaining
        nxt = max(frontier, key=weight)
        order.append(nxt)
        remaining.discard(nxt)
    return order


def _initial_candidates(
    query_vertex: VertexData,
    query_degree: int,
    data: AttributedGraph,
) -> Iterator[int]:
    for candidate in data.vertices():
        if candidate.vertex_type != query_vertex.vertex_type:
            continue
        if data.degree(candidate.vertex_id) < query_degree:
            continue
        if query_vertex.matches(candidate):
            yield candidate.vertex_id


def iter_subgraph_matches(
    query: AttributedGraph,
    data: AttributedGraph,
    candidate_filter: CandidateFilter | None = None,
) -> Iterator[Match]:
    """Yield every subgraph match of ``query`` in ``data``.

    ``candidate_filter(query_vertex, data_vertex)`` can veto pairs
    (used e.g. to anchor a query vertex inside block ``B1``).
    """
    if query.vertex_count == 0:
        raise QueryError("query graph is empty")
    order = _selectivity_order(query, data)
    # For each query vertex after the first, remember the already-placed
    # neighbours so candidates can be drawn from data adjacency.
    placed_neighbors: list[list[int]] = []
    position = {q: i for i, q in enumerate(order)}
    for i, q in enumerate(order):
        placed = [n for n in query.neighbors(q) if position[n] < i]
        placed_neighbors.append(placed)

    assignment: Match = {}
    used: set[int] = set()

    def candidates_for(i: int) -> Iterator[int]:
        q = order[i]
        query_vertex = query.vertex(q)
        q_degree = query.degree(q)
        anchors = placed_neighbors[i]
        if not anchors:
            pool: Iterator[int] = _initial_candidates(query_vertex, q_degree, data)
        else:
            # Intersect data neighbourhoods of all placed query neighbours,
            # starting from the smallest one.
            neighbor_sets = sorted(
                (data.neighbors(assignment[a]) for a in anchors), key=len
            )
            common = set(neighbor_sets[0])
            for other in neighbor_sets[1:]:
                common &= other
                if not common:
                    break
            pool = iter(sorted(common))
        for v in pool:
            if v in used:
                continue
            if data.degree(v) < q_degree:
                continue
            if not query_vertex.matches(data.vertex(v)):
                continue
            yield v

    def backtrack(i: int) -> Iterator[Match]:
        if i == len(order):
            yield dict(assignment)
            return
        q = order[i]
        for v in candidates_for(i):
            if candidate_filter is not None and not candidate_filter(q, v):
                continue
            assignment[q] = v
            used.add(v)
            yield from backtrack(i + 1)
            used.discard(v)
            del assignment[q]

    yield from backtrack(0)


def find_subgraph_matches(
    query: AttributedGraph,
    data: AttributedGraph,
    limit: int | None = None,
    candidate_filter: CandidateFilter | None = None,
) -> list[Match]:
    """All subgraph matches ``R(query, data)`` (optionally capped)."""
    result: list[Match] = []
    for match in iter_subgraph_matches(query, data, candidate_filter):
        result.append(match)
        if limit is not None and len(result) >= limit:
            break
    return result


def has_subgraph_match(query: AttributedGraph, data: AttributedGraph) -> bool:
    """True if at least one match exists (early exit)."""
    for _ in iter_subgraph_matches(query, data):
        return True
    return False


def are_isomorphic(a: AttributedGraph, b: AttributedGraph) -> bool:
    """Exact (not sub-) isomorphism test between two attributed graphs.

    Used by the k-automorphism verifier to check that blocks of ``Gk``
    are pairwise isomorphic.  Cheap invariants are compared first.
    """
    if a.vertex_count != b.vertex_count or a.edge_count != b.edge_count:
        return False
    if a.vertex_count == 0:
        return True
    degrees_a = sorted(a.degree(v) for v in a.vertex_ids())
    degrees_b = sorted(b.degree(v) for v in b.vertex_ids())
    if degrees_a != degrees_b:
        return False
    # Fast component-signature filter before the exponential search.
    comps_a = sorted(
        (len(c), a.induced_subgraph(c).edge_count) for c in a.connected_components()
    )
    comps_b = sorted(
        (len(c), b.induced_subgraph(c).edge_count) for c in b.connected_components()
    )
    if comps_a != comps_b:
        return False
    # A subgraph embedding of a into b with |V(a)| = |V(b)| and
    # |E(a)| = |E(b)| is surjective on vertices and cannot leave any
    # b-edge uncovered, hence it is a full isomorphism.
    return has_subgraph_match(a, b)


def count_matches(query: AttributedGraph, data: AttributedGraph) -> int:
    """Number of matches without materializing the list."""
    return sum(1 for _ in iter_subgraph_matches(query, data))
