"""Star graphs — the decomposition unit of the cloud query engine.

A *star* of a query graph ``Qo`` is a root (center) vertex together
with all of its adjacent edges and neighbour vertices in ``Qo``
(Section 4.2.1).  A query decomposition is a set of stars whose roots
form a vertex cover of ``Qo``, so every query edge lies in at least one
star.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import QueryError
from repro.graph.attributed import AttributedGraph


@dataclass(frozen=True)
class Star:
    """One star of a query decomposition.

    ``center`` and ``leaves`` are query-graph vertex ids; ``leaves`` is
    sorted for determinism.  ``vertex_order`` (center first) defines
    the column layout of tabular match results for this star.
    """

    center: int
    leaves: tuple[int, ...]

    @property
    def vertex_order(self) -> list[int]:
        return [self.center, *self.leaves]

    @property
    def vertex_set(self) -> frozenset[int]:
        return frozenset(self.vertex_order)

    @property
    def edge_set(self) -> frozenset[tuple[int, int]]:
        return frozenset(
            (min(self.center, leaf), max(self.center, leaf)) for leaf in self.leaves
        )

    def overlaps(self, covered: set[int] | frozenset[int]) -> bool:
        """True if this star shares at least one vertex with ``covered``."""
        return bool(self.vertex_set & covered)


def star_of(query: AttributedGraph, center: int) -> Star:
    """The star of ``query`` rooted at ``center`` (all adjacent edges)."""
    if center not in query:
        raise QueryError(f"query has no vertex {center}")
    return Star(center=center, leaves=tuple(sorted(query.neighbors(center))))


def star_as_graph(query: AttributedGraph, star: Star) -> AttributedGraph:
    """Materialize a star as an attributed (query) graph.

    Only edges incident to the center are included — leaf-to-leaf edges
    of ``query`` belong to other stars of the decomposition.
    """
    graph = AttributedGraph(f"star@{star.center}")
    center_data = query.vertex(star.center)
    graph.add_vertex(star.center, center_data.vertex_type, center_data.labels)
    for leaf in star.leaves:
        leaf_data = query.vertex(leaf)
        graph.add_vertex(leaf, leaf_data.vertex_type, leaf_data.labels)
        graph.add_edge(star.center, leaf)
    return graph


@dataclass
class Decomposition:
    """A query decomposition: stars plus their estimated result sizes."""

    stars: list[Star]
    estimated_sizes: dict[int, float] = field(default_factory=dict)

    def covered_edges(self) -> set[tuple[int, int]]:
        covered: set[tuple[int, int]] = set()
        for star in self.stars:
            covered |= star.edge_set
        return covered

    def covers(self, query: AttributedGraph) -> bool:
        """True if every edge of ``query`` lies in at least one star."""
        return query.edge_set() <= self.covered_edges()

    def total_estimated_cost(self) -> float:
        """Definition 6: sum of estimated |R(S_i)| over selected stars."""
        return sum(self.estimated_sizes.get(s.center, 0.0) for s in self.stars)
