"""Benchmark harness utilities (used by the ``benchmarks/`` suite)."""

from repro.bench.reporting import (
    format_series,
    format_table,
    ms,
    print_report,
)
from repro.bench.runner import (
    ExperimentContext,
    bench_query_count,
    bench_scale,
)

__all__ = [
    "ExperimentContext",
    "bench_scale",
    "bench_query_count",
    "format_table",
    "format_series",
    "ms",
    "print_report",
]
