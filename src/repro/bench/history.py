"""Benchmark result persistence and regression comparison.

`scripts/run_evaluation.py` dumps a ``results.json`` per run; this
module loads two such dumps and reports cell-by-cell deltas, so a
change to the engine can be vetted against a baseline run:

    python scripts/compare_results.py baseline/results.json new/results.json

A *regression* is a tracked metric worsening beyond a tolerance;
time-like metrics are compared relatively, count-like metrics must not
change at all for the same seed (determinism guard).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

# metric -> (kind, tolerance); kinds: "time" (relative), "exact" (equal)
TRACKED_METRICS: dict[str, tuple[str, float]] = {
    "total_ms": ("time", 0.5),   # 50% relative slack: wall times are noisy
    "cloud_ms": ("time", 0.5),
    "client_ms": ("time", 0.8),
    "rs": ("exact", 0.0),
    "rin": ("exact", 0.0),
    "answer_bytes": ("exact", 0.0),
    "skipped": ("exact", 0.0),
}


@dataclass
class CellDelta:
    dataset: str
    cell: str
    metric: str
    baseline: float
    current: float

    @property
    def relative_change(self) -> float:
        if self.baseline == 0:
            return 0.0 if self.current == 0 else float("inf")
        return (self.current - self.baseline) / self.baseline

    def describe(self) -> str:
        return (
            f"{self.dataset} {self.cell} {self.metric}: "
            f"{self.baseline:g} -> {self.current:g} "
            f"({self.relative_change:+.0%})"
        )


@dataclass
class Comparison:
    regressions: list[CellDelta] = field(default_factory=list)
    improvements: list[CellDelta] = field(default_factory=list)
    determinism_breaks: list[CellDelta] = field(default_factory=list)
    cells_compared: int = 0

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.determinism_breaks


def load_results(path: str | Path) -> dict[str, Any]:
    return json.loads(Path(path).read_text())


def compare_results(
    baseline: dict[str, Any],
    current: dict[str, Any],
) -> Comparison:
    """Cell-by-cell comparison of two evaluation dumps.

    Only cells present in both runs are compared (grids may differ).
    """
    comparison = Comparison()
    base_datasets = baseline.get("datasets", {})
    for dataset, entry in current.get("datasets", {}).items():
        base_entry = base_datasets.get(dataset)
        if base_entry is None:
            continue
        base_cells = base_entry.get("cells", {})
        for cell, metrics in entry.get("cells", {}).items():
            base_metrics = base_cells.get(cell)
            if base_metrics is None:
                continue
            comparison.cells_compared += 1
            for metric, (kind, tolerance) in TRACKED_METRICS.items():
                if metric not in metrics or metric not in base_metrics:
                    continue
                delta = CellDelta(
                    dataset, cell, metric, base_metrics[metric], metrics[metric]
                )
                if kind == "exact":
                    if metrics[metric] != base_metrics[metric]:
                        comparison.determinism_breaks.append(delta)
                else:
                    change = delta.relative_change
                    if change > tolerance:
                        comparison.regressions.append(delta)
                    elif change < -tolerance:
                        comparison.improvements.append(delta)
    return comparison


def format_comparison(comparison: Comparison) -> str:
    lines = [f"cells compared: {comparison.cells_compared}"]
    if comparison.determinism_breaks:
        lines.append("\nDETERMINISM BREAKS (count metrics changed):")
        lines.extend("  " + d.describe() for d in comparison.determinism_breaks)
    if comparison.regressions:
        lines.append("\nREGRESSIONS:")
        lines.extend("  " + d.describe() for d in comparison.regressions)
    if comparison.improvements:
        lines.append("\nimprovements:")
        lines.extend("  " + d.describe() for d in comparison.improvements)
    lines.append("\nstatus: " + ("OK" if comparison.ok else "FAILED"))
    return "\n".join(lines)
