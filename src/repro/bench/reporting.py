"""Plain-text tables in the shape of the paper's figures.

The benchmark harness prints one table/series per paper figure so the
reproduction can be compared against the original by eye.  Output is
deliberately monospace-plain (no external dependencies).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str = "",
) -> str:
    """Render rows into an aligned monospace table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def format_series(
    title: str,
    x_label: str,
    x_values: Sequence[Any],
    series: Mapping[str, Sequence[Any]],
) -> str:
    """Render one figure-style table: x on rows, one column per series."""
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x, *(values[i] for values in series.values())])
    return format_table(headers, rows, title=title)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def ms(seconds: float) -> float:
    """Seconds -> milliseconds (the paper's unit for query costs)."""
    return seconds * 1000.0


def print_report(text: str) -> None:
    """Emit a report block, visually separated in pytest -s output."""
    print("\n" + text + "\n")
