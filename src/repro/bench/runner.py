"""Experiment runner shared by the ``benchmarks/`` harness.

Caches publish-time artifacts (building ``Gk`` once per
(dataset, method, k) is the expensive part) and runs query workloads
through the full system, aggregating per-phase metrics exactly the way
the paper's figures slice them.

Benchmark scale is controlled by the ``REPRO_BENCH_SCALE`` environment
variable (default 1.0): dataset sizes scale linearly, so CI machines
can run a quick pass with e.g. ``REPRO_BENCH_SCALE=0.3``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core.config import MethodConfig, SystemConfig
from repro.core.metrics import AggregatedMetrics
from repro.core.system import PrivacyPreservingSystem
from repro.exceptions import ResultBudgetExceeded
from repro.graph.attributed import AttributedGraph
from repro.workloads.datasets import Dataset, load_dataset
from repro.workloads.queries import generate_workload

# resource quota applied to every benchmark query: generously above any
# expected cell, but a hard stop against pathological blow-ups taking
# the whole harness down (a real cloud would enforce the same).
BENCH_RESULT_BUDGET = 500_000


def bench_scale(default: float = 1.0) -> float:
    """Dataset scale factor from ``REPRO_BENCH_SCALE``."""
    try:
        return float(os.environ.get("REPRO_BENCH_SCALE", default))
    except ValueError:
        return default


def bench_query_count(default: int = 20) -> int:
    """Queries averaged per cell, from ``REPRO_BENCH_QUERIES``.

    The paper averages 100 queries per point; the default here is
    smaller to keep a full harness run in CI-friendly time.
    """
    try:
        return int(os.environ.get("REPRO_BENCH_QUERIES", default))
    except ValueError:
        return default


@dataclass
class ExperimentContext:
    """Lazily built systems and workloads over one dataset."""

    dataset: Dataset
    theta: int = 2
    seed: int = 0
    _systems: dict[tuple[str, int], PrivacyPreservingSystem] = field(
        default_factory=dict
    )
    _workloads: dict[int, list[AttributedGraph]] = field(default_factory=dict)

    @classmethod
    def for_dataset(cls, name: str, scale: float | None = None) -> "ExperimentContext":
        return cls(dataset=load_dataset(name, scale=scale or bench_scale()))

    def workload(self, edge_count: int, count: int | None = None) -> list[AttributedGraph]:
        count = count or bench_query_count()
        key = edge_count
        if key not in self._workloads or len(self._workloads[key]) < count:
            self._workloads[key] = generate_workload(
                self.dataset.graph, edge_count, count, seed=self.seed + edge_count
            )
        return self._workloads[key][:count]

    def system(self, method: str, k: int) -> PrivacyPreservingSystem:
        """Publish once per (method, k); reuse across benchmark cells."""
        key = (method, k)
        if key not in self._systems:
            config = SystemConfig(
                k=k,
                theta=self.theta,
                method=MethodConfig.from_name(method),
                seed=self.seed,
                max_intermediate_results=BENCH_RESULT_BUDGET,
            )
            # a small generic workload sample drives the EFF cost model
            sample = self.workload(6, min(8, bench_query_count()))
            self._systems[key] = PrivacyPreservingSystem.setup(
                self.dataset.graph, self.dataset.schema, config, sample_workload=sample
            )
        return self._systems[key]

    def run(
        self,
        method: str,
        k: int,
        edge_count: int,
        query_count: int | None = None,
    ) -> AggregatedMetrics:
        """Average metrics of a workload cell (method, k, |E(Q)|)."""
        system = self.system(method, k)
        aggregate = AggregatedMetrics()
        for query in self.workload(edge_count, query_count):
            try:
                aggregate.add(system.query(query).metrics)
            except ResultBudgetExceeded:
                aggregate.skipped += 1
        return aggregate
