"""Deprecation shims for the PR-2 naming unification.

The Outcome/metrics API redesign renamed a handful of fields so the
three result types line up (``matches`` / ``metrics`` / ``trace`` and
``*_seconds`` names that say *whose* seconds they are):

==============================  ==============================
old                             new
==============================  ==============================
``CloudAnswer.total_seconds``   ``CloudAnswer.cloud_seconds``
``ClientOutcome.seconds``       ``ClientOutcome.client_seconds``
==============================  ==============================

Every old spelling keeps working for one release and emits exactly one
:class:`DeprecationWarning` per call site through :func:`warn_renamed`.
The library itself only uses the new names, so running the test suite
with ``-W error::DeprecationWarning`` (the CI gate) passes unless a
caller still uses an old name.
"""

from __future__ import annotations

import warnings


def warn_renamed(old: str, new: str, *, stacklevel: int = 3) -> None:
    """Emit the canonical rename warning (``old`` -> ``new``).

    ``stacklevel=3`` points at the *caller* of the deprecated property
    or keyword (one frame above the property getter / ``__init__``).
    """
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
