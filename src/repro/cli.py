"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``
    Run the paper's running example end to end and print the results.
``publish``
    Anonymize a data graph (JSON) and write the split deployment
    (cloud/ and client/ halves) to a directory.
``query``
    Answer a query graph (JSON) through a previously published
    deployment, using the original graph for client-side filtering.
``batch``
    Answer a whole workload of query graphs concurrently through the
    parallel batched engine (``--workers``, ``--backend``).
``serve``
    Answer a workload through a deployment while exposing ``/metrics``,
    ``/healthz``, ``/readyz`` and ``/traces`` over HTTP (with optional
    JSONL event logging and sliding-window SLO gauges).  With
    ``--gateway-port`` it also stands up the :mod:`repro.gateway`
    frame server so remote clients can query the same cloud engine.
``call``
    Send query graphs to a running ``serve --gateway-port`` gateway
    over TCP and finish them client-side (expand + filter) locally.
``explain``
    Run one traced query and render its EXPLAIN report (phase
    timings, per-shard work, wire bytes, cache hits).  With ``--port``
    the query goes through a running gateway and the report covers the
    stitched cross-process trace.
``audit``
    Quantify a deployment's privacy posture: candidate sets vs ``k``,
    label groups vs ``theta``, outsourced fraction and Algorithm 3's
    false-positive ratio.
``profile``
    Run a traced (and cProfile'd) workload and print the per-phase
    span summary plus the hottest functions of each profiled phase.
``datasets``
    Generate one of the evaluation dataset analogues to a JSON file.

``demo``, ``query`` and ``batch`` accept ``--trace PATH`` to export
the run's spans + metrics registry as a JSON trace file, and
``--prometheus PATH`` (on ``batch``) for the Prometheus text format.
All graphs use the JSON format of :mod:`repro.graph.io`.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.cloud.server import CloudServer
from repro.cloud.sharding import ShardedCloud
from repro.core.config import MethodConfig, SystemConfig
from repro.core.data_owner import DataOwner
from repro.core.query_client import QueryClient
from repro.core.storage import load_client_side, load_cloud_side, save_published
from repro.graph.generators import example_query, example_social_network, schema_from_graph
from repro.graph.io import load_graph, save_graph
from repro.obs import Observability, Trace, export_json, format_percent, names
from repro.workloads.datasets import DATASETS, load_dataset


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.core.system import PrivacyPreservingSystem

    graph, schema = example_social_network()
    obs = Observability()
    system = PrivacyPreservingSystem.setup(
        graph,
        schema,
        SystemConfig(k=args.k, method=MethodConfig.from_name(args.method)),
        obs=obs,
    )
    outcome = system.query(example_query())
    print(f"published: {system.publish_metrics.uploaded_edges} edges uploaded")
    print(f"matches ({len(outcome.matches)}):")
    for match in outcome.matches:
        print("  " + ", ".join(f"q{q}->v{v}" for q, v in sorted(match.items())))
    print(f"end-to-end: {outcome.metrics.total_seconds * 1000:.2f} ms")
    if args.trace:
        trace = Trace()
        if system.published.trace is not None:
            trace.extend(system.published.trace)
        if outcome.trace is not None:
            trace.extend(outcome.trace)
        export_json(args.trace, trace=trace, registry=obs.metrics)
        print(f"trace written to {args.trace}")
    return 0


def _cmd_publish(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    schema = schema_from_graph(graph)
    owner = DataOwner(graph, schema)
    config = SystemConfig(
        k=args.k, theta=args.theta, method=MethodConfig.from_name(args.method)
    )
    published = owner.publish(config)
    save_published(published, args.out)
    metrics = published.metrics
    print(
        json.dumps(
            {
                "k": args.k,
                "method": args.method,
                "uploaded_vertices": metrics.uploaded_vertices,
                "uploaded_edges": metrics.uploaded_edges,
                "noise_edges": metrics.noise_edges,
                "noise_vertices": metrics.noise_vertices,
                "output": str(Path(args.out).resolve()),
            },
            indent=2,
        )
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    query = load_graph(args.query)
    cloud_graph, cloud_avt, centers, expand = load_cloud_side(args.deployment)
    lct, client_avt = load_client_side(args.deployment)

    obs = Observability()
    scope = obs.for_query()
    cloud = CloudServer(cloud_graph, cloud_avt, centers, expand_in_cloud=expand)
    client = QueryClient(graph, lct, client_avt)

    with scope.tracer.span(names.QUERY) as root:
        root.set(query_edges=query.edge_count)
        anonymized = client.prepare_query(query, obs=scope)
        answer = cloud.answer(anonymized, obs=scope)
        outcome = client.process_answer(
            query, answer.results, answer.expanded, obs=scope
        )
    print(
        json.dumps(
            {
                "matches": [
                    {str(q): v for q, v in sorted(m.items())} for m in outcome.matches
                ],
                "candidates": outcome.candidate_count,
                names.M_CLOUD_SECONDS: answer.cloud_seconds,
                names.M_CLIENT_SECONDS: outcome.client_seconds,
            },
            indent=2,
        )
    )
    if args.trace:
        export_json(
            args.trace, trace=scope.tracer.take_trace(), registry=obs.metrics
        )
        print(f"trace written to {args.trace}", file=sys.stderr)
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    """Serve a workload of queries through the parallel batched engine."""
    import time

    from repro.cloud.parallel import effective_workers

    graph = load_graph(args.graph)
    queries = [load_graph(path) for path in args.queries] * args.repeat
    cloud_graph, cloud_avt, centers, expand = load_cloud_side(args.deployment)
    lct, client_avt = load_client_side(args.deployment)

    obs = Observability()
    cloud: CloudServer | ShardedCloud
    if args.shards > 1:
        cloud = ShardedCloud(
            cloud_graph,
            cloud_avt,
            centers,
            shards=args.shards,
            expand_in_cloud=expand,
            star_cache_size=args.star_cache,
            backend=args.shard_backend,
            obs=obs if args.trace else None,
        )
    else:
        cloud = CloudServer(
            cloud_graph,
            cloud_avt,
            centers,
            expand_in_cloud=expand,
            star_cache_size=args.star_cache,
            star_workers=args.star_workers,
            obs=obs if args.trace else None,
        )
    client = QueryClient(graph, lct, client_avt, obs=obs if args.trace else None)

    anonymized = [client.prepare_query(query) for query in queries]
    started = time.perf_counter()
    answers = cloud.query_batch(
        anonymized, max_workers=args.workers, backend=args.backend
    )
    wall_seconds = time.perf_counter() - started

    results = []
    for query, answer in zip(queries, answers):
        outcome = client.process_answer(query, answer.results, answer.expanded)
        results.append(
            {
                "matches": len(outcome.matches),
                "candidates": outcome.candidate_count,
                names.M_CLOUD_SECONDS: answer.cloud_seconds,
            }
        )
    hits, misses = cloud.star_cache.counters()
    # with the process backend the children own the cache copies: the
    # parent-side counters read zero, so the rate is unknowable here —
    # report it as None / "n/a" instead of a misleading 0.0%.
    cache_shared = args.backend != "process"
    hit_total = hits + misses
    hit_rate = (
        (hits / hit_total if hit_total else 0.0) if cache_shared else None
    )
    print(
        json.dumps(
            {
                "queries": len(queries),
                "backend": args.backend,
                "workers": effective_workers(args.workers, len(queries)),
                "wall_seconds": wall_seconds,
                "throughput_qps": len(queries) / wall_seconds if wall_seconds else 0.0,
                "cache": {
                    "hits": hits,
                    "misses": misses,
                    "hit_rate": hit_rate,
                    "hit_rate_text": format_percent(hit_rate),
                },
                "per_query": results,
            },
            indent=2,
        )
    )
    if args.trace:
        export_json(args.trace, trace=obs.tracer.take_trace(), registry=obs.metrics)
        print(f"trace written to {args.trace}", file=sys.stderr)
    if args.prometheus:
        from repro.obs import write_prometheus

        write_prometheus(obs.metrics, args.prometheus)
        print(f"metrics written to {args.prometheus}", file=sys.stderr)
    cloud.close()
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Trace + cProfile a demo workload; print the per-phase summary."""
    from repro.core.system import PrivacyPreservingSystem
    from repro.obs import format_summary

    graph, schema = example_social_network()
    obs = Observability(profile=True)
    system = PrivacyPreservingSystem.setup(
        graph,
        schema,
        SystemConfig(k=args.k, method=MethodConfig.from_name(args.method)),
        obs=obs,
    )
    merged = Trace()
    if system.published.trace is not None:
        merged.extend(system.published.trace)
    for _ in range(args.queries):
        outcome = system.query(example_query())
        if outcome.trace is not None:
            merged.extend(outcome.trace)
    print(format_summary(merged, obs.metrics, title="profile: demo workload"))
    for span in merged:
        profile = span.attributes.get("profile")
        if not profile:
            continue
        print(f"\nhottest functions of '{span.name}' "
              f"({span.duration * 1000:.2f} ms):")
        for line in profile:
            print(f"  {line}")
    if args.trace:
        export_json(args.trace, trace=merged, registry=obs.metrics)
        print(f"\ntrace written to {args.trace}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    """Audit a deployment: re-prove the privacy guarantees on disk.

    Checks everything an auditor can check from the cloud-visible half
    alone: the k-automorphism property, and the worst structural-attack
    success probability over a vertex sample (must be <= 1/k).

    For a ``Go`` deployment the audited graph is the ``Gk`` recovered
    through the AVT — i.e. exactly the graph the cloud can reconstruct
    and serve.  Recovery closes the edge set under the automorphic
    functions by construction, so for ``Go`` deployments the audit
    attests the *served* view is k-automorphic (tampering with ``Go``
    cannot silently weaken the bound — it only changes which symmetric
    graph is served); a BAS deployment's ``Gk`` is checked verbatim.
    """
    from repro.attacks import degree_attack, neighborhood_attack
    from repro.kauto.verify import verify_k_automorphism
    from repro.outsource import OutsourcedGraph, recover_gk

    cloud_graph, avt, centers, expand = load_cloud_side(args.deployment)
    if expand:
        # Go deployment: rebuild Gk from Go + AVT before verifying
        outsourced = OutsourcedGraph(graph=cloud_graph, block_vertices=centers)
        gk = recover_gk(outsourced, avt)
    else:
        gk = cloud_graph
    verify_k_automorphism(gk, avt)

    sample = sorted(gk.vertex_ids())[:: max(1, gk.vertex_count // args.sample)][
        : args.sample
    ]
    worst = 0.0
    for target in sample:
        worst = max(
            worst,
            degree_attack(gk, target).success_probability,
            neighborhood_attack(gk, target).success_probability,
        )
    bound = 1.0 / avt.k
    ok = worst <= bound + 1e-9
    print(
        json.dumps(
            {
                "k": avt.k,
                "k_automorphism": "verified",
                "vertices": gk.vertex_count,
                "edges": gk.edge_count,
                "sampled_targets": len(sample),
                "worst_attack_probability": worst,
                "bound": bound,
                "ok": ok,
            },
            indent=2,
        )
    )
    return 0 if ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve a deployment with live telemetry exposition.

    Loads a published deployment, stands up the cloud + client halves,
    starts the :class:`~repro.obs.serve.TelemetryServer` (``/metrics``,
    ``/healthz``, ``/readyz``, ``/traces``), then answers the workload:
    query-graph files (optionally ``--repeat``-ed) or, with no files,
    one JSON graph document per stdin line.  ``--linger`` keeps the
    endpoint up after the workload drains so scrapers can collect.
    """
    import time

    from repro.obs import (
        EventLog,
        SlidingWindow,
        TelemetryServer,
        TraceRing,
        names,
    )
    from repro.obs.audit import build_audit

    graph = load_graph(args.graph)
    obs = Observability()
    if args.events:
        obs.events = EventLog(
            args.events, level=args.event_level, sample_rate=args.sample_rate
        )
    state = {"ready": False, "served": 0}
    window = SlidingWindow(capacity=args.window)
    window.register(
        obs.metrics,
        names.W_QUERY_WINDOW,
        help="End-to-end query seconds over the SLO window.",
    )
    ring = TraceRing(capacity=args.trace_ring)
    telemetry = TelemetryServer(
        obs.metrics,
        ready=lambda: state["ready"],
        health=lambda: {
            "deployment": str(Path(args.deployment).resolve()),
            "queries_served": state["served"],
        },
        traces=ring,
        host=args.host,
        port=args.port,
    ).start()
    gateway = None
    try:
        if args.port_file:
            port_file = Path(args.port_file)
            port_file.parent.mkdir(parents=True, exist_ok=True)
            port_file.write_text(str(telemetry.port), encoding="utf-8")
        print(f"telemetry listening on {telemetry.url}", file=sys.stderr)

        cloud_graph, cloud_avt, centers, expand = load_cloud_side(
            args.deployment
        )
        lct, client_avt = load_client_side(args.deployment)
        component_obs = Observability(record=False, registry=obs.metrics)
        cloud: CloudServer | ShardedCloud
        if args.shards > 1:
            cloud = ShardedCloud(
                cloud_graph,
                cloud_avt,
                centers,
                shards=args.shards,
                expand_in_cloud=expand,
                star_cache_size=args.star_cache,
                backend=args.shard_backend,
                obs=component_obs,
            )
        else:
            cloud = CloudServer(
                cloud_graph,
                cloud_avt,
                centers,
                expand_in_cloud=expand,
                star_cache_size=args.star_cache,
                obs=component_obs,
            )
        client = QueryClient(graph, lct, client_avt, obs=component_obs)
        if args.gateway_port is not None:
            from repro.gateway import (
                AdmissionPolicy,
                AuditLogMiddleware,
                AuthTokenMiddleware,
                QueryGateway,
            )

            middlewares: list = []
            if args.gateway_token:
                middlewares.append(
                    AuthTokenMiddleware(token=args.gateway_token)
                )
            if obs.events.enabled:
                middlewares.append(AuditLogMiddleware(obs.events))
            gateway = QueryGateway(
                cloud,
                host=args.host,
                port=args.gateway_port,
                middlewares=middlewares,
                policy=AdmissionPolicy(
                    max_inflight=args.gateway_max_inflight,
                    max_client_inflight=args.gateway_max_inflight,
                    slo_seconds=args.slo_seconds,
                ),
                workers=args.gateway_workers,
                obs=obs,
                traces=ring,
            ).start()
            if args.gateway_port_file:
                gateway_port_file = Path(args.gateway_port_file)
                gateway_port_file.parent.mkdir(parents=True, exist_ok=True)
                gateway_port_file.write_text(
                    str(gateway.port), encoding="utf-8"
                )
            print(
                f"gateway listening on {gateway.host}:{gateway.port}",
                file=sys.stderr,
            )
        # static privacy posture of the served deployment, as gauges
        # next to the latency metrics (per-query filter counts feed the
        # live ratio callback QueryClient registers).
        build_audit(
            cloud_avt,
            lct,
            theta=lct.theta,
            gk_edges=cloud_graph.edge_count if not expand else 0,
            outsourced_edges=cloud_graph.edge_count,
            registry=obs.metrics,
        ).register(obs.metrics)
        state["ready"] = True  # index built: /readyz flips to 200
        if obs.events.enabled:
            obs.events.emit(
                "serve",
                deployment=str(args.deployment),
                url=telemetry.url,
                k=cloud_avt.k,
            )

        def answer_one(query) -> None:
            scope = obs.for_query()
            tracer = scope.tracer
            with tracer.span(names.QUERY) as root:
                root.set(query_edges=query.edge_count)
                anonymized = client.prepare_query(query, obs=scope)
                answer = cloud.answer(anonymized, obs=scope)
                outcome = client.process_answer(
                    query, answer.results, answer.expanded, obs=scope
                )
            obs.metrics.counter(
                names.M_QUERIES, help="Queries answered end to end."
            ).inc()
            obs.metrics.histogram(
                names.M_QUERY_SECONDS,
                help="End-to-end wall seconds per query "
                "(excl. simulated wire).",
            ).observe(root.duration)
            window.observe(root.duration)
            trace = tracer.take_trace()
            ring.push(
                trace,
                query_id=scope.query_id,
                matches=len(outcome.matches),
            )
            if obs.events.enabled:
                obs.events.emit_query(
                    trace, scope.query_id, matches=len(outcome.matches)
                )
            state["served"] += 1

        if args.queries:
            for query_graph in [
                load_graph(path) for path in args.queries
            ] * args.repeat:
                answer_one(query_graph)
        elif not sys.stdin.isatty():
            from repro.graph.io import graph_from_json

            for line in sys.stdin:
                line = line.strip()
                if line:
                    answer_one(graph_from_json(line))

        summary = {
            "deployment": str(args.deployment),
            "url": telemetry.url,
            "queries_served": state["served"],
            "window": window.snapshot(),
            "events_emitted": obs.events.emitted,
        }
        print(json.dumps(summary, indent=2), file=sys.stderr)
        if args.linger > 0:
            print(
                f"lingering {args.linger:.0f}s for scrapers...",
                file=sys.stderr,
            )
            time.sleep(args.linger)
        cloud.close()
        return 0
    finally:
        if gateway is not None:
            gateway.stop()
        telemetry.stop()
        obs.events.close()


def _cmd_call(args: argparse.Namespace) -> int:
    """Query a running gateway over TCP, finishing client-side locally.

    Loads the client half of a deployment (the LCT and AVT stay local —
    the wire only ever carries anonymized queries and ``Rin`` tables),
    anonymizes each query graph, ships it to the gateway started by
    ``serve --gateway-port``, and expands + filters the returned table
    against the original graph.  Typed gateway rejections (auth, rate
    limit, shedding) print as errors with their reject code.
    """
    from repro.exceptions import GatewayError, GatewayRejected
    from repro.gateway import SyncGatewayClient

    graph = load_graph(args.graph)
    queries = [load_graph(path) for path in args.queries]
    lct, client_avt = load_client_side(args.deployment)
    client = QueryClient(graph, lct, client_avt)
    results = []
    try:
        with SyncGatewayClient(
            args.host,
            args.port,
            client_id=args.client_id,
            token=args.token,
            timeout=args.timeout,
        ) as gateway:
            for path, query in zip(args.queries, queries):
                anonymized = client.prepare_query(query)
                table, expanded = gateway.query(anonymized)
                outcome = client.process_answer(query, table, expanded)
                results.append(
                    {
                        "query": str(path),
                        "matches": [
                            {str(q): v for q, v in sorted(m.items())}
                            for m in outcome.matches
                        ],
                        "candidates": outcome.candidate_count,
                    }
                )
    except GatewayRejected as exc:
        print(
            f"gateway rejected request ({exc.code}): {exc.reason}",
            file=sys.stderr,
        )
        return 2
    except GatewayError as exc:
        print(f"gateway error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(results, indent=2))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """One traced query -> its EXPLAIN report (text or JSON).

    Local mode (default) runs the query in process against the
    deployment (optionally sharded); with ``--port`` the anonymized
    query goes through a running ``serve --gateway-port`` gateway via
    ``submit_traced``, and the report is derived from the stitched
    cross-process trace (client, gateway, cloud, shard and fork-child
    spans in one tree).  ``--chrome PATH`` additionally writes the
    trace as Chrome/Perfetto trace-event JSON.
    """
    from repro.obs import ExplainReport, export_chrome_trace

    graph = load_graph(args.graph)
    query = load_graph(args.query)
    lct, client_avt = load_client_side(args.deployment)
    client = QueryClient(graph, lct, client_avt)

    trace: Trace | None
    if args.port is not None:
        from repro.exceptions import GatewayError, GatewayRejected
        from repro.gateway import SyncGatewayClient

        anonymized = client.prepare_query(query)
        try:
            with SyncGatewayClient(
                args.host,
                args.port,
                client_id=args.client_id,
                token=args.token,
                timeout=args.timeout,
            ) as gateway:
                traced = gateway.submit_traced([anonymized])
        except GatewayRejected as exc:
            print(
                f"gateway rejected request ({exc.code}): {exc.reason}",
                file=sys.stderr,
            )
            return 2
        except GatewayError as exc:
            print(f"gateway error: {exc}", file=sys.stderr)
            return 1
        for table, expanded in traced.answers:
            client.process_answer(query, table, expanded)
        trace, query_id = traced.trace, traced.query_id
    else:
        cloud_graph, cloud_avt, centers, expand = load_cloud_side(
            args.deployment
        )
        obs = Observability()
        scope = obs.for_query()
        cloud: CloudServer | ShardedCloud
        if args.shards > 1:
            cloud = ShardedCloud(
                cloud_graph,
                cloud_avt,
                centers,
                shards=args.shards,
                expand_in_cloud=expand,
                backend=args.shard_backend,
            )
        else:
            cloud = CloudServer(
                cloud_graph, cloud_avt, centers, expand_in_cloud=expand
            )
        with scope.tracer.span(names.QUERY) as root:
            root.set(query_edges=query.edge_count)
            anonymized = client.prepare_query(query, obs=scope)
            answer = cloud.answer(anonymized, obs=scope)
            client.process_answer(
                query, answer.results, answer.expanded, obs=scope
            )
        cloud.close()
        trace, query_id = scope.tracer.take_trace(), scope.query_id

    report = ExplainReport.from_trace(trace, query_id=query_id)
    if args.json:
        print(report.to_json())
    else:
        print(report.render_text())
    if args.chrome:
        if trace is None:
            print("no trace to export", file=sys.stderr)
        else:
            export_chrome_trace(args.chrome, trace)
            print(f"chrome trace written to {args.chrome}", file=sys.stderr)
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    """Quantify a deployment's privacy posture (paper Sections 3-5).

    With a deployment directory, audits the on-disk artifacts (AVT
    candidate sets vs ``k``, LCT label groups vs ``theta``, outsourced
    fraction); add ``--graph``/``--queries`` to also run queries and
    report Algorithm 3's false-positive ratio.  Without a deployment,
    audits the paper's running example end to end.  Exit status is 0
    only when every guarantee holds.
    """
    from repro.obs.audit import audit_system, build_audit, format_audit

    obs = Observability()
    outcomes = []
    if args.deployment is None:
        # demo mode: the paper's running example, end to end
        from repro.core.system import PrivacyPreservingSystem

        graph, schema = example_social_network()
        system = PrivacyPreservingSystem.setup(
            graph,
            schema,
            SystemConfig(k=args.k, theta=args.theta),
            obs=obs,
        )
        for _ in range(args.queries_count):
            outcomes.append(system.query(example_query()))
        report = audit_system(system, outcomes=outcomes)
        title = "privacy audit: running example"
    else:
        cloud_graph, cloud_avt, centers, expand = load_cloud_side(
            args.deployment
        )
        lct, client_avt = load_client_side(args.deployment)
        if expand:
            # Go deployment: the cloud holds the outsourced subgraph;
            # recover Gk through the AVT for the full symmetric size.
            from repro.outsource import OutsourcedGraph, recover_gk

            outsourced = OutsourcedGraph(
                graph=cloud_graph, block_vertices=centers
            )
            gk_edges = recover_gk(outsourced, cloud_avt).edge_count
        else:
            gk_edges = cloud_graph.edge_count
        if args.graph and args.queries:
            graph = load_graph(args.graph)
            component_obs = Observability(record=False, registry=obs.metrics)
            cloud = CloudServer(
                cloud_graph,
                cloud_avt,
                centers,
                expand_in_cloud=expand,
                obs=component_obs,
            )
            client = QueryClient(graph, lct, client_avt, obs=component_obs)
            from repro.core.system import QueryOutcome
            from repro.obs import QueryMetrics

            for path in args.queries:
                query = load_graph(path)
                scope = obs.for_query()
                with scope.tracer.span(names.QUERY):
                    anonymized = client.prepare_query(query, obs=scope)
                    answer = cloud.answer(anonymized, obs=scope)
                    outcome = client.process_answer(
                        query, answer.results, answer.expanded, obs=scope
                    )
                trace = scope.tracer.take_trace()
                outcomes.append(
                    QueryOutcome(
                        matches=outcome.matches,
                        metrics=QueryMetrics.from_trace(trace),
                        trace=trace,
                        query_id=scope.query_id,
                    )
                )
            cloud.close()
        report = build_audit(
            cloud_avt,
            lct,
            theta=lct.theta,
            gk_edges=gk_edges,
            outsourced_edges=cloud_graph.edge_count,
            outcomes=outcomes,
            registry=obs.metrics if outcomes else None,
        )
        title = f"privacy audit: {args.deployment}"

    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_audit(report, title=title))
    if args.prometheus:
        from repro.obs import write_prometheus

        report.register(obs.metrics)
        write_prometheus(obs.metrics, args.prometheus)
        print(f"metrics written to {args.prometheus}", file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the invariant linter (``repro.analysis``) over source trees.

    Exit status: 0 when clean at the ``--fail-on`` threshold (default:
    ``error``), 1 when gating findings exist, 2 on a bad ``--rule`` or
    unusable ``--baseline``.  ``--json`` emits the machine-readable
    findings document (the CI artifact format); ``--out`` writes it to
    a file as well; ``--sarif`` writes a SARIF 2.1.0 report.  A
    ``.lint-baseline.json`` in the working directory (or ``--baseline``)
    subtracts accepted findings before the gate; ``--update-baseline``
    rewrites it from the current findings.  See
    ``docs/static-analysis.md`` for the rule catalog.
    """
    from repro.analysis import (
        Severity,
        all_rules,
        apply_baseline,
        lint_paths,
        load_baseline,
        render_json,
        render_sarif,
        render_text,
        write_baseline,
    )
    from repro.analysis.baseline import BASELINE_NAME, BaselineError

    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            meta = rule.describe()
            print(
                f"{rule.id}  {rule.name} [{meta['severity']}]: {meta['doc']}"
            )
        return 0
    if args.rule:
        wanted = {r.strip() for part in args.rule for r in part.split(",")}
        known = {rule.id for rule in rules}
        unknown = wanted - known
        if unknown:
            print(
                f"unknown rule(s) {sorted(unknown)}; known: {sorted(known)}",
                file=sys.stderr,
            )
            return 2
        rules = [rule for rule in rules if rule.id in wanted]
    result = lint_paths(args.paths, rules=rules)

    baseline_path = (
        Path(args.baseline) if args.baseline else Path(BASELINE_NAME)
    )
    if args.update_baseline:
        count = write_baseline(baseline_path, result)
        print(f"baseline: recorded {count} finding(s) in {baseline_path}")
        return 0
    suppressed = 0
    if not args.no_baseline and (args.baseline or baseline_path.is_file()):
        try:
            accepted = load_baseline(baseline_path)
        except BaselineError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        result, suppressed = apply_baseline(result, accepted)

    if args.out:
        out_path = Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(render_json(result) + "\n", encoding="utf-8")
    if args.sarif:
        sarif_path = Path(args.sarif)
        sarif_path.parent.mkdir(parents=True, exist_ok=True)
        sarif_path.write_text(render_sarif(result) + "\n", encoding="utf-8")
    if args.json:
        print(render_json(result))
    else:
        print(render_text(result, verbose=args.verbose))
        if suppressed:
            print(f"({suppressed} baselined finding(s) suppressed)")
    fail_on = Severity(args.fail_on)
    return 1 if result.failed(fail_on) else 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.name, scale=args.scale)
    save_graph(dataset.graph, args.out)
    print(
        f"wrote {dataset.name} analogue: |V|={dataset.graph.vertex_count}, "
        f"|E|={dataset.graph.edge_count} -> {args.out}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Privacy preserving subgraph matching in cloud (SIGMOD'16)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run the paper's running example")
    demo.add_argument("--k", type=int, default=2)
    demo.add_argument("--method", default="EFF", choices=["EFF", "RAN", "FSIM", "BAS"])
    demo.add_argument("--trace", default=None, help="write a JSON trace file")
    demo.set_defaults(func=_cmd_demo)

    publish = sub.add_parser("publish", help="anonymize and publish a graph")
    publish.add_argument("graph", help="input graph JSON")
    publish.add_argument("out", help="output deployment directory")
    publish.add_argument("--k", type=int, default=2)
    publish.add_argument("--theta", type=int, default=2)
    publish.add_argument(
        "--method", default="EFF", choices=["EFF", "RAN", "FSIM", "BAS"]
    )
    publish.set_defaults(func=_cmd_publish)

    query = sub.add_parser("query", help="answer a query via a deployment")
    query.add_argument("deployment", help="deployment directory from 'publish'")
    query.add_argument("graph", help="original graph JSON (client side)")
    query.add_argument("query", help="query graph JSON")
    query.add_argument("--trace", default=None, help="write a JSON trace file")
    query.set_defaults(func=_cmd_query)

    batch = sub.add_parser(
        "batch", help="answer a workload of queries concurrently"
    )
    batch.add_argument("deployment", help="deployment directory from 'publish'")
    batch.add_argument("graph", help="original graph JSON (client side)")
    batch.add_argument("queries", nargs="+", help="query graph JSON file(s)")
    batch.add_argument(
        "--workers", type=int, default=None, help="pool width (default: one per core)"
    )
    batch.add_argument(
        "--backend",
        default="thread",
        choices=["serial", "thread", "process"],
        help="worker pool backend (serial = the baseline loop)",
    )
    batch.add_argument(
        "--star-cache",
        type=int,
        default=256,
        help="shared star-match LRU capacity (0 disables)",
    )
    batch.add_argument(
        "--star-workers",
        type=int,
        default=0,
        help="per-query star matching pool width (0/1 = serial)",
    )
    batch.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition the cloud graph over N shard servers (1 = single)",
    )
    batch.add_argument(
        "--shard-backend",
        default="thread",
        choices=["serial", "thread", "process"],
        help="scatter backend of the sharded cloud",
    )
    batch.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="repeat the workload N times (warms the shared cache)",
    )
    batch.add_argument("--trace", default=None, help="write a JSON trace file")
    batch.add_argument(
        "--prometheus",
        default=None,
        help="write the metrics registry in Prometheus text format",
    )
    batch.set_defaults(func=_cmd_batch)

    profile = sub.add_parser(
        "profile", help="trace + cProfile a demo workload, print a summary"
    )
    profile.add_argument("--k", type=int, default=2)
    profile.add_argument(
        "--method", default="EFF", choices=["EFF", "RAN", "FSIM", "BAS"]
    )
    profile.add_argument(
        "--queries", type=int, default=5, help="how many demo queries to run"
    )
    profile.add_argument("--trace", default=None, help="write a JSON trace file")
    profile.set_defaults(func=_cmd_profile)

    verify = sub.add_parser(
        "verify", help="audit a deployment's privacy guarantees"
    )
    verify.add_argument("deployment", help="deployment directory from 'publish'")
    verify.add_argument("--sample", type=int, default=50, help="attack targets")
    verify.set_defaults(func=_cmd_verify)

    serve = sub.add_parser(
        "serve",
        help="answer a workload while exposing /metrics, /healthz, "
        "/readyz and /traces over HTTP",
    )
    serve.add_argument("deployment", help="deployment directory from 'publish'")
    serve.add_argument("graph", help="original graph JSON (client side)")
    serve.add_argument(
        "queries",
        nargs="*",
        help="query graph JSON file(s); omit to read JSON graphs "
        "from stdin, one per line",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="0 = OS-assigned free port"
    )
    serve.add_argument(
        "--port-file",
        default=None,
        help="write the bound port here once listening (for harnesses)",
    )
    serve.add_argument(
        "--repeat", type=int, default=1, help="repeat the workload N times"
    )
    serve.add_argument(
        "--linger",
        type=float,
        default=0.0,
        help="keep the endpoint up N seconds after the workload drains",
    )
    serve.add_argument(
        "--events", default=None, help="JSONL structured event log path"
    )
    serve.add_argument(
        "--event-level", default="info", choices=["info", "debug"]
    )
    serve.add_argument(
        "--sample-rate",
        type=float,
        default=1.0,
        help="fraction of queries whose events are logged",
    )
    serve.add_argument(
        "--window",
        type=int,
        default=1024,
        help="sliding SLO window capacity (observations)",
    )
    serve.add_argument(
        "--trace-ring",
        type=int,
        default=64,
        help="how many recent query traces /traces retains",
    )
    serve.add_argument(
        "--star-cache",
        type=int,
        default=256,
        help="shared star-match LRU capacity (0 disables)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition the cloud graph over N shard servers (1 = single)",
    )
    serve.add_argument(
        "--shard-backend",
        default="thread",
        choices=["serial", "thread", "process"],
        help="scatter backend of the sharded cloud",
    )
    serve.add_argument(
        "--gateway-port",
        type=int,
        default=None,
        help="also serve the frame-protocol gateway on this TCP port "
        "(0 = OS-assigned free port; omit to disable)",
    )
    serve.add_argument(
        "--gateway-port-file",
        default=None,
        help="write the gateway's bound port here once listening",
    )
    serve.add_argument(
        "--gateway-token",
        default=None,
        help="require this auth token on gateway hello frames",
    )
    serve.add_argument(
        "--gateway-workers",
        type=int,
        default=None,
        help="gateway dispatch pool size (default: cpu count)",
    )
    serve.add_argument(
        "--slo-seconds",
        type=float,
        default=None,
        help="arm gateway load shedding when the sliding-window p99 "
        "exceeds this many seconds",
    )
    serve.add_argument(
        "--gateway-max-inflight",
        type=int,
        default=64,
        help="global cap on concurrently admitted gateway requests",
    )
    serve.set_defaults(func=_cmd_serve)

    call = sub.add_parser(
        "call",
        help="send queries to a running 'serve --gateway-port' gateway",
    )
    call.add_argument("deployment", help="deployment directory from 'publish'")
    call.add_argument("graph", help="original graph JSON (client side)")
    call.add_argument("queries", nargs="+", help="query graph JSON file(s)")
    call.add_argument("--host", default="127.0.0.1")
    call.add_argument(
        "--port", type=int, required=True, help="gateway TCP port"
    )
    call.add_argument(
        "--client-id", default="cli", help="client identity for middleware"
    )
    call.add_argument(
        "--token", default="", help="auth token for the hello frame"
    )
    call.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="seconds to wait per gateway call",
    )
    call.set_defaults(func=_cmd_call)

    explain = sub.add_parser(
        "explain",
        help="run one traced query and render its EXPLAIN report",
    )
    explain.add_argument(
        "deployment", help="deployment directory from 'publish'"
    )
    explain.add_argument("graph", help="original graph JSON (client side)")
    explain.add_argument("query", help="query graph JSON")
    explain.add_argument(
        "--shards",
        type=int,
        default=1,
        help="local mode: partition the cloud over N shards (1 = single)",
    )
    explain.add_argument(
        "--shard-backend",
        default="thread",
        choices=["serial", "thread", "process"],
        help="local mode: scatter backend of the sharded cloud",
    )
    explain.add_argument("--host", default="127.0.0.1")
    explain.add_argument(
        "--port",
        type=int,
        default=None,
        help="query a running gateway on this TCP port instead of "
        "running locally (the report covers the stitched trace)",
    )
    explain.add_argument(
        "--client-id", default="cli", help="client identity for middleware"
    )
    explain.add_argument(
        "--token", default="", help="auth token for the hello frame"
    )
    explain.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="seconds to wait per gateway call",
    )
    explain.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    explain.add_argument(
        "--chrome",
        default=None,
        help="also write the trace as Chrome/Perfetto trace-event JSON",
    )
    explain.set_defaults(func=_cmd_explain)

    audit = sub.add_parser(
        "audit", help="quantify a deployment's privacy posture"
    )
    audit.add_argument(
        "deployment",
        nargs="?",
        default=None,
        help="deployment directory (omit to audit the running example)",
    )
    audit.add_argument(
        "--graph", default=None, help="original graph JSON (client side)"
    )
    audit.add_argument(
        "--queries",
        nargs="*",
        default=None,
        help="query graph JSON file(s) for the false-positive audit",
    )
    audit.add_argument("--k", type=int, default=2, help="demo-mode k")
    audit.add_argument(
        "--theta", type=int, default=2, help="demo-mode theta"
    )
    audit.add_argument(
        "--queries-count",
        type=int,
        default=3,
        help="demo-mode: how many example queries to audit",
    )
    audit.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    audit.add_argument(
        "--prometheus",
        default=None,
        help="also write the audit gauges in Prometheus text format",
    )
    audit.set_defaults(func=_cmd_audit)

    lint = sub.add_parser(
        "lint", help="check the codebase's architectural invariants"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--rule",
        action="append",
        default=None,
        help="run only these rule ids (comma-separated, repeatable)",
    )
    lint.add_argument(
        "--json", action="store_true", help="emit findings as JSON"
    )
    lint.add_argument(
        "--out", default=None, help="also write the JSON findings here"
    )
    lint.add_argument(
        "--sarif", default=None, help="also write a SARIF 2.1.0 report here"
    )
    lint.add_argument(
        "--fail-on",
        choices=["error", "warning", "info"],
        default="error",
        help="lowest severity that fails the run (default: error)",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        help="accepted-findings file (default: ./.lint-baseline.json if present)",
    )
    lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="record the current findings as the accepted baseline and exit",
    )
    lint.add_argument(
        "--verbose", action="store_true", help="print per-finding fix hints"
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="list the rule catalog"
    )
    lint.set_defaults(func=_cmd_lint)

    datasets = sub.add_parser("datasets", help="generate a dataset analogue")
    datasets.add_argument("name", choices=sorted(DATASETS))
    datasets.add_argument("out", help="output graph JSON path")
    datasets.add_argument("--scale", type=float, default=0.25)
    datasets.set_defaults(func=_cmd_datasets)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests on main()
    sys.exit(main())
