"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``
    Run the paper's running example end to end and print the results.
``publish``
    Anonymize a data graph (JSON) and write the split deployment
    (cloud/ and client/ halves) to a directory.
``query``
    Answer a query graph (JSON) through a previously published
    deployment, using the original graph for client-side filtering.
``batch``
    Answer a whole workload of query graphs concurrently through the
    parallel batched engine (``--workers``, ``--backend``).
``profile``
    Run a traced (and cProfile'd) workload and print the per-phase
    span summary plus the hottest functions of each profiled phase.
``datasets``
    Generate one of the evaluation dataset analogues to a JSON file.

``demo``, ``query`` and ``batch`` accept ``--trace PATH`` to export
the run's spans + metrics registry as a JSON trace file, and
``--prometheus PATH`` (on ``batch``) for the Prometheus text format.
All graphs use the JSON format of :mod:`repro.graph.io`.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.cloud.server import CloudServer
from repro.core.config import MethodConfig, SystemConfig
from repro.core.data_owner import DataOwner
from repro.core.query_client import QueryClient
from repro.core.storage import load_client_side, load_cloud_side, save_published
from repro.graph.generators import example_query, example_social_network, schema_from_graph
from repro.graph.io import load_graph, save_graph
from repro.obs import Observability, Trace, export_json, format_percent
from repro.workloads.datasets import DATASETS, load_dataset


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.core.system import PrivacyPreservingSystem

    graph, schema = example_social_network()
    obs = Observability()
    system = PrivacyPreservingSystem.setup(
        graph,
        schema,
        SystemConfig(k=args.k, method=MethodConfig.from_name(args.method)),
        obs=obs,
    )
    outcome = system.query(example_query())
    print(f"published: {system.publish_metrics.uploaded_edges} edges uploaded")
    print(f"matches ({len(outcome.matches)}):")
    for match in outcome.matches:
        print("  " + ", ".join(f"q{q}->v{v}" for q, v in sorted(match.items())))
    print(f"end-to-end: {outcome.metrics.total_seconds * 1000:.2f} ms")
    if args.trace:
        trace = Trace()
        if system.published.trace is not None:
            trace.extend(system.published.trace)
        if outcome.trace is not None:
            trace.extend(outcome.trace)
        export_json(args.trace, trace=trace, registry=obs.metrics)
        print(f"trace written to {args.trace}")
    return 0


def _cmd_publish(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    schema = schema_from_graph(graph)
    owner = DataOwner(graph, schema)
    config = SystemConfig(
        k=args.k, theta=args.theta, method=MethodConfig.from_name(args.method)
    )
    published = owner.publish(config)
    save_published(published, args.out)
    metrics = published.metrics
    print(
        json.dumps(
            {
                "k": args.k,
                "method": args.method,
                "uploaded_vertices": metrics.uploaded_vertices,
                "uploaded_edges": metrics.uploaded_edges,
                "noise_edges": metrics.noise_edges,
                "noise_vertices": metrics.noise_vertices,
                "output": str(Path(args.out).resolve()),
            },
            indent=2,
        )
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    query = load_graph(args.query)
    cloud_graph, cloud_avt, centers, expand = load_cloud_side(args.deployment)
    lct, client_avt = load_client_side(args.deployment)

    obs = Observability()
    scope = obs.for_query()
    cloud = CloudServer(cloud_graph, cloud_avt, centers, expand_in_cloud=expand)
    client = QueryClient(graph, lct, client_avt)

    with scope.tracer.span("query") as root:
        root.set(query_edges=query.edge_count)
        anonymized = client.prepare_query(query, obs=scope)
        answer = cloud.answer(anonymized, obs=scope)
        outcome = client.process_answer(
            query, answer.matches, answer.expanded, obs=scope
        )
    print(
        json.dumps(
            {
                "matches": [
                    {str(q): v for q, v in sorted(m.items())} for m in outcome.matches
                ],
                "candidates": outcome.candidate_count,
                "cloud_seconds": answer.cloud_seconds,
                "client_seconds": outcome.client_seconds,
            },
            indent=2,
        )
    )
    if args.trace:
        export_json(
            args.trace, trace=scope.tracer.take_trace(), registry=obs.metrics
        )
        print(f"trace written to {args.trace}", file=sys.stderr)
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    """Serve a workload of queries through the parallel batched engine."""
    import time

    from repro.cloud.parallel import effective_workers

    graph = load_graph(args.graph)
    queries = [load_graph(path) for path in args.queries] * args.repeat
    cloud_graph, cloud_avt, centers, expand = load_cloud_side(args.deployment)
    lct, client_avt = load_client_side(args.deployment)

    obs = Observability()
    cloud = CloudServer(
        cloud_graph,
        cloud_avt,
        centers,
        expand_in_cloud=expand,
        star_cache_size=args.star_cache,
        star_workers=args.star_workers,
        obs=obs if args.trace else None,
    )
    client = QueryClient(graph, lct, client_avt, obs=obs if args.trace else None)

    anonymized = [client.prepare_query(query) for query in queries]
    started = time.perf_counter()
    answers = cloud.query_batch(
        anonymized, max_workers=args.workers, backend=args.backend
    )
    wall_seconds = time.perf_counter() - started

    results = []
    for query, answer in zip(queries, answers):
        outcome = client.process_answer(query, answer.matches, answer.expanded)
        results.append(
            {
                "matches": len(outcome.matches),
                "candidates": outcome.candidate_count,
                "cloud_seconds": answer.cloud_seconds,
            }
        )
    hits, misses = cloud.star_cache.counters()
    # with the process backend the children own the cache copies: the
    # parent-side counters read zero, so the rate is unknowable here —
    # report it as None / "n/a" instead of a misleading 0.0%.
    cache_shared = args.backend != "process"
    hit_total = hits + misses
    hit_rate = (
        (hits / hit_total if hit_total else 0.0) if cache_shared else None
    )
    print(
        json.dumps(
            {
                "queries": len(queries),
                "backend": args.backend,
                "workers": effective_workers(args.workers, len(queries)),
                "wall_seconds": wall_seconds,
                "throughput_qps": len(queries) / wall_seconds if wall_seconds else 0.0,
                "cache": {
                    "hits": hits,
                    "misses": misses,
                    "hit_rate": hit_rate,
                    "hit_rate_text": format_percent(hit_rate),
                },
                "per_query": results,
            },
            indent=2,
        )
    )
    if args.trace:
        export_json(args.trace, trace=obs.tracer.take_trace(), registry=obs.metrics)
        print(f"trace written to {args.trace}", file=sys.stderr)
    if args.prometheus:
        from repro.obs import write_prometheus

        write_prometheus(obs.metrics, args.prometheus)
        print(f"metrics written to {args.prometheus}", file=sys.stderr)
    cloud.close()
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Trace + cProfile a demo workload; print the per-phase summary."""
    from repro.core.system import PrivacyPreservingSystem
    from repro.obs import format_summary

    graph, schema = example_social_network()
    obs = Observability(profile=True)
    system = PrivacyPreservingSystem.setup(
        graph,
        schema,
        SystemConfig(k=args.k, method=MethodConfig.from_name(args.method)),
        obs=obs,
    )
    merged = Trace()
    if system.published.trace is not None:
        merged.extend(system.published.trace)
    for _ in range(args.queries):
        outcome = system.query(example_query())
        if outcome.trace is not None:
            merged.extend(outcome.trace)
    print(format_summary(merged, obs.metrics, title="profile: demo workload"))
    for span in merged:
        profile = span.attributes.get("profile")
        if not profile:
            continue
        print(f"\nhottest functions of '{span.name}' "
              f"({span.duration * 1000:.2f} ms):")
        for line in profile:
            print(f"  {line}")
    if args.trace:
        export_json(args.trace, trace=merged, registry=obs.metrics)
        print(f"\ntrace written to {args.trace}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    """Audit a deployment: re-prove the privacy guarantees on disk.

    Checks everything an auditor can check from the cloud-visible half
    alone: the k-automorphism property, and the worst structural-attack
    success probability over a vertex sample (must be <= 1/k).

    For a ``Go`` deployment the audited graph is the ``Gk`` recovered
    through the AVT — i.e. exactly the graph the cloud can reconstruct
    and serve.  Recovery closes the edge set under the automorphic
    functions by construction, so for ``Go`` deployments the audit
    attests the *served* view is k-automorphic (tampering with ``Go``
    cannot silently weaken the bound — it only changes which symmetric
    graph is served); a BAS deployment's ``Gk`` is checked verbatim.
    """
    from repro.attacks import degree_attack, neighborhood_attack
    from repro.kauto.verify import verify_k_automorphism
    from repro.outsource import OutsourcedGraph, recover_gk

    cloud_graph, avt, centers, expand = load_cloud_side(args.deployment)
    if expand:
        # Go deployment: rebuild Gk from Go + AVT before verifying
        outsourced = OutsourcedGraph(graph=cloud_graph, block_vertices=centers)
        gk = recover_gk(outsourced, avt)
    else:
        gk = cloud_graph
    verify_k_automorphism(gk, avt)

    sample = sorted(gk.vertex_ids())[:: max(1, gk.vertex_count // args.sample)][
        : args.sample
    ]
    worst = 0.0
    for target in sample:
        worst = max(
            worst,
            degree_attack(gk, target).success_probability,
            neighborhood_attack(gk, target).success_probability,
        )
    bound = 1.0 / avt.k
    ok = worst <= bound + 1e-9
    print(
        json.dumps(
            {
                "k": avt.k,
                "k_automorphism": "verified",
                "vertices": gk.vertex_count,
                "edges": gk.edge_count,
                "sampled_targets": len(sample),
                "worst_attack_probability": worst,
                "bound": bound,
                "ok": ok,
            },
            indent=2,
        )
    )
    return 0 if ok else 1


def _cmd_datasets(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.name, scale=args.scale)
    save_graph(dataset.graph, args.out)
    print(
        f"wrote {dataset.name} analogue: |V|={dataset.graph.vertex_count}, "
        f"|E|={dataset.graph.edge_count} -> {args.out}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Privacy preserving subgraph matching in cloud (SIGMOD'16)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run the paper's running example")
    demo.add_argument("--k", type=int, default=2)
    demo.add_argument("--method", default="EFF", choices=["EFF", "RAN", "FSIM", "BAS"])
    demo.add_argument("--trace", default=None, help="write a JSON trace file")
    demo.set_defaults(func=_cmd_demo)

    publish = sub.add_parser("publish", help="anonymize and publish a graph")
    publish.add_argument("graph", help="input graph JSON")
    publish.add_argument("out", help="output deployment directory")
    publish.add_argument("--k", type=int, default=2)
    publish.add_argument("--theta", type=int, default=2)
    publish.add_argument(
        "--method", default="EFF", choices=["EFF", "RAN", "FSIM", "BAS"]
    )
    publish.set_defaults(func=_cmd_publish)

    query = sub.add_parser("query", help="answer a query via a deployment")
    query.add_argument("deployment", help="deployment directory from 'publish'")
    query.add_argument("graph", help="original graph JSON (client side)")
    query.add_argument("query", help="query graph JSON")
    query.add_argument("--trace", default=None, help="write a JSON trace file")
    query.set_defaults(func=_cmd_query)

    batch = sub.add_parser(
        "batch", help="answer a workload of queries concurrently"
    )
    batch.add_argument("deployment", help="deployment directory from 'publish'")
    batch.add_argument("graph", help="original graph JSON (client side)")
    batch.add_argument("queries", nargs="+", help="query graph JSON file(s)")
    batch.add_argument(
        "--workers", type=int, default=None, help="pool width (default: one per core)"
    )
    batch.add_argument(
        "--backend",
        default="thread",
        choices=["serial", "thread", "process"],
        help="worker pool backend (serial = the baseline loop)",
    )
    batch.add_argument(
        "--star-cache",
        type=int,
        default=256,
        help="shared star-match LRU capacity (0 disables)",
    )
    batch.add_argument(
        "--star-workers",
        type=int,
        default=0,
        help="per-query star matching pool width (0/1 = serial)",
    )
    batch.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="repeat the workload N times (warms the shared cache)",
    )
    batch.add_argument("--trace", default=None, help="write a JSON trace file")
    batch.add_argument(
        "--prometheus",
        default=None,
        help="write the metrics registry in Prometheus text format",
    )
    batch.set_defaults(func=_cmd_batch)

    profile = sub.add_parser(
        "profile", help="trace + cProfile a demo workload, print a summary"
    )
    profile.add_argument("--k", type=int, default=2)
    profile.add_argument(
        "--method", default="EFF", choices=["EFF", "RAN", "FSIM", "BAS"]
    )
    profile.add_argument(
        "--queries", type=int, default=5, help="how many demo queries to run"
    )
    profile.add_argument("--trace", default=None, help="write a JSON trace file")
    profile.set_defaults(func=_cmd_profile)

    verify = sub.add_parser(
        "verify", help="audit a deployment's privacy guarantees"
    )
    verify.add_argument("deployment", help="deployment directory from 'publish'")
    verify.add_argument("--sample", type=int, default=50, help="attack targets")
    verify.set_defaults(func=_cmd_verify)

    datasets = sub.add_parser("datasets", help="generate a dataset analogue")
    datasets.add_argument("name", choices=sorted(DATASETS))
    datasets.add_argument("out", help="output graph JSON path")
    datasets.add_argument("--scale", type=float, default=0.25)
    datasets.set_defaults(func=_cmd_datasets)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests on main()
    sys.exit(main())
