"""Shared infrastructure for the benchmark harness.

Every file in this directory regenerates one of the paper's evaluation
figures/tables (see DESIGN.md's per-experiment index).  Expensive
artifacts — published systems and query sweeps — are cached in a
session-scoped :class:`SweepCache`, so running the whole directory
performs each publish and each (dataset, method, k, |E(Q)|) workload
cell once, no matter how many figures slice it.

Environment knobs:

* ``REPRO_BENCH_SCALE``   — dataset scale factor (default 0.25)
* ``REPRO_BENCH_QUERIES`` — queries averaged per cell (default 10)
* ``REPRO_BENCH_KS``      — comma-separated k values (default 2,3,4,5,6)
* ``REPRO_BENCH_SIZES``   — comma-separated |E(Q)| values (default 4,6,8,10,12)
* ``REPRO_BENCH_DATASETS``— comma-separated dataset names (default all three)
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import pytest

from repro.bench import ExperimentContext
from repro.core.metrics import AggregatedMetrics

DEFAULT_SCALE = 0.25
DEFAULT_QUERIES = 10


def _env_list(name: str, default: list[int]) -> list[int]:
    raw = os.environ.get(name)
    if not raw:
        return default
    return [int(part) for part in raw.split(",") if part.strip()]


def bench_ks() -> list[int]:
    return _env_list("REPRO_BENCH_KS", [2, 3, 4, 5, 6])


def bench_sizes() -> list[int]:
    return _env_list("REPRO_BENCH_SIZES", [4, 6, 8, 10, 12])


def bench_datasets() -> list[str]:
    raw = os.environ.get("REPRO_BENCH_DATASETS")
    if not raw:
        return ["Web-NotreDame", "DBpedia", "UK-2002"]
    return [part.strip() for part in raw.split(",") if part.strip()]


def bench_scale() -> float:
    try:
        return float(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))
    except ValueError:
        return DEFAULT_SCALE


def bench_queries() -> int:
    try:
        return int(os.environ.get("REPRO_BENCH_QUERIES", DEFAULT_QUERIES))
    except ValueError:
        return DEFAULT_QUERIES


METHODS = ["EFF", "RAN", "FSIM", "BAS"]
GO_METHODS = ["EFF", "RAN", "FSIM"]  # the strategies that upload Go


@dataclass
class SweepCache:
    """Memoized publishes and workload cells across the whole session."""

    contexts: dict[str, ExperimentContext] = field(default_factory=dict)
    cells: dict[tuple[str, str, int, int], AggregatedMetrics] = field(
        default_factory=dict
    )

    def context(self, dataset: str) -> ExperimentContext:
        if dataset not in self.contexts:
            self.contexts[dataset] = ExperimentContext.for_dataset(
                dataset, scale=bench_scale()
            )
        return self.contexts[dataset]

    def system(self, dataset: str, method: str, k: int):
        return self.context(dataset).system(method, k)

    def cell(
        self, dataset: str, method: str, k: int, edge_count: int
    ) -> AggregatedMetrics:
        key = (dataset, method, k, edge_count)
        if key not in self.cells:
            self.cells[key] = self.context(dataset).run(
                method, k, edge_count, bench_queries()
            )
        return self.cells[key]


_CACHE = SweepCache()


@pytest.fixture(scope="session")
def sweep() -> SweepCache:
    return _CACHE


def completing_query(cache: SweepCache, dataset: str, method: str, k: int, size: int):
    """A (system, query) pair whose query stays inside the result budget.

    Timed cells must not die on a pathological tail query; pick the
    first workload query that completes.
    """
    from repro.exceptions import ResultBudgetExceeded

    system = cache.system(dataset, method, k)
    for query in cache.context(dataset).workload(size, bench_queries()):
        try:
            system.query(query)
        except ResultBudgetExceeded:
            continue
        return system, query
    pytest.skip(f"no query of size {size} fits the result budget")


def cells_clean(cache: SweepCache, cells) -> bool:
    """True when no cell in ``cells`` skipped a query (fair comparison).

    A skipped (budget-exceeded) query censors a method's *worst* run,
    which would bias mean-time comparisons; shape assertions only apply
    to uncensored grids.
    """
    return all(cache.cells[key].skipped == 0 for key in cells if key in cache.cells)
