"""Figure 13: index size and construction time of the VBV/LBV index.

Paper shape: both index size and build time *decrease* as k grows,
because the index covers only block B1 of Gk and |B1| = |V(Gk)|/k.
"""

from _publish_cache import published
from conftest import bench_datasets, bench_ks

from repro.bench import format_series, ms, print_report
from repro.cloud import CloudIndex


def _index_for(dataset_name: str, k: int) -> CloudIndex:
    data = published(dataset_name, "EFF", k)
    return CloudIndex.build(data.upload_graph, data.center_vertices)


def test_index_build_k3(benchmark):
    """Timed cell: building the index over Go at k=3."""
    data = published("Web-NotreDame", "EFF", 3)
    index = benchmark(
        lambda: CloudIndex.build(data.upload_graph, data.center_vertices)
    )
    assert index.size_bytes() > 0


def test_report_fig13_index_cost(benchmark):
    def run() -> str:
        size_series = {}
        time_series = {}
        for dataset_name in bench_datasets():
            indexes = {k: _index_for(dataset_name, k) for k in bench_ks()}
            size_series[dataset_name] = [
                indexes[k].size_bytes() / 1024.0 for k in bench_ks()
            ]
            time_series[dataset_name] = [
                ms(indexes[k].build_seconds) for k in bench_ks()
            ]
        size_table = format_series(
            "[Figure 13a] index size (KiB)", "k", bench_ks(), size_series
        )
        time_table = format_series(
            "[Figure 13b] index construction time (ms)", "k", bench_ks(), time_series
        )
        return size_table + "\n\n" + time_table

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(report)

    # shape: index size decreases with k (B1 shrinks)
    for dataset_name in bench_datasets():
        sizes = [_index_for(dataset_name, k).size_bytes() for k in bench_ks()]
        assert sizes[-1] < sizes[0]
