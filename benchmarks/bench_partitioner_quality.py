"""Substrate quality: the METIS substitutes against each other.

The paper delegates partitioning to METIS; this repo implements two
substitutes (multilevel and spectral).  This bench reports cut sizes
and the induced noise edges for both, plus a random-partition baseline.

A finding worth recording: with the pattern-union alignment used here
(and in the original k-automorphism construction), total noise is close
to ``(k-1)·|E|`` *regardless of the partition* — every intra-block
pattern is replicated into all k blocks and every crossing edge is
copied k-1 times, so a better cut merely shifts noise between the two
categories.  Savings come only from orbit/pattern coincidences, which
good partitions and the BFS alignment increase by a few percent.  The
cut itself still matters elsewhere: Go's size and the boundary set N1
shrink with it.
"""

import random

import pytest
from conftest import bench_datasets, bench_scale

pytest.importorskip("scipy", reason="spectral partitioning needs the solver stack")

from repro.bench import format_table, print_report
from repro.kauto import (
    build_k_automorphic_graph,
    cut_size,
    partition_graph,
    spectral_partition,
)
from repro.workloads import load_dataset

K = 3


def random_partition(graph, k, seed=0):
    rng = random.Random(seed)
    vertices = sorted(graph.vertex_ids())
    rng.shuffle(vertices)
    chunk = (len(vertices) + k - 1) // k
    return [sorted(vertices[i * chunk : (i + 1) * chunk]) for i in range(k)]


def test_multilevel_partition(benchmark):
    dataset = load_dataset("Web-NotreDame", scale=bench_scale())
    blocks = benchmark(lambda: partition_graph(dataset.graph, K, seed=1))
    assert len(blocks) == K


def test_report_partitioner_quality(benchmark):
    def run():
        rows = []
        raw = {}
        for dataset_name in bench_datasets():
            graph = load_dataset(dataset_name, scale=bench_scale()).graph
            cuts = {
                "multilevel": cut_size(graph, partition_graph(graph, K, seed=1)),
                "spectral": cut_size(graph, spectral_partition(graph, K)),
                "random": cut_size(graph, random_partition(graph, K, seed=1)),
            }
            noise = {
                "multilevel": build_k_automorphic_graph(
                    graph, K, seed=1
                ).noise_edge_count,
                "spectral": build_k_automorphic_graph(
                    graph, K, partitioner=spectral_partition
                ).noise_edge_count,
                "random": build_k_automorphic_graph(
                    graph, K, partitioner=lambda g, k: random_partition(g, k, seed=1)
                ).noise_edge_count,
            }
            raw[dataset_name] = (cuts, noise)
            rows.append(
                [
                    dataset_name,
                    cuts["multilevel"],
                    cuts["spectral"],
                    cuts["random"],
                    noise["multilevel"],
                    noise["spectral"],
                    noise["random"],
                ]
            )
        table = format_table(
            [
                "dataset",
                "cut ML",
                "cut spectral",
                "cut random",
                "noiseE ML",
                "noiseE spectral",
                "noiseE random",
            ],
            rows,
            title=f"[Substrate] partitioner quality at k={K}",
        )
        return table, raw

    table, raw = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(table)

    for dataset_name, (cuts, noise) in raw.items():
        # both real partitioners must beat random placement on the cut
        assert cuts["multilevel"] < cuts["random"]
        assert cuts["spectral"] < cuts["random"]
        # noise is partition-insensitive here (see module docstring):
        # all three land within a narrow band around (k-1)|E|
        values = sorted(noise.values())
        assert values[-1] <= 1.15 * values[0]
