"""Ablation: BAS with the star framework vs plain subgraph matching.

The BAS baseline stores the full Gk; the paper runs its star
decompose-match-join pipeline there too.  This ablation asks whether
the star framework earns its keep even without the Go/Rin tricks, by
comparing it against direct (bitset VF2) matching over Gk.

Results are identical (asserted).  Either engine may win depending on
query selectivity — the interesting output is the measured ratio.
"""

from conftest import bench_datasets, bench_queries, bench_scale

from repro.bench import format_table, ms, print_report
from repro.cloud import CloudServer
from repro.core import DataOwner, MethodConfig, SystemConfig
from repro.matching import match_key
from repro.workloads import generate_workload, load_dataset

K = 3
SIZE = 6


def _setup(dataset_name: str):
    dataset = load_dataset(dataset_name, scale=bench_scale())
    workload = generate_workload(dataset.graph, SIZE, bench_queries(), seed=29)
    owner = DataOwner(dataset.graph, dataset.schema, workload)
    published = owner.publish(
        SystemConfig(k=K, method=MethodConfig.from_name("BAS"))
    )
    centers = published.center_vertices
    servers = {
        "stars": CloudServer(
            published.upload_graph,
            published.transform.avt,
            centers,
            expand_in_cloud=False,
            max_intermediate_results=500_000,
        ),
        "direct": CloudServer(
            published.upload_graph,
            published.transform.avt,
            centers,
            expand_in_cloud=False,
            engine="direct",
        ),
    }
    queries = [published.lct.apply_to_graph(q) for q in workload]
    return servers, queries


def test_direct_bas_answer(benchmark):
    servers, queries = _setup("DBpedia")
    answer = benchmark(lambda: servers["direct"].answer(queries[0]))
    assert answer.expanded


def test_report_ablation_bas_engine(benchmark):
    def run():
        rows = []
        raw = {}
        for dataset_name in bench_datasets():
            servers, queries = _setup(dataset_name)
            seconds = {}
            results = {}
            for name, server in servers.items():
                total = 0.0
                keys = []
                for query in queries:
                    answer = server.answer(query)
                    total += answer.cloud_seconds
                    keys.append(frozenset(match_key(m) for m in answer.matches))
                seconds[name] = total
                results[name] = keys
            raw[dataset_name] = (seconds, results)
            rows.append(
                [
                    dataset_name,
                    ms(seconds["stars"]),
                    ms(seconds["direct"]),
                    f"{seconds['stars'] / max(seconds['direct'], 1e-9):.1f}x",
                ]
            )
        table = format_table(
            ["dataset", "star pipeline ms", "direct VF2 ms", "stars/direct"],
            rows,
            title=f"[Ablation] BAS engine: star framework vs direct matching (k={K})",
        )
        return table, raw

    table, raw = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(table)

    for dataset_name, (seconds, results) in raw.items():
        assert results["stars"] == results["direct"], dataset_name
