"""Figure 33: network overhead of shipping candidate results.

Paper shape: the optimized methods transmit Rin — a 1/k-size subset of
R(Qo, Gk) — so EFF's transmission cost is well below BAS's, which
ships the fully expanded candidate set; bytes grow with k and |E(Q)|.
"""

from conftest import METHODS, bench_datasets

from repro.bench import format_table, ms, print_report

CELLS = [(2, 6), (2, 12), (3, 6), (3, 12), (5, 6), (5, 12)]


def test_answer_encoding(benchmark, sweep):
    """Timed cell: serializing one answer for the wire."""
    from repro.core.protocol import encode_answer

    system = sweep.system("Web-NotreDame", "EFF", 3)
    query = sweep.context("Web-NotreDame").workload(6, 1)[0]
    answer = system.cloud.answer(system.client.prepare_query(query))
    order = sorted(query.vertex_ids())

    payload = benchmark(lambda: encode_answer(answer.matches, order, answer.expanded))
    assert len(payload) > 0


def test_report_fig33_network_overhead(benchmark, sweep):
    def run() -> str:
        headers = ["dataset", "method"] + [f"k={k},|E(Q)|={s}" for k, s in CELLS]
        byte_rows, time_rows = [], []
        for dataset_name in bench_datasets():
            for method in METHODS:
                byte_row = [dataset_name, method]
                time_row = [dataset_name, method]
                for k, size in CELLS:
                    cell = sweep.cell(dataset_name, method, k, size)
                    byte_row.append(round(cell.answer_bytes))
                    time_row.append(ms(cell.network_seconds))
                byte_rows.append(byte_row)
                time_rows.append(time_row)
        return (
            format_table(headers, byte_rows, title="[Figure 33a] answer bytes")
            + "\n\n"
            + format_table(
                headers, time_rows, title="[Figure 33b] network transmission time (ms)"
            )
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(report)

    # shape: EFF ships fewer answer bytes than BAS whenever candidates
    # exist — compared only on uncensored grids (a budget-skipped query
    # removes a method's heaviest answer and voids the comparison)
    from conftest import cells_clean

    keys = [(d, m, k, s) for d in bench_datasets() for m in METHODS for k, s in CELLS]
    if cells_clean(sweep, keys):
        for dataset_name in bench_datasets():
            eff = sum(
                sweep.cell(dataset_name, "EFF", k, s).answer_bytes for k, s in CELLS
            )
            bas = sum(
                sweep.cell(dataset_name, "BAS", k, s).answer_bytes for k, s in CELLS
            )
            assert eff <= bas
