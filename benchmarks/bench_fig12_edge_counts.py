"""Figure 12: number of edges in Go and Gk (EFF), k = 2..6.

Paper shape: |E(Go)| is much smaller than |E(Gk)|, approaching
|E(Gk)|/k plus the block-boundary edges; at small k, |E(Go)| is close
to |E(G)|.
"""

from _publish_cache import dataset_for, published
from conftest import bench_datasets, bench_ks

from repro.bench import format_table, print_report


def test_go_extraction_k3(benchmark):
    """Timed cell: extracting Go from a published Gk."""
    from repro.outsource import build_outsourced_graph

    data = published("Web-NotreDame", "EFF", 3)
    outsourced = benchmark(
        lambda: build_outsourced_graph(data.transform.gk, data.transform.avt)
    )
    assert outsourced.edge_count < data.transform.gk.edge_count


def test_report_fig12_edge_counts(benchmark):
    def run() -> str:
        rows = []
        for dataset_name in bench_datasets():
            go_row = [dataset_name, "|E(Go)|"]
            gk_row = [dataset_name, "|E(Gk)|"]
            for k in bench_ks():
                metrics = published(dataset_name, "EFF", k).metrics
                go_row.append(metrics.uploaded_edges)
                gk_row.append(metrics.gk_edges)
            rows.append(go_row)
            rows.append(gk_row)
        headers = ["dataset", "quantity", *[f"k={k}" for k in bench_ks()]]
        return format_table(
            headers, rows, title="[Figure 12] edges in Go vs Gk (EFF)"
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(report)

    # shape assertions
    for dataset_name in bench_datasets():
        graph = dataset_for(dataset_name).graph
        for k in bench_ks():
            metrics = published(dataset_name, "EFF", k).metrics
            assert metrics.uploaded_edges < metrics.gk_edges
            # Go keeps every original edge incident to B1 and at most
            # all of E(Gk); it can never be smaller than |E(Gk)|/k
            assert metrics.uploaded_edges >= metrics.gk_edges / k
        smallest_k = bench_ks()[0]
        close = published(dataset_name, "EFF", smallest_k).metrics.uploaded_edges
        assert close < 2.5 * graph.edge_count
