"""Gateway serving capacity: sustained QPS and tail latency under load.

Not a paper figure — this measures the :mod:`repro.gateway` front end
(ISSUE 7).  One BAS-style identity-AVT deployment (k=1, no expansion)
serves a fixed random-walk query through :class:`QueryGateway` over
real TCP, driven by an *open-loop* generator: requests fire on a fixed
schedule regardless of completions, so queueing shows up as latency
(closed-loop clients would politely self-throttle and hide it).

Arms:

* ``steady``   — offered load at ~half the measured single-stream
  capacity: everything should be admitted and answered.
* ``overload`` — offered load at several times capacity against a
  small admission budget and an armed SLO probe: the gateway must
  *shed* (typed reject frames, ``gateway_shed_total``) while the
  admitted requests keep completing.

The shed-vs-collapse contract asserted on the overload arm: zero
transport errors (every frame either answered or typed-rejected —
nothing dropped), at least one shed, and at least one admitted answer.
At full scale (``REPRO_BENCH_SCALE >= 1``) the admitted p99 must also
stay within 10x the unloaded p50 — overload may not smear the tail of
the admitted traffic.  The report cell always writes
``BENCH_gateway.json`` at the repo root (the CI gateway smoke uploads
it).
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

import pytest
from conftest import bench_scale

from repro.bench import format_table, ms, print_report
from repro.cloud import CloudServer
from repro.exceptions import GatewayError, GatewayRejected
from repro.gateway import (
    AdmissionPolicy,
    GatewayClient,
    QueryGateway,
    SHED_CODES,
)
from repro.graph import make_schema, random_attributed_graph
from repro.kauto import AlignmentVertexTable
from repro.obs import Observability, names
from repro.workloads import random_walk_query

CELL = dict(seed=11, n=4_000, edges_per_vertex=6, labels=6, query_edges=2)
MIN_VERTICES = 800
WARMUP = 3
CALIBRATION = 10
DURATION_SECONDS = 3.0
OVERLOAD_FACTOR = 4.0  # offered load vs single-worker capacity
OVERLOAD_BUDGET = 4  # max_inflight during the overload arm
OVERLOAD_SLO_SECONDS = 0.25  # the armed bound on the admitted tail
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_gateway.json"


def _cell_vertices() -> int:
    return max(MIN_VERTICES, int(CELL["n"] * bench_scale()))


@pytest.fixture(scope="module")
def deployment():
    schema = make_schema(2, 1, CELL["labels"])
    graph = random_attributed_graph(
        schema,
        _cell_vertices(),
        edges_per_vertex=CELL["edges_per_vertex"],
        seed=CELL["seed"],
    )
    avt = AlignmentVertexTable([[v] for v in sorted(graph.vertex_ids())])
    centers = sorted(graph.vertex_ids())
    query = random_walk_query(graph, CELL["query_edges"], seed=CELL["seed"] + 1)
    cloud = CloudServer(graph, avt, centers, expand_in_cloud=False)
    return cloud, query


def _quantile(values: list[float], q: float) -> float:
    if not values:
        return float("nan")
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
    return ordered[index]


async def _open_loop(
    port: int, query, rate: float, duration: float
) -> dict[str, object]:
    """Fire ``rate`` req/s for ``duration`` seconds; never self-throttle."""
    latencies: list[float] = []
    shed = 0
    errors = 0

    async with GatewayClient("127.0.0.1", port, client_id="loadgen") as client:

        async def fire() -> None:
            nonlocal shed, errors
            begin = time.perf_counter()
            try:
                await client.query(query)
                latencies.append(time.perf_counter() - begin)
            except GatewayRejected as exc:
                if exc.code in SHED_CODES:
                    shed += 1
                else:
                    errors += 1
            except GatewayError:
                errors += 1

        total = max(1, int(rate * duration))
        start = time.perf_counter()
        tasks = []
        for i in range(total):
            delay = start + i / rate - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(asyncio.create_task(fire()))
        await asyncio.gather(*tasks)
        wall = time.perf_counter() - start

    return {
        "offered_qps": round(rate, 1),
        "offered": total,
        "completed": len(latencies),
        "shed": shed,
        "errors": errors,
        "wall_seconds": round(wall, 3),
        "qps": round(len(latencies) / wall, 1) if wall else 0.0,
        "p50_seconds": _quantile(latencies, 0.50),
        "p95_seconds": _quantile(latencies, 0.95),
        "p99_seconds": _quantile(latencies, 0.99),
    }


def _calibrate(port: int, query) -> float:
    """Unloaded single-stream latency (best-effort median), seconds."""

    async def run() -> list[float]:
        samples: list[float] = []
        async with GatewayClient(
            "127.0.0.1", port, client_id="calibrate"
        ) as client:
            for _ in range(WARMUP):
                await client.query(query)
            for _ in range(CALIBRATION):
                begin = time.perf_counter()
                await client.query(query)
                samples.append(time.perf_counter() - begin)
        return samples

    return _quantile(asyncio.run(run()), 0.50)


def test_report_gateway_qps(deployment):
    """Steady + overload arms; the shed-vs-collapse contract; JSON cell."""
    cloud, query = deployment

    # steady arm: generous budget, no SLO probe.
    with QueryGateway(
        cloud,
        policy=AdmissionPolicy(max_inflight=64, max_client_inflight=64),
    ) as gateway:
        base_latency = max(_calibrate(gateway.port, query), 1e-4)
        steady_rate = max(2.0, 0.5 / base_latency)
        steady = asyncio.run(
            _open_loop(gateway.port, query, steady_rate, DURATION_SECONDS)
        )

    # overload arm: a single dispatch worker (capacity ~1/base_latency),
    # offered load at OVERLOAD_FACTOR times that, and a tiny admission
    # budget with the SLO probe armed.  Shed, never collapse.  The tail
    # gate reads the *gateway's own* sliding window (seconds each
    # admitted request spent being served) — the client-observed
    # latencies also include the open-loop generator's event-loop
    # backlog, which is the load generator's congestion, not the
    # server's.  The admitted backlog is bounded by design
    # (OVERLOAD_BUDGET requests deep on one worker), so the armed SLO
    # is an absolute bound the admitted tail must honor while the rest
    # of the offered load bounces off admission control.
    overload_rate = max(20.0, OVERLOAD_FACTOR / base_latency)
    slo_seconds = OVERLOAD_SLO_SECONDS
    obs = Observability()
    with QueryGateway(
        cloud,
        obs=obs,
        workers=1,
        policy=AdmissionPolicy(
            max_inflight=OVERLOAD_BUDGET,
            max_client_inflight=OVERLOAD_BUDGET,
            slo_seconds=slo_seconds,
            slo_quantile=0.99,
            min_window_count=16,
        ),
    ) as gateway:
        overload = asyncio.run(
            _open_loop(gateway.port, query, overload_rate, DURATION_SECONDS)
        )
        admitted_window = gateway.window.snapshot()
    shed_total = obs.metrics.counter(names.M_GATEWAY_SHED).total

    steady["arm"] = "steady"
    overload["arm"] = "overload"
    arms = [steady, overload]

    rows = [
        [
            arm["arm"],
            arm["offered_qps"],
            arm["qps"],
            arm["completed"],
            arm["shed"],
            arm["errors"],
            ms(arm["p50_seconds"]),
            ms(arm["p99_seconds"]),
        ]
        for arm in arms
    ]
    print_report(
        format_table(
            [
                "arm",
                "offered qps",
                "qps",
                "answered",
                "shed",
                "errors",
                "p50",
                "p99",
            ],
            rows,
            title=(
                f"gateway open-loop serving — n={_cell_vertices()}, "
                f"|E(Q)|={CELL['query_edges']}, "
                f"base latency {ms(base_latency)}, "
                f"{DURATION_SECONDS:.0f}s per arm"
            ),
        )
    )

    RESULT_PATH.write_text(
        json.dumps(
            {
                "segment": "gateway serving (open-loop)",
                "scale": bench_scale(),
                "cell": {**CELL, "n": _cell_vertices()},
                "base_latency_seconds": base_latency,
                "duration_seconds": DURATION_SECONDS,
                "overload_budget": OVERLOAD_BUDGET,
                "slo_seconds": slo_seconds,
                "shed_not_collapse": {
                    "sheds": overload["shed"],
                    "shed_total_metric": shed_total,
                    "answered": overload["completed"],
                    "errors": overload["errors"],
                    "admitted_p99_seconds": admitted_window["p99"],
                },
                "arms": arms,
            },
            indent=2,
        )
        + "\n"
    )

    # zero dropped frames anywhere: every request answered or typed-shed.
    assert steady["errors"] == 0
    assert overload["errors"] == 0
    assert steady["completed"] == steady["offered"]
    # overload sheds instead of collapsing: typed rejects AND progress.
    assert overload["shed"] > 0
    assert shed_total >= overload["shed"]
    assert overload["completed"] > 0

    if bench_scale() < 1:
        pytest.skip("tail-latency gate runs at full scale only")
    assert admitted_window["p99"] <= slo_seconds, (
        "admitted tail breached the armed SLO under overload"
    )
