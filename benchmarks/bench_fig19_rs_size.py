"""Figure 19 (+ Figure 32): result-set size of star matching (|RS|).

Paper shape: |RS| grows with k and with |E(Q)|; EFF produces the
smallest star-result sets of the three Go-based strategies — the direct
effect of its cost-model label grouping, and the input size of the
join, which dominates cloud query time.
"""

from conftest import GO_METHODS, bench_datasets

from repro.bench import format_table, print_report

CELLS = [(3, 6), (3, 12), (5, 6), (5, 12)]


def test_rs_size_available(benchmark, sweep):
    cell = sweep.cell("Web-NotreDame", "EFF", 3, 6)
    value = benchmark(lambda: cell.rs_size)
    assert value >= 0


def test_report_fig19_rs_size(benchmark, sweep):
    def run() -> str:
        headers = ["dataset", "method"] + [f"k={k},|E(Q)|={s}" for k, s in CELLS]
        rows = []
        for dataset_name in bench_datasets():
            for method in GO_METHODS:
                row = [dataset_name, method]
                for k, size in CELLS:
                    row.append(round(sweep.cell(dataset_name, method, k, size).rs_size, 1))
                rows.append(row)
        return format_table(headers, rows, title="[Figure 19] |RS| (star matches)")

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(report)

    from conftest import cells_clean

    keys = [
        (d, m, k, s) for d in bench_datasets() for m in GO_METHODS for k, s in CELLS
    ]
    if cells_clean(sweep, keys):
        # |RS| grows with k at fixed size (summed over datasets)
        eff_small = sum(
            sweep.cell(d, "EFF", 3, 6).rs_size for d in bench_datasets()
        )
        eff_large = sum(
            sweep.cell(d, "EFF", 5, 6).rs_size for d in bench_datasets()
        )
        assert eff_large >= eff_small * 0.9
        # EFF produces the smallest |RS| on aggregate
        totals = {
            method: sum(
                sweep.cell(d, method, k, s).rs_size
                for d in bench_datasets()
                for k, s in CELLS
            )
            for method in GO_METHODS
        }
        assert totals["EFF"] <= totals["RAN"] * 1.1
        assert totals["EFF"] <= totals["FSIM"] * 1.1
