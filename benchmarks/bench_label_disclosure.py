"""Label privacy beyond the θ floor: Bayesian disclosure risk.

An extension of the paper's label-privacy analysis: the θ guarantee
caps the adversary's *uniform* guessing success at 1/θ, but with public
background knowledge of label frequencies the posterior within a group
can be skewed.  This bench reports the worst and mean disclosure risk
per grouping strategy, against the ideal 1/θ.

Expected shape: FSIM (similar frequencies in one group) achieves the
lowest disclosure risk — the flip side of its poor query performance;
EFF and RAN accept more skew.  A dial the paper leaves implicit.
"""

from conftest import GO_METHODS, bench_datasets, bench_scale

from repro.attacks import ideal_risk, label_disclosure_risk
from repro.bench import format_table, print_report
from repro.core import DataOwner, MethodConfig, SystemConfig
from repro.graph import compute_statistics
from repro.workloads import load_dataset

THETA = 2


def _risk(dataset_name: str, method: str):
    dataset = load_dataset(dataset_name, scale=bench_scale())
    owner = DataOwner(dataset.graph, dataset.schema)
    published = owner.publish(
        SystemConfig(k=2, theta=THETA, method=MethodConfig.from_name(method))
    )
    background = compute_statistics(dataset.graph)
    return label_disclosure_risk(published.lct, background)


def test_disclosure_analysis(benchmark):
    dataset = load_dataset("Web-NotreDame", scale=bench_scale())
    owner = DataOwner(dataset.graph, dataset.schema)
    published = owner.publish(SystemConfig(k=2, theta=THETA))
    background = compute_statistics(dataset.graph)
    risk = benchmark(lambda: label_disclosure_risk(published.lct, background))
    assert 0.0 <= risk.worst <= 1.0


def test_report_label_disclosure(benchmark):
    def run():
        rows = []
        raw = {}
        for dataset_name in bench_datasets():
            for method in GO_METHODS:
                risk = _risk(dataset_name, method)
                raw[(dataset_name, method)] = risk
                rows.append(
                    [
                        dataset_name,
                        method,
                        round(risk.worst, 3),
                        round(risk.mean, 3),
                        round(ideal_risk(THETA), 3),
                    ]
                )
        table = format_table(
            ["dataset", "method", "worst risk", "mean risk", "ideal 1/theta"],
            rows,
            title=f"[Extension] label disclosure risk (theta={THETA}, k=2)",
        )
        return table, raw

    table, raw = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(table)

    for dataset_name in bench_datasets():
        fsim = raw[(dataset_name, "FSIM")]
        ran = raw[(dataset_name, "RAN")]
        # FSIM's similar-frequency groups minimize posterior skew
        assert fsim.mean <= ran.mean + 0.02
        for method in GO_METHODS:
            risk = raw[(dataset_name, method)]
            assert ideal_risk(THETA) - 1e-9 <= risk.worst <= 1.0