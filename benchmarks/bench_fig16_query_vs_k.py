"""Figures 16/17/26: cloud query time vs k at |E(Q)| = 6 and 12.

Paper shape: query time rises with k for every method (more noise edges
in Go / Gk); EFF stays the best throughout, and its advantage grows
with k.
"""

from conftest import METHODS, bench_datasets, bench_ks, cells_clean, completing_query

from repro.bench import format_series, ms, print_report

SIZES_SHOWN = (6, 12)


def test_query_eff_k5_e12(benchmark, sweep):
    """Timed cell: a 12-edge query at k=5 (the expensive corner)."""
    system, query = completing_query(sweep, "Web-NotreDame", "EFF", 5, 12)
    outcome = benchmark(lambda: system.query(query))
    assert outcome.metrics.result_count >= 1


def test_report_fig16_query_time_vs_k(benchmark, sweep):
    def run() -> str:
        blocks = []
        for dataset_name in bench_datasets():
            for size in SIZES_SHOWN:
                series = {
                    method: [
                        ms(sweep.cell(dataset_name, method, k, size).cloud_seconds)
                        for k in bench_ks()
                    ]
                    for method in METHODS
                }
                blocks.append(
                    format_series(
                        f"[Figure 16] cloud query time (ms) — "
                        f"{dataset_name}, |E(Q)|={size}",
                        "k",
                        bench_ks(),
                        series,
                    )
                )
        return "\n\n".join(blocks)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(report)

    # shape: EFF no slower than BAS on aggregate, and the cost at the
    # largest k exceeds the cost at the smallest (censored grids skip)
    keys = [
        (d, m, k, s)
        for d in bench_datasets()
        for m in METHODS
        for k in bench_ks()
        for s in SIZES_SHOWN
    ]
    if cells_clean(sweep, keys):
        totals = {
            method: sum(
                sweep.cell(d, method, k, s).cloud_seconds
                for d in bench_datasets()
                for k in bench_ks()
                for s in SIZES_SHOWN
            )
            for method in METHODS
        }
        assert totals["EFF"] <= totals["BAS"] * 1.1
        ks = bench_ks()
        eff_small = sum(
            sweep.cell(d, "EFF", ks[0], 12).cloud_seconds for d in bench_datasets()
        )
        eff_large = sum(
            sweep.cell(d, "EFF", ks[-1], 12).cloud_seconds for d in bench_datasets()
        )
        assert eff_large >= eff_small * 0.8  # rises (noise-tolerant)
